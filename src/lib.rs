//! # netbatch
//!
//! A full reproduction of *"On the Feasibility of Dynamic Rescheduling on
//! the Intel Distributed Computing Platform"* (Zhang, Phan, Tan, Jain,
//! Duong, Loo, Lee — Middleware 2010): the NetBatch-like cluster model with
//! priority-based host-level preemption, a deterministic discrete-event
//! simulator (the open equivalent of Intel's ASCA), synthetic trace
//! generation calibrated to the paper's published aggregates, the five
//! dynamic rescheduling strategies the paper evaluates, and the experiment
//! machinery that regenerates every table and figure.
//!
//! This umbrella crate re-exports the workspace's five library crates:
//!
//! * [`sim_engine`] — event queue, virtual clock, deterministic RNG;
//! * [`cluster`] — jobs, machines, pools, preemption mechanics;
//! * [`workload`] — trace model, generators, scenario presets;
//! * [`metrics`] — CDFs, time series, the paper's waste decomposition;
//! * [`core`] — policies, the simulator facade, the experiment runner.
//!
//! ## Quick start
//!
//! ```
//! use netbatch::core::experiment::Experiment;
//! use netbatch::core::policy::{InitialKind, StrategyKind};
//! use netbatch::core::simulator::SimConfig;
//! use netbatch::workload::scenarios::ScenarioParams;
//!
//! // A 1%-scale replica of the paper's normal-load week.
//! let params = ScenarioParams::normal_week(0.01);
//! let result = Experiment::new(
//!     params.build_site(),
//!     params.generate_trace(),
//!     SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil),
//! )
//! .run();
//! println!(
//!     "suspend rate {:.2}%, AvgWCT {:.1} min",
//!     result.suspend_rate * 100.0,
//!     result.avg_wct()
//! );
//! # assert_eq!(result.counters.completed, result.total_jobs);
//! ```

#![warn(missing_docs)]

pub use netbatch_cluster as cluster;
pub use netbatch_core as core;
pub use netbatch_metrics as metrics;
pub use netbatch_sim_engine as sim_engine;
pub use netbatch_workload as workload;

/// The crate version, for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
