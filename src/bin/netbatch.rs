//! `netbatch` — the command-line front end.
//!
//! ```text
//! netbatch generate --scenario normal --scale 0.1 --out trace.csv
//! netbatch analyze trace.csv
//! netbatch simulate --scenario normal --strategy ResSusWaitUtil
//! netbatch simulate --trace trace.csv --strategy ResSusUtil --initial util
//! ```
//!
//! Everything the library exposes for experiments — scenario generation,
//! trace analysis, policy simulation — without writing Rust. Argument
//! parsing is hand-rolled (the workspace carries no CLI dependency).

use std::process::ExitCode;

use netbatch::core::experiment::{Experiment, ExperimentResult};
use netbatch::core::faults::{FaultModel, LifecycleModel, ResiliencePolicy};
use netbatch::core::observer::{StatsProbe, TraceRecorder};
use netbatch::core::policy::{InitialKind, StrategyKind};
use netbatch::core::provenance::{perfetto_from_jsonl, SpanRecorder};
use netbatch::core::simulator::{Backend, SimConfig, Simulator};
use netbatch::core::telemetry::Telemetry;
use netbatch::metrics::export::validate_exposition;
use netbatch::metrics::json::{self, Value};
use netbatch::sim_engine::time::SimDuration;
use netbatch::workload::analysis::TraceAnalysis;
use netbatch::workload::io::{read_csv, write_csv};
use netbatch::workload::scenarios::{PerPoolParams, ScenarioParams, SiteSpec};
use netbatch::workload::trace::Trace;

const USAGE: &str = "\
netbatch — dynamic rescheduling on a NetBatch-like platform (Middleware 2010 reproduction)

USAGE:
  netbatch generate [--scenario normal|highsus|year] [--scale S] [--seed N] --out FILE
  netbatch analyze FILE [--scale S]
  netbatch simulate [--trace FILE | --scenario NAME] [--scale S] [--seed N]
                    [--strategy NAME] [--initial rr|util] [--high-load]
                    [--restart-overhead MIN] [--staleness MIN] [--max-restarts N]
                    [--sample] [--series-out FILE] [--trace-out FILE|-]
                    [--metrics-out FILE|-] [--spans-out FILE|-]
                    [--profile-out FILE|-] [--check-invariants] [--stats]
                    [--fault-mtbf HOURS] [--fault-mttr HOURS]
                    [--fault-pool-outages N] [--fault-flaky FRAC] [--hardened]
                    [--lifecycle] [--lifecycle-drain-lead MIN]
                    [--lifecycle-maintenance-every HOURS]
                    [--lifecycle-maintenance-duration HOURS]
                    [--lifecycle-rolling-waves N] [--lifecycle-rolling-fraction FRAC]
                    [--lifecycle-cordon-below FRAC] [--health-aware]
                    [--backend serial|sharded] [--shards N]
                    [--stream-workload] [--pools N] [--horizon week|year|MINUTES]
  netbatch report   [--trace FILE | --scenario NAME] [--scale S] [--seed N]
                    [--strategy NAME] [--initial rr|util] [--high-load]
                    [--out FILE] [--csv-prefix PREFIX] [--metrics-out FILE]
  netbatch trace    --in FILE|- [--job N] [--pool N] [--cause TYPE]
                    [--why JOB] [--perfetto-out FILE|-]
  netbatch strategies
  netbatch help

Strategies: NoRes ResSusUtil ResSusRand ResSusWaitUtil ResSusWaitRand
            ResSusQueue ResSusWaitSmart MigrateSusUtil DupSusUtil

`--scale` scales the site and arrival rates together (default 0.1).
`--metrics-out` writes the run's telemetry as a Prometheus text
exposition. `report` runs one telemetry-instrumented simulation and
renders a markdown report (Table-1 summary, Figure 2 suspension CDF,
Figure 4 timeline) to `--out` (default report.md); `--csv-prefix P`
also writes P_cdf.csv, P_timeline.csv and P_pools.csv.
`--fault-mtbf` turns on the stochastic fault model (per-machine mean time
between failures, in hours); `--fault-mttr` sets mean repair time (default
12h). `--hardened` enables the resilient rescheduling policy (retry
budgets, exponential backoff, pool blacklisting).
`--lifecycle` turns on the machine-lifecycle model: scheduled maintenance
windows, rolling-update waves and health cordons, each preceded by a
drain during which the machine accepts no new work. The `--lifecycle-*`
knobs tune it (drain lead default 60 min, maintenance every 48h for 2h,
1 rolling wave over a quarter of each pool, cordon below health 0.5).
`--health-aware` makes scheduling weight pools by health-adjusted
effective capacity and proactively evacuates jobs off draining machines
before the kill deadline (implies `--lifecycle` and `--hardened`).
`--backend sharded` runs the simulation on the sharded kernel (pools
partitioned across `--shards N` worker threads, default 4); output is
byte-identical to the serial backend at any shard count.
`--stream-workload` runs the streaming pipeline instead of a
materialized trace: a pool-major workload (`--pools N` pools, default
20, arrival rates scaled by `--scale`) is generated shard-locally epoch
by epoch over `--horizon` (week, year, or minutes; default week), so
peak memory tracks in-flight jobs rather than total jobs — year-scale
runs fit in tens of MiB. Streaming supports only `--strategy NoRes`
with the round-robin initial scheduler; `--sample`, `--series-out`,
`--trace-out`, `--stats` and `--profile-out` work as usual.
`--spans-out` records every job's causal span tree (queue-wait, running,
suspended, backoff, migrating segments, each with the typed cause that
started it) plus the policy/evacuation/fault decision audit, as JSONL.
`--profile-out` writes the kernel self-profile (wall time per event kind
per execution lane) as folded stacks, flamegraph-ready. `trace` queries a
spans file: filter by `--job`/`--pool`/`--cause`, print a `--why JOB`
decision audit (the exact ranking inputs behind each rescheduling,
evacuation and blacklist decision), or export Chrome/Perfetto JSON with
`--perfetto-out` (jobs as tracks, pools as process groups). Sinks named
`-` write to stdout for pipelines; at most one sink may claim stdout.
The paper's full tables live in the bench harness:
  cargo run --release -p netbatch-bench --bin repro_all
";

/// A parsed command line. One value exists per process, so the variant
/// size spread (Simulate carries every knob) is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Generate {
        scenario: String,
        scale: f64,
        seed: Option<u64>,
        out: String,
    },
    Analyze {
        file: String,
        scale: f64,
    },
    Simulate {
        trace: Option<String>,
        scenario: String,
        scale: f64,
        seed: Option<u64>,
        strategy: StrategyKind,
        initial: InitialKind,
        high_load: bool,
        restart_overhead: u64,
        staleness: u64,
        max_restarts: Option<u32>,
        sample: bool,
        series_out: Option<String>,
        trace_out: Option<String>,
        metrics_out: Option<String>,
        spans_out: Option<String>,
        profile_out: Option<String>,
        check_invariants: bool,
        stats: bool,
        fault_mtbf: Option<f64>,
        fault_mttr: f64,
        fault_pool_outages: u32,
        fault_flaky: f64,
        hardened: bool,
        lifecycle: bool,
        lifecycle_drain_lead: u64,
        lifecycle_maintenance_every: f64,
        lifecycle_maintenance_duration: f64,
        lifecycle_rolling_waves: u32,
        lifecycle_rolling_fraction: f64,
        lifecycle_cordon_below: f64,
        health_aware: bool,
        backend: Backend,
        stream_workload: bool,
        pools: Option<u64>,
        horizon: Option<u64>,
    },
    Report {
        trace: Option<String>,
        scenario: String,
        scale: f64,
        seed: Option<u64>,
        strategy: StrategyKind,
        initial: InitialKind,
        high_load: bool,
        out: String,
        csv_prefix: Option<String>,
        metrics_out: Option<String>,
    },
    Trace {
        input: String,
        job: Option<u64>,
        pool: Option<u64>,
        cause: Option<String>,
        why: Option<u64>,
        perfetto_out: Option<String>,
    },
    Strategies,
    Help,
}

fn parse_strategy(name: &str) -> Result<StrategyKind, String> {
    let all = [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
        StrategyKind::ResSusQueue,
        StrategyKind::ResSusWaitSmart,
        StrategyKind::MigrateSusUtil,
        StrategyKind::DupSusUtil,
    ];
    all.into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown strategy `{name}` (try `netbatch strategies`)"))
}

fn parse_backend(name: Option<String>, shards: Option<u64>) -> Result<Backend, String> {
    match name.as_deref().unwrap_or("serial") {
        "serial" => match shards {
            None => Ok(Backend::Serial),
            Some(_) => Err("--shards only applies to --backend sharded".into()),
        },
        "sharded" => {
            let shards = shards.unwrap_or(4);
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            Ok(Backend::Sharded {
                shards: shards as usize,
            })
        }
        other => Err(format!("unknown backend `{other}` (serial|sharded)")),
    }
}

/// Parses `--horizon week|year|MINUTES` into simulated minutes.
fn parse_horizon(v: Option<String>) -> Result<Option<u64>, String> {
    let Some(v) = v else { return Ok(None) };
    let minutes = match v.as_str() {
        "week" => 7 * 24 * 60,
        "year" => 365 * 24 * 60,
        other => other.parse().map_err(|_| {
            format!("--horizon expects week, year or a number of minutes, got `{other}`")
        })?,
    };
    if minutes == 0 {
        return Err("--horizon must be at least 1 minute".into());
    }
    Ok(Some(minutes))
}

fn parse_initial(name: &str) -> Result<InitialKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "rr" | "round-robin" | "roundrobin" => Ok(InitialKind::RoundRobin),
        "util" | "utilization" | "utilization-based" => Ok(InitialKind::UtilizationBased),
        other => Err(format!("unknown initial scheduler `{other}` (rr|util)")),
    }
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    // Flag scanner shared by the subcommands.
    let mut flags: Vec<(String, Option<String>)> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i];
        if let Some(name) = a.strip_prefix("--") {
            let takes_value = !matches!(
                name,
                "sample"
                    | "high-load"
                    | "check-invariants"
                    | "stats"
                    | "hardened"
                    | "lifecycle"
                    | "health-aware"
                    | "stream-workload"
            );
            if takes_value {
                let v = rest
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_string(), Some(v.to_string())));
                i += 2;
            } else {
                flags.push((name.to_string(), None));
                i += 1;
            }
        } else {
            positional.push(a.to_string());
            i += 1;
        }
    }
    let get = |name: &str| -> Option<String> {
        flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.clone())
    };
    let has = |name: &str| flags.iter().any(|(n, _)| n == name);
    let num = |name: &str, default: f64| -> Result<f64, String> {
        match get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
            None => Ok(default),
        }
    };
    let int = |name: &str| -> Result<Option<u64>, String> {
        match get(name) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
            None => Ok(None),
        }
    };
    let fnum = |name: &str| -> Result<Option<f64>, String> {
        match get(name) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
            None => Ok(None),
        }
    };

    match cmd {
        "generate" => Ok(Command::Generate {
            scenario: get("scenario").unwrap_or_else(|| "normal".into()),
            scale: num("scale", 0.1)?,
            seed: int("seed")?,
            out: get("out").ok_or("generate needs --out FILE")?,
        }),
        "analyze" => Ok(Command::Analyze {
            file: positional
                .first()
                .cloned()
                .ok_or("analyze needs a trace file argument")?,
            scale: num("scale", 0.1)?,
        }),
        "simulate" => Ok(Command::Simulate {
            trace: get("trace"),
            scenario: get("scenario").unwrap_or_else(|| "normal".into()),
            scale: num("scale", 0.1)?,
            seed: int("seed")?,
            strategy: parse_strategy(&get("strategy").unwrap_or_else(|| "NoRes".into()))?,
            initial: parse_initial(&get("initial").unwrap_or_else(|| "rr".into()))?,
            high_load: has("high-load"),
            restart_overhead: int("restart-overhead")?.unwrap_or(0),
            staleness: int("staleness")?.unwrap_or(0),
            max_restarts: int("max-restarts")?.map(|v| v as u32),
            sample: has("sample"),
            series_out: get("series-out"),
            trace_out: get("trace-out"),
            metrics_out: get("metrics-out"),
            spans_out: get("spans-out"),
            profile_out: get("profile-out"),
            check_invariants: has("check-invariants"),
            stats: has("stats"),
            fault_mtbf: fnum("fault-mtbf")?,
            fault_mttr: fnum("fault-mttr")?.unwrap_or(12.0),
            fault_pool_outages: int("fault-pool-outages")?.unwrap_or(0) as u32,
            fault_flaky: fnum("fault-flaky")?.unwrap_or(0.0),
            hardened: has("hardened"),
            lifecycle: has("lifecycle"),
            lifecycle_drain_lead: int("lifecycle-drain-lead")?.unwrap_or(60),
            lifecycle_maintenance_every: fnum("lifecycle-maintenance-every")?.unwrap_or(48.0),
            lifecycle_maintenance_duration: fnum("lifecycle-maintenance-duration")?.unwrap_or(2.0),
            lifecycle_rolling_waves: int("lifecycle-rolling-waves")?.unwrap_or(1) as u32,
            lifecycle_rolling_fraction: fnum("lifecycle-rolling-fraction")?.unwrap_or(0.25),
            lifecycle_cordon_below: fnum("lifecycle-cordon-below")?.unwrap_or(0.5),
            health_aware: has("health-aware"),
            backend: parse_backend(get("backend"), int("shards")?)?,
            stream_workload: has("stream-workload"),
            pools: int("pools")?,
            horizon: parse_horizon(get("horizon"))?,
        }),
        "report" => Ok(Command::Report {
            trace: get("trace"),
            scenario: get("scenario").unwrap_or_else(|| "normal".into()),
            scale: num("scale", 0.1)?,
            seed: int("seed")?,
            strategy: parse_strategy(&get("strategy").unwrap_or_else(|| "NoRes".into()))?,
            initial: parse_initial(&get("initial").unwrap_or_else(|| "rr".into()))?,
            high_load: has("high-load"),
            out: get("out").unwrap_or_else(|| "report.md".into()),
            csv_prefix: get("csv-prefix"),
            metrics_out: get("metrics-out"),
        }),
        "trace" => Ok(Command::Trace {
            input: get("in")
                .or_else(|| positional.first().cloned())
                .ok_or("trace needs --in FILE (a spans JSONL from `simulate --spans-out`)")?,
            job: int("job")?,
            pool: int("pool")?,
            cause: get("cause"),
            why: int("why")?,
            perfetto_out: get("perfetto-out"),
        }),
        "strategies" => Ok(Command::Strategies),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command `{other}`; try `netbatch help`")),
    }
}

fn scenario_params(name: &str, scale: f64, seed: Option<u64>) -> Result<ScenarioParams, String> {
    let mut params = match name {
        "normal" => ScenarioParams::normal_week(scale),
        "highsus" | "high-suspension" => ScenarioParams::high_suspension_week(scale),
        "year" => ScenarioParams::year(scale),
        other => return Err(format!("unknown scenario `{other}` (normal|highsus|year)")),
    };
    if let Some(seed) = seed {
        params.seed = seed;
    }
    Ok(params)
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Strategies => {
            for s in [
                StrategyKind::NoRes,
                StrategyKind::ResSusUtil,
                StrategyKind::ResSusRand,
                StrategyKind::ResSusWaitUtil,
                StrategyKind::ResSusWaitRand,
                StrategyKind::ResSusQueue,
                StrategyKind::ResSusWaitSmart,
                StrategyKind::MigrateSusUtil,
                StrategyKind::DupSusUtil,
            ] {
                println!("{}", s.name());
            }
            Ok(())
        }
        Command::Generate {
            scenario,
            scale,
            seed,
            out,
        } => {
            let params = scenario_params(&scenario, scale, seed)?;
            let trace = params.generate_trace();
            let file =
                std::fs::File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
            write_csv(file, &trace).map_err(|e| e.to_string())?;
            println!(
                "wrote {} jobs ({} scenario, scale {scale}) to {out}",
                trace.len(),
                scenario
            );
            Ok(())
        }
        Command::Analyze { file, scale } => {
            let trace = load_trace(&file)?;
            let site = SiteSpec::paper_site(scale);
            let a = TraceAnalysis::of(&trace);
            println!("jobs                 {}", a.jobs);
            println!(
                "high-priority        {} ({:.1}%)",
                a.high_jobs,
                a.high_fraction() * 100.0
            );
            println!("pool-restricted      {}", a.restricted_jobs);
            println!("mean runtime         {:.0} min", a.mean_runtime);
            println!("median runtime       {:.0} min", a.median_runtime);
            println!("p99 runtime          {:.0} min", a.p99_runtime);
            println!("mean cores           {:.2}", a.mean_cores);
            println!("span                 {} min", a.span_minutes);
            println!(
                "offered utilization  {:.1}% (vs paper_site at scale {scale}: {} cores)",
                a.offered_utilization(site.total_cores()) * 100.0,
                site.total_cores()
            );
            Ok(())
        }
        Command::Simulate {
            trace,
            scenario,
            scale,
            seed,
            strategy,
            initial,
            high_load,
            restart_overhead,
            staleness,
            max_restarts,
            sample,
            series_out,
            trace_out,
            metrics_out,
            spans_out,
            profile_out,
            check_invariants,
            stats,
            fault_mtbf,
            fault_mttr,
            fault_pool_outages,
            fault_flaky,
            hardened,
            lifecycle,
            lifecycle_drain_lead,
            lifecycle_maintenance_every,
            lifecycle_maintenance_duration,
            lifecycle_rolling_waves,
            lifecycle_rolling_fraction,
            lifecycle_cordon_below,
            health_aware,
            backend,
            stream_workload,
            pools,
            horizon,
        } => {
            // Stdout is a single stream: at most one sink may claim it.
            let stdout_sinks: Vec<&str> = [
                ("--trace-out", &trace_out),
                ("--metrics-out", &metrics_out),
                ("--spans-out", &spans_out),
                ("--profile-out", &profile_out),
            ]
            .iter()
            .filter(|(_, v)| v.as_deref() == Some("-"))
            .map(|&(name, _)| name)
            .collect();
            if stdout_sinks.len() > 1 {
                return Err(format!(
                    "stdout (`-`) can serve only one sink, but {} each claim it",
                    stdout_sinks.join(" and ")
                ));
            }
            if !stream_workload && (pools.is_some() || horizon.is_some()) {
                return Err("--pools and --horizon apply only to --stream-workload runs".into());
            }
            if stream_workload {
                // The streaming pipeline runs the NoRes fast class on its
                // own pool-major generated workload; everything outside
                // that class is a clear CLI error, never a silent fallback
                // (the kernel itself would panic, not degrade).
                let incompatible = [
                    ("--trace", trace.is_some()),
                    ("--high-load", high_load),
                    ("--restart-overhead", restart_overhead != 0),
                    ("--staleness", staleness != 0),
                    ("--max-restarts", max_restarts.is_some()),
                    ("--metrics-out", metrics_out.is_some()),
                    ("--spans-out", spans_out.is_some()),
                    ("--check-invariants", check_invariants),
                    ("--fault-mtbf", fault_mtbf.is_some()),
                    ("--fault-pool-outages", fault_pool_outages != 0),
                    ("--fault-flaky", fault_flaky != 0.0),
                    ("--hardened", hardened),
                    ("--lifecycle", lifecycle),
                    ("--health-aware", health_aware),
                ];
                if let Some((name, _)) = incompatible.iter().find(|(_, on)| *on) {
                    return Err(format!("{name} is incompatible with --stream-workload"));
                }
                if strategy != StrategyKind::NoRes {
                    return Err(format!(
                        "--stream-workload supports only --strategy NoRes, got {}",
                        strategy.name()
                    ));
                }
                if initial != InitialKind::RoundRobin {
                    return Err(
                        "--stream-workload supports only the round-robin initial scheduler (rr)"
                            .into(),
                    );
                }
                let pools = pools.unwrap_or(20);
                if !(1..=u64::from(u16::MAX)).contains(&pools) {
                    return Err(format!("--pools must be in 1..=65535, got {pools}"));
                }
                return simulate_streaming(
                    pools as u16,
                    horizon.unwrap_or(7 * 24 * 60),
                    scale,
                    seed,
                    sample,
                    series_out,
                    trace_out,
                    profile_out,
                    stats,
                    backend,
                    stdout_sinks.len() == 1,
                );
            }
            // Validate fault/lifecycle rates up front: a NaN or negative
            // rate must be a clear CLI error, never a panic (or a silent
            // zero from an `as u64` saturating cast) deep in plan
            // generation.
            if let Some(v) = fault_mtbf {
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!(
                        "--fault-mtbf must be a positive number of hours, got {v}"
                    ));
                }
            }
            if !fault_mttr.is_finite() || fault_mttr <= 0.0 {
                return Err(format!(
                    "--fault-mttr must be a positive number of hours, got {fault_mttr}"
                ));
            }
            if !fault_flaky.is_finite() || !(0.0..=1.0).contains(&fault_flaky) {
                return Err(format!(
                    "--fault-flaky must be a fraction in [0, 1], got {fault_flaky}"
                ));
            }
            for (name, v) in [
                ("lifecycle-maintenance-every", lifecycle_maintenance_every),
                (
                    "lifecycle-maintenance-duration",
                    lifecycle_maintenance_duration,
                ),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "--{name} must be a non-negative number of hours, got {v}"
                    ));
                }
            }
            if !lifecycle_rolling_fraction.is_finite()
                || !(0.0..=1.0).contains(&lifecycle_rolling_fraction)
            {
                return Err(format!(
                    "--lifecycle-rolling-fraction must be a fraction in [0, 1], got \
                     {lifecycle_rolling_fraction}"
                ));
            }
            if !lifecycle_cordon_below.is_finite() || !(0.0..=1.0).contains(&lifecycle_cordon_below)
            {
                return Err(format!(
                    "--lifecycle-cordon-below must be a fraction in [0, 1], got \
                     {lifecycle_cordon_below}"
                ));
            }
            let params = scenario_params(&scenario, scale, seed)?;
            let trace = match trace {
                Some(path) => load_trace(&path)?,
                None => params.generate_trace(),
            };
            let mut site = params.build_site();
            if high_load {
                site = site.halved();
            }
            let mut config = SimConfig::new(initial, strategy);
            config.restart_overhead = SimDuration::from_minutes(restart_overhead);
            config.view_staleness = SimDuration::from_minutes(staleness);
            config.max_restarts = max_restarts;
            let span = TraceAnalysis::of(&trace).span_minutes;
            if let Some(mtbf_hours) = fault_mtbf {
                // Faults are drawn across the trace's submission span plus
                // one repair window, so late arrivals still see churn.
                let horizon =
                    SimDuration::from_minutes(span.max(1) + (fault_mttr * 60.0).ceil() as u64);
                let mtbf = SimDuration::from_minutes((mtbf_hours * 60.0).ceil().max(1.0) as u64);
                let mttr = SimDuration::from_minutes((fault_mttr * 60.0).ceil().max(1.0) as u64);
                config.fault_model = Some(
                    FaultModel::new(mtbf, mttr, horizon)
                        .with_pool_outages(fault_pool_outages, mttr)
                        .with_flaky(fault_flaky, 16),
                );
            }
            if lifecycle || health_aware {
                let model = LifecycleModel::new(SimDuration::from_minutes(span.max(1)))
                    .with_drain_lead(SimDuration::from_minutes(lifecycle_drain_lead))
                    .with_maintenance(
                        SimDuration::from_minutes(
                            (lifecycle_maintenance_every * 60.0).ceil() as u64
                        ),
                        SimDuration::from_minutes(
                            (lifecycle_maintenance_duration * 60.0).ceil() as u64
                        ),
                    )
                    .with_rolling(
                        lifecycle_rolling_waves,
                        lifecycle_rolling_fraction,
                        SimDuration::from_hours(1),
                    )
                    .with_cordon(
                        (lifecycle_cordon_below * 1000.0).round() as u32,
                        SimDuration::from_hours(24),
                    )
                    .with_flaky(fault_flaky, 16);
                model.validate()?;
                config.lifecycle = Some(model);
            }
            config.health_aware = health_aware;
            config.resilience = if health_aware {
                ResiliencePolicy::hardened().with_evacuation()
            } else if hardened {
                ResiliencePolicy::hardened()
            } else {
                ResiliencePolicy::disabled()
            };
            if let Some(seed) = seed {
                config.seed = seed;
            }
            if sample || series_out.is_some() {
                config = config.with_sampling();
            }
            config.check_invariants = check_invariants;
            config.telemetry = metrics_out.is_some();
            config.spans = spans_out.is_some();
            config.profile = profile_out.is_some();
            config.backend = backend;
            let t0 = std::time::Instant::now();
            // Observer-carrying runs drive the simulator directly; the
            // plain path stays on the Experiment front door.
            let direct = trace_out.is_some()
                || stats
                || metrics_out.is_some()
                || spans_out.is_some()
                || profile_out.is_some();
            let (r, observers, profile) = if direct {
                let mut sim = Simulator::new(&site, trace.to_specs(), config);
                if let Some(path) = &trace_out {
                    let rec = if path == "-" {
                        TraceRecorder::to_stdout()
                    } else {
                        TraceRecorder::to_file(path)
                            .map_err(|e| format!("cannot create {path}: {e}"))?
                    };
                    sim.attach_observer(Box::new(rec));
                }
                if stats {
                    sim.attach_observer(Box::new(StatsProbe::new()));
                }
                let mut output = sim.run_to_completion();
                let observers = std::mem::take(&mut output.observers);
                let profile = output.profile.take();
                (
                    ExperimentResult::from_output(initial, strategy, output),
                    observers,
                    profile,
                )
            } else {
                (Experiment::new(site, trace, config).run(), Vec::new(), None)
            };
            // A stdout sink owns stdout: the human-readable summary moves
            // to stderr so pipelines stay parseable.
            let quiet = stdout_sinks.len() == 1;
            macro_rules! status {
                ($($arg:tt)*) => {
                    if quiet {
                        eprintln!($($arg)*);
                    } else {
                        println!($($arg)*);
                    }
                };
            }
            status!(
                "{} | {} initial{}",
                strategy.name(),
                initial.name(),
                if high_load { " | high load" } else { "" }
            );
            status!("jobs                 {}", r.total_jobs);
            status!("suspend rate         {:.2}%", r.suspend_rate * 100.0);
            status!("AvgCT (suspended)    {:.1} min", r.avg_ct_suspended);
            status!("AvgCT (all)          {:.1} min", r.avg_ct_all);
            status!("AvgST                {:.1} min", r.avg_st);
            status!(
                "AvgWCT               {:.1} min (wait {:.1} + suspend {:.1} + resched {:.1})",
                r.avg_wct(),
                r.waste.avg_wait(),
                r.waste.avg_suspend(),
                r.waste.avg_resched()
            );
            status!(
                "restarts             {} from suspension, {} from queues",
                r.counters.restarts_from_suspend,
                r.counters.restarts_from_wait
            );
            if r.counters.migrations + r.counters.duplicates_launched > 0 {
                status!(
                    "migrations/dups      {} / {}",
                    r.counters.migrations,
                    r.counters.duplicates_launched
                );
            }
            if r.counters.evacuations > 0 || lifecycle || health_aware {
                status!("evacuations          {}", r.counters.evacuations);
            }
            if r.counters.failure_evictions > 0 || fault_mtbf.is_some() {
                status!(
                    "failure evictions    {} ({} retries, {} VPM requeues, {} unrunnable)",
                    r.counters.failure_evictions,
                    r.counters.retries_scheduled,
                    r.counters.vpm_requeues,
                    r.counters.unrunnable
                );
            }
            status!(
                "simulated {} events in {:.2}s",
                r.counters.events,
                t0.elapsed().as_secs_f64()
            );
            let hot = r.hottest_pools(5);
            if hot.iter().any(|(_, s)| s.suspensions > 0) {
                status!("hottest pools (by preemptions):");
                for (pool, s) in hot {
                    if s.suspensions == 0 {
                        continue;
                    }
                    status!(
                        "  {pool}: {} suspensions, peak queue {}, peak suspended {}",
                        s.suspensions,
                        s.peak_queue,
                        s.peak_suspended
                    );
                }
            }
            if let Some(path) = series_out {
                use std::io::Write;
                let mut f = std::fs::File::create(&path)
                    .map_err(|e| format!("cannot create {path}: {e}"))?;
                writeln!(f, "minute,suspended,utilization_pct,waiting")
                    .map_err(|e| e.to_string())?;
                for ((&(t, s), &(_, u)), &(_, w)) in r
                    .suspended_series
                    .samples()
                    .iter()
                    .zip(r.utilization_series.samples())
                    .zip(r.waiting_series.samples())
                {
                    writeln!(f, "{},{s},{u:.2},{w}", t.as_minutes()).map_err(|e| e.to_string())?;
                }
                status!("series written to {path}");
            }
            for obs in &observers {
                if let Some(rec) = obs.as_any().downcast_ref::<TraceRecorder>() {
                    if let Some(path) = &trace_out {
                        status!("trace: {} events written to {path}", rec.events());
                    }
                }
                if let Some(probe) = obs.as_any().downcast_ref::<StatsProbe>() {
                    if quiet {
                        eprint!("{}", probe.report());
                    } else {
                        print!("{}", probe.report());
                    }
                }
                if let Some(tel) = obs.as_any().downcast_ref::<Telemetry>() {
                    if let Some(path) = &metrics_out {
                        let text = tel.render_prom();
                        let samples = validate_exposition(&text)
                            .map_err(|e| format!("internal: invalid exposition: {e}"))?;
                        write_sink(path, &text)?;
                        status!("metrics: {samples} samples written to {path}");
                    }
                }
                if let Some(spans) = obs.as_any().downcast_ref::<SpanRecorder>() {
                    if let Some(path) = &spans_out {
                        write_sink(path, &spans.render_jsonl())?;
                        status!(
                            "spans: {} spans across {} jobs, {} decisions written to {path}",
                            spans.span_count(),
                            spans.job_count(),
                            spans.decisions().len()
                        );
                    }
                }
            }
            if let Some(path) = &profile_out {
                let profile = profile.ok_or("internal: kernel profile missing from run output")?;
                write_sink(path, &profile.render_folded())?;
                status!(
                    "profile: {} events over {} lanes written to {path}",
                    profile.total_events(),
                    profile.lane_count()
                );
            }
            Ok(())
        }
        Command::Report {
            trace,
            scenario,
            scale,
            seed,
            strategy,
            initial,
            high_load,
            out,
            csv_prefix,
            metrics_out,
        } => {
            let params = scenario_params(&scenario, scale, seed)?;
            let trace = match trace {
                Some(path) => load_trace(&path)?,
                None => params.generate_trace(),
            };
            let mut site = params.build_site();
            if high_load {
                site = site.halved();
            }
            let mut config = SimConfig::new(initial, strategy)
                .with_sampling()
                .with_telemetry();
            if let Some(seed) = seed {
                config.seed = seed;
            }
            let run_seed = config.seed;
            let sim = Simulator::new(&site, trace.to_specs(), config);
            let output = sim.run_to_completion();
            let tel = output
                .observer::<Telemetry>()
                .ok_or("internal: telemetry observer missing from run output")?;
            let summary = tel.summary();
            use std::fmt::Write as _;
            let mut doc = String::new();
            let _ = writeln!(doc, "# netbatch run report\n");
            let _ = writeln!(
                doc,
                "Strategy **{}**, initial scheduler **{}**, scenario `{}` at scale {}, \
                 seed {}{}.\n",
                strategy.name(),
                initial.name(),
                scenario,
                scale,
                run_seed,
                if high_load { ", high load" } else { "" }
            );
            doc.push_str(&tel.render_markdown());
            std::fs::write(&out, &doc).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!(
                "report: {} jobs, suspend rate {:.2}%, written to {out}",
                summary.total_jobs,
                summary.suspend_rate * 100.0
            );
            if let Some(prefix) = csv_prefix {
                for (suffix, body) in [
                    ("cdf", tel.cdf_csv()),
                    ("timeline", tel.timeline_csv()),
                    ("pools", tel.pools_csv()),
                ] {
                    let path = format!("{prefix}_{suffix}.csv");
                    std::fs::write(&path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("series written to {path}");
                }
            }
            if let Some(path) = metrics_out {
                let text = tel.render_prom();
                let samples = validate_exposition(&text)
                    .map_err(|e| format!("internal: invalid exposition: {e}"))?;
                std::fs::write(&path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("metrics: {samples} samples written to {path}");
            }
            Ok(())
        }
        Command::Trace {
            input,
            job,
            pool,
            cause,
            why,
            perfetto_out,
        } => {
            let text = if input == "-" {
                use std::io::Read;
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(&input).map_err(|e| format!("cannot open {input}: {e}"))?
            };
            if let Some(path) = &perfetto_out {
                let rendered = perfetto_from_jsonl(&text)?;
                write_sink(path, &rendered)?;
                if path != "-" {
                    println!("perfetto trace written to {path}");
                }
                // Export-only invocation: no causal chain on top.
                if job.is_none() && pool.is_none() && cause.is_none() && why.is_none() {
                    return Ok(());
                }
            }
            let file = parse_spans_file(&input, &text)?;
            println!(
                "{} | {} | {} initial | {} jobs, {} spans, {} decisions",
                file.header
                    .get("schema")
                    .and_then(Value::as_str)
                    .unwrap_or("?"),
                file.header
                    .get("strategy")
                    .and_then(Value::as_str)
                    .unwrap_or("?"),
                file.header
                    .get("initial")
                    .and_then(Value::as_str)
                    .unwrap_or("?"),
                field_u64(&file.header, "jobs").unwrap_or(0),
                field_u64(&file.header, "spans").unwrap_or(0),
                field_u64(&file.header, "decisions").unwrap_or(0),
            );
            // --why J is a job filter plus the decision audit for J.
            let job = why.or(job);
            let selected: Vec<&Value> = file
                .spans
                .iter()
                .filter(|s| job.is_none_or(|j| field_u64(s, "job") == Some(j)))
                .filter(|s| pool.is_none_or(|p| field_u64(s, "pool") == Some(p)))
                .filter(|s| {
                    cause.as_deref().is_none_or(|c| {
                        s.get("cause")
                            .and_then(|v| v.get("type"))
                            .and_then(Value::as_str)
                            == Some(c)
                    })
                })
                .collect();
            if selected.is_empty() {
                println!("no spans match the query");
                return Ok(());
            }
            let mut current_job = None;
            for span in &selected {
                let id = field_u64(span, "job");
                if current_job != id {
                    current_job = id;
                    println!("job {}:", id.unwrap_or(0));
                }
                println!("{}", format_span(span));
            }
            if let Some(j) = why {
                // The decision audit: every policy/evacuation decision the
                // job was subject to, plus the fault outages its causal
                // chain cites, with the exact inputs behind each.
                let outages: Vec<u64> = selected
                    .iter()
                    .filter_map(|s| s.get("cause"))
                    .filter(|c| c.get("type").and_then(Value::as_str) == Some("fault"))
                    .filter_map(|c| field_u64(c, "outage"))
                    .collect();
                let relevant: Vec<&Value> = file
                    .decisions
                    .iter()
                    .filter(|d| match d.get("type").and_then(Value::as_str) {
                        Some("fault") => {
                            field_u64(d, "outage").is_some_and(|o| outages.contains(&o))
                        }
                        _ => field_u64(d, "job") == Some(j),
                    })
                    .collect();
                println!("why job {j}:");
                if relevant.is_empty() {
                    println!("  no recorded decisions — every transition was mechanical");
                }
                for d in relevant {
                    println!("{}", format_decision(d));
                }
            }
            Ok(())
        }
    }
}

/// `simulate --stream-workload`: the shard-local streaming pipeline on a
/// pool-major generated workload. The trace is never materialized — each
/// shard generates its own pools' arrivals epoch by epoch — so the run's
/// peak memory tracks in-flight jobs, not total jobs.
#[allow(clippy::too_many_arguments)]
fn simulate_streaming(
    pools: u16,
    horizon: u64,
    scale: f64,
    seed: Option<u64>,
    sample: bool,
    series_out: Option<String>,
    trace_out: Option<String>,
    profile_out: Option<String>,
    stats: bool,
    backend: Backend,
    quiet: bool,
) -> Result<(), String> {
    let mut p = PerPoolParams::new(pools, scale, horizon);
    if let Some(seed) = seed {
        p.seed = seed;
    }
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.backend = backend;
    config.seed = p.seed;
    if sample || series_out.is_some() {
        config = config.with_sampling();
    }
    config.profile = profile_out.is_some();
    let site = p.build_site();
    let workload = p.build_workload();
    let mut sim = Simulator::new(&site, Vec::new(), config);
    if let Some(path) = &trace_out {
        let rec = if path == "-" {
            TraceRecorder::to_stdout()
        } else {
            TraceRecorder::to_file(path).map_err(|e| format!("cannot create {path}: {e}"))?
        };
        sim.attach_observer(Box::new(rec));
    }
    if stats {
        sim.attach_observer(Box::new(StatsProbe::new()));
    }
    let t0 = std::time::Instant::now();
    let mut output = sim.run_streaming(&workload, p.seed);
    macro_rules! status {
        ($($arg:tt)*) => {
            if quiet {
                eprintln!($($arg)*);
            } else {
                println!($($arg)*);
            }
        };
    }
    status!(
        "NoRes | RoundRobin initial | streaming ({pools} pools, horizon {horizon} min, \
         scale {scale}, seed {})",
        p.seed
    );
    status!(
        "jobs                 {} ({} completed, {} unrunnable)",
        output.counters.completed + output.counters.unrunnable,
        output.counters.completed,
        output.counters.unrunnable
    );
    status!("end time             {} min", output.end_time.as_minutes());
    status!(
        "simulated {} events in {:.2}s",
        output.counters.events,
        t0.elapsed().as_secs_f64()
    );
    if let Some(path) = series_out {
        use std::io::Write;
        let mut f =
            std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
        writeln!(f, "minute,suspended,utilization_pct,waiting").map_err(|e| e.to_string())?;
        for ((&(t, s), &(_, u)), &(_, w)) in output
            .suspended_series
            .samples()
            .iter()
            .zip(output.utilization_series.samples())
            .zip(output.waiting_series.samples())
        {
            writeln!(f, "{},{s},{u:.2},{w}", t.as_minutes()).map_err(|e| e.to_string())?;
        }
        status!("series written to {path}");
    }
    for obs in &output.observers {
        if let Some(rec) = obs.as_any().downcast_ref::<TraceRecorder>() {
            if let Some(path) = &trace_out {
                status!("trace: {} events written to {path}", rec.events());
            }
        }
        if let Some(probe) = obs.as_any().downcast_ref::<StatsProbe>() {
            if quiet {
                eprint!("{}", probe.report());
            } else {
                print!("{}", probe.report());
            }
        }
    }
    if let Some(path) = &profile_out {
        let profile = output
            .profile
            .take()
            .ok_or("internal: kernel profile missing from run output")?;
        write_sink(path, &profile.render_folded())?;
        status!(
            "profile: {} events over {} lanes written to {path}",
            profile.total_events(),
            profile.lane_count()
        );
    }
    Ok(())
}

/// Writes `text` to `path`, or to stdout when `path` is `-`.
fn write_sink(path: &str, text: &str) -> Result<(), String> {
    if path == "-" {
        use std::io::Write;
        std::io::stdout()
            .write_all(text.as_bytes())
            .map_err(|e| format!("cannot write to stdout: {e}"))
    } else {
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

/// One parsed spans file: header, decision-audit lines, span lines.
#[derive(Debug)]
struct SpansFile {
    header: Value,
    decisions: Vec<Value>,
    spans: Vec<Value>,
}

fn parse_spans_file(name: &str, text: &str) -> Result<SpansFile, String> {
    let mut header = None;
    let mut decisions = Vec::new();
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("{name}:{}: {e}", i + 1))?;
        match v.get("kind").and_then(Value::as_str) {
            Some("span") => spans.push(v),
            Some("decision") => decisions.push(v),
            _ if header.is_none() && v.get("schema").is_some() => header = Some(v),
            _ => return Err(format!("{name}:{}: unrecognized line", i + 1)),
        }
    }
    let header = header.ok_or_else(|| format!("{name}: missing netbatch-spans header line"))?;
    let schema = header.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != "netbatch-spans/1" {
        return Err(format!(
            "{name}: unsupported schema `{schema}` (expected netbatch-spans/1)"
        ));
    }
    Ok(SpansFile {
        header,
        decisions,
        spans,
    })
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

/// Renders a span's cause object as a one-line human-readable clause.
fn describe_cause(c: &Value) -> String {
    let kind = c.get("type").and_then(Value::as_str).unwrap_or("?");
    match kind {
        "dispatched" => match c.get("from_queue").and_then(Value::as_bool) {
            Some(true) => "dispatched from queue".into(),
            _ => "dispatched on submit".into(),
        },
        "policy" => {
            let trigger = c.get("trigger").and_then(Value::as_str).unwrap_or("?");
            let verdict = c.get("verdict").and_then(Value::as_str).unwrap_or("?");
            let target = match field_u64(c, "target") {
                Some(p) => format!(" to pool {p}"),
                None => String::new(),
            };
            format!(
                "policy {trigger} -> {verdict}{target} ({} candidates, util {:.1}% -> {:.1}%, \
                 queue {} -> {})",
                field_u64(c, "candidates").unwrap_or(0),
                field_u64(c, "cur_util_milli").unwrap_or(0) as f64 / 10.0,
                field_u64(c, "tgt_util_milli").unwrap_or(0) as f64 / 10.0,
                field_u64(c, "cur_queue").unwrap_or(0),
                field_u64(c, "tgt_queue").unwrap_or(0),
            )
        }
        "fault" => {
            let blacklist = match field_u64(c, "blacklisted_until") {
                Some(t) => format!(", pool blacklisted until t={t}"),
                None => String::new(),
            };
            format!(
                "fault outage #{}{blacklist}",
                field_u64(c, "outage").unwrap_or(0)
            )
        }
        "evacuation" => format!(
            "evacuation window #{}, kill deadline t={}",
            field_u64(c, "window").unwrap_or(0),
            field_u64(c, "deadline").unwrap_or(0),
        ),
        "retry" => format!("retry attempt {}", field_u64(c, "attempt").unwrap_or(0)),
        other => other.into(),
    }
}

/// Renders one span line of a causal chain.
fn format_span(v: &Value) -> String {
    let end = match field_u64(v, "end") {
        Some(t) => t.to_string(),
        None => "open".into(),
    };
    let mut location = match field_u64(v, "pool") {
        Some(p) => format!("pool {p}"),
        None => String::new(),
    };
    if let Some(m) = field_u64(v, "machine") {
        location = format!("{location} machine {m}");
    }
    let cause = v
        .get("cause")
        .map(describe_cause)
        .unwrap_or_else(|| "?".into());
    format!(
        "  [{:>6} .. {end:>6}] {:<10} {location:<20} <- {cause}",
        field_u64(v, "start").unwrap_or(0),
        v.get("phase").and_then(Value::as_str).unwrap_or("?"),
    )
}

/// Renders one decision-audit line for `netbatch trace --why`.
fn format_decision(v: &Value) -> String {
    let t = field_u64(v, "t").unwrap_or(0);
    match v.get("type").and_then(Value::as_str).unwrap_or("?") {
        "policy" => format!(
            "  t={t} {}",
            describe_cause(v) // policy decisions carry the same fields as policy causes
        ),
        "evac" => format!(
            "  t={t} evacuation of job {} off pool {} machine {}: window #{}, {} min \
             remaining, kill deadline t={}",
            field_u64(v, "job").unwrap_or(0),
            field_u64(v, "pool").unwrap_or(0),
            field_u64(v, "machine").unwrap_or(0),
            field_u64(v, "window").unwrap_or(0),
            field_u64(v, "remaining").unwrap_or(0),
            field_u64(v, "deadline").unwrap_or(0),
        ),
        "fault" => {
            let blacklist = match field_u64(v, "blacklisted_until") {
                Some(until) => format!(", pool blacklisted until t={until}"),
                None => String::new(),
            };
            format!(
                "  t={t} fault outage #{} downed pool {} machine {}{blacklist}",
                field_u64(v, "outage").unwrap_or(0),
                field_u64(v, "pool").unwrap_or(0),
                field_u64(v, "machine").unwrap_or(0),
            )
        }
        other => format!("  t={t} {other}"),
    }
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_csv(file).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse_args(&args("generate --scenario year --scale 0.05 --out t.csv")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                scenario: "year".into(),
                scale: 0.05,
                seed: None,
                out: "t.csv".into()
            }
        );
    }

    #[test]
    fn parses_simulate_with_all_flags() {
        let cmd = parse_args(&args(
            "simulate --strategy ResSusWaitRand --initial util --high-load \
             --restart-overhead 15 --staleness 30 --max-restarts 4 --sample --seed 9",
        ))
        .unwrap();
        let Command::Simulate {
            strategy,
            initial,
            high_load,
            restart_overhead,
            staleness,
            max_restarts,
            sample,
            seed,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert_eq!(strategy, StrategyKind::ResSusWaitRand);
        assert_eq!(initial, InitialKind::UtilizationBased);
        assert!(high_load && sample);
        assert_eq!(restart_overhead, 15);
        assert_eq!(staleness, 30);
        assert_eq!(max_restarts, Some(4));
        assert_eq!(seed, Some(9));
    }

    #[test]
    fn parses_observer_flags() {
        let cmd = parse_args(&args(
            "simulate --check-invariants --stats --trace-out events.jsonl --strategy NoRes",
        ))
        .unwrap();
        let Command::Simulate {
            trace_out,
            check_invariants,
            stats,
            sample,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert_eq!(trace_out.as_deref(), Some("events.jsonl"));
        assert!(check_invariants && stats);
        assert!(!sample, "observer flags must not imply sampling");
        // The boolean flags take no value: a following flag must not be
        // swallowed as one.
        let cmd = parse_args(&args("simulate --check-invariants --seed 3")).unwrap();
        let Command::Simulate {
            check_invariants,
            seed,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert!(check_invariants);
        assert_eq!(seed, Some(3));
    }

    #[test]
    fn parses_fault_flags() {
        let cmd = parse_args(&args(
            "simulate --fault-mtbf 48 --fault-mttr 6 --fault-pool-outages 2 \
             --fault-flaky 0.05 --hardened --seed 4",
        ))
        .unwrap();
        let Command::Simulate {
            fault_mtbf,
            fault_mttr,
            fault_pool_outages,
            fault_flaky,
            hardened,
            seed,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert_eq!(fault_mtbf, Some(48.0));
        assert_eq!(fault_mttr, 6.0);
        assert_eq!(fault_pool_outages, 2);
        assert_eq!(fault_flaky, 0.05);
        assert!(hardened);
        // --hardened is boolean: the following flag must not be eaten.
        assert_eq!(seed, Some(4));
    }

    #[test]
    fn fault_flags_default_off() {
        let cmd = parse_args(&args("simulate --strategy NoRes")).unwrap();
        let Command::Simulate {
            fault_mtbf,
            fault_mttr,
            fault_pool_outages,
            fault_flaky,
            hardened,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert_eq!(fault_mtbf, None);
        assert_eq!(fault_mttr, 12.0);
        assert_eq!(fault_pool_outages, 0);
        assert_eq!(fault_flaky, 0.0);
        assert!(!hardened);
    }

    #[test]
    fn parses_lifecycle_flags() {
        let cmd = parse_args(&args(
            "simulate --lifecycle --lifecycle-drain-lead 30 \
             --lifecycle-maintenance-every 24 --lifecycle-maintenance-duration 1 \
             --lifecycle-rolling-waves 2 --lifecycle-rolling-fraction 0.5 \
             --lifecycle-cordon-below 0.4 --health-aware --seed 5",
        ))
        .unwrap();
        let Command::Simulate {
            lifecycle,
            lifecycle_drain_lead,
            lifecycle_maintenance_every,
            lifecycle_maintenance_duration,
            lifecycle_rolling_waves,
            lifecycle_rolling_fraction,
            lifecycle_cordon_below,
            health_aware,
            seed,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert!(lifecycle && health_aware);
        assert_eq!(lifecycle_drain_lead, 30);
        assert_eq!(lifecycle_maintenance_every, 24.0);
        assert_eq!(lifecycle_maintenance_duration, 1.0);
        assert_eq!(lifecycle_rolling_waves, 2);
        assert_eq!(lifecycle_rolling_fraction, 0.5);
        assert_eq!(lifecycle_cordon_below, 0.4);
        // Both booleans take no value: --seed must not be swallowed.
        assert_eq!(seed, Some(5));
    }

    #[test]
    fn lifecycle_flags_default_off() {
        let cmd = parse_args(&args("simulate")).unwrap();
        let Command::Simulate {
            lifecycle,
            health_aware,
            lifecycle_drain_lead,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert!(!lifecycle && !health_aware);
        assert_eq!(lifecycle_drain_lead, 60);
    }

    #[test]
    fn invalid_fault_rates_are_rejected() {
        // Validation happens in run(), after parsing: build the command
        // and check the error text, without touching the filesystem.
        let run_err = |s: &str| run(parse_args(&args(s)).unwrap()).unwrap_err();
        assert!(run_err("simulate --scale 0.001 --fault-mtbf -3").contains("--fault-mtbf"));
        assert!(run_err("simulate --scale 0.001 --fault-mtbf 0").contains("positive"));
        assert!(run_err("simulate --scale 0.001 --fault-mtbf NaN").contains("--fault-mtbf"));
        assert!(
            run_err("simulate --scale 0.001 --fault-mtbf 48 --fault-mttr 0")
                .contains("--fault-mttr")
        );
        assert!(
            run_err("simulate --scale 0.001 --fault-mtbf 48 --fault-mttr -1").contains("positive")
        );
        assert!(run_err("simulate --scale 0.001 --fault-flaky 1.5").contains("--fault-flaky"));
        assert!(run_err("simulate --scale 0.001 --fault-flaky NaN").contains("[0, 1]"));
    }

    #[test]
    fn invalid_lifecycle_rates_are_rejected() {
        let run_err = |s: &str| run(parse_args(&args(s)).unwrap()).unwrap_err();
        assert!(
            run_err("simulate --scale 0.001 --lifecycle --lifecycle-maintenance-every -1")
                .contains("--lifecycle-maintenance-every")
        );
        assert!(
            run_err("simulate --scale 0.001 --lifecycle --lifecycle-maintenance-duration NaN")
                .contains("non-negative")
        );
        assert!(
            run_err("simulate --scale 0.001 --lifecycle --lifecycle-rolling-fraction 2")
                .contains("--lifecycle-rolling-fraction")
        );
        assert!(
            run_err("simulate --scale 0.001 --lifecycle --lifecycle-rolling-fraction NaN")
                .contains("[0, 1]")
        );
        assert!(
            run_err("simulate --scale 0.001 --lifecycle --lifecycle-cordon-below -0.1")
                .contains("--lifecycle-cordon-below")
        );
    }

    #[test]
    fn parses_metrics_out() {
        let cmd = parse_args(&args("simulate --metrics-out run.prom --seed 2")).unwrap();
        let Command::Simulate {
            metrics_out, seed, ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert_eq!(metrics_out.as_deref(), Some("run.prom"));
        assert_eq!(seed, Some(2));
    }

    #[test]
    fn parses_report() {
        let cmd = parse_args(&args(
            "report --strategy ResSusWaitUtil --initial util --high-load \
             --out r.md --csv-prefix fig --metrics-out r.prom --scale 0.02",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                trace: None,
                scenario: "normal".into(),
                scale: 0.02,
                seed: None,
                strategy: StrategyKind::ResSusWaitUtil,
                initial: InitialKind::UtilizationBased,
                high_load: true,
                out: "r.md".into(),
                csv_prefix: Some("fig".into()),
                metrics_out: Some("r.prom".into()),
            }
        );
        // Defaults.
        let cmd = parse_args(&args("report")).unwrap();
        let Command::Report {
            out,
            csv_prefix,
            metrics_out,
            ..
        } = cmd
        else {
            panic!("expected report")
        };
        assert_eq!(out, "report.md");
        assert_eq!(csv_prefix, None);
        assert_eq!(metrics_out, None);
    }

    #[test]
    fn parses_backend_flags() {
        let backend_of = |s: &str| match parse_args(&args(s)).unwrap() {
            Command::Simulate { backend, .. } => backend,
            other => panic!("expected simulate, got {other:?}"),
        };
        assert_eq!(backend_of("simulate"), Backend::Serial);
        assert_eq!(backend_of("simulate --backend serial"), Backend::Serial);
        assert_eq!(
            backend_of("simulate --backend sharded"),
            Backend::Sharded { shards: 4 }
        );
        assert_eq!(
            backend_of("simulate --backend sharded --shards 8"),
            Backend::Sharded { shards: 8 }
        );
        assert!(parse_args(&args("simulate --backend warp"))
            .unwrap_err()
            .contains("unknown backend"));
        assert!(parse_args(&args("simulate --shards 2"))
            .unwrap_err()
            .contains("--backend sharded"));
        assert!(parse_args(&args("simulate --backend sharded --shards 0"))
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn parses_stream_workload_flags() {
        let cmd = parse_args(&args(
            "simulate --stream-workload --pools 8 --horizon year --seed 3",
        ))
        .unwrap();
        let Command::Simulate {
            stream_workload,
            pools,
            horizon,
            seed,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert!(stream_workload);
        assert_eq!(pools, Some(8));
        assert_eq!(horizon, Some(365 * 24 * 60));
        // --stream-workload is boolean: --pools must not be swallowed.
        assert_eq!(seed, Some(3));

        let horizon_of = |s: &str| match parse_args(&args(s)).unwrap() {
            Command::Simulate { horizon, .. } => horizon,
            other => panic!("expected simulate, got {other:?}"),
        };
        assert_eq!(horizon_of("simulate"), None);
        assert_eq!(
            horizon_of("simulate --stream-workload --horizon week"),
            Some(7 * 24 * 60)
        );
        assert_eq!(
            horizon_of("simulate --stream-workload --horizon 1440"),
            Some(1440)
        );
        assert!(parse_args(&args("simulate --horizon fortnight"))
            .unwrap_err()
            .contains("--horizon"));
        assert!(parse_args(&args("simulate --horizon 0"))
            .unwrap_err()
            .contains("at least 1 minute"));
    }

    #[test]
    fn stream_workload_rejects_incompatible_flags() {
        let run_err = |s: &str| run(parse_args(&args(s)).unwrap()).unwrap_err();
        assert!(run_err("simulate --stream-workload --strategy ResSusUtil").contains("NoRes"));
        assert!(run_err("simulate --stream-workload --initial util").contains("round-robin"));
        assert!(run_err("simulate --stream-workload --fault-mtbf 48").contains("--fault-mtbf"));
        assert!(run_err("simulate --stream-workload --lifecycle").contains("--lifecycle"));
        assert!(
            run_err("simulate --stream-workload --metrics-out m.prom").contains("--metrics-out")
        );
        assert!(run_err("simulate --stream-workload --pools 0").contains("--pools"));
        // The streaming knobs are meaningless on materialized runs.
        assert!(run_err("simulate --pools 4").contains("--stream-workload"));
        assert!(run_err("simulate --horizon year").contains("--stream-workload"));
    }

    #[test]
    fn parses_provenance_flags() {
        let cmd = parse_args(&args("simulate --spans-out s.jsonl --profile-out p.folded")).unwrap();
        let Command::Simulate {
            spans_out,
            profile_out,
            ..
        } = cmd
        else {
            panic!("expected simulate")
        };
        assert_eq!(spans_out.as_deref(), Some("s.jsonl"));
        assert_eq!(profile_out.as_deref(), Some("p.folded"));
    }

    #[test]
    fn parses_trace_command() {
        let cmd = parse_args(&args(
            "trace --in s.jsonl --job 7 --cause fault --perfetto-out p.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                input: "s.jsonl".into(),
                job: Some(7),
                pool: None,
                cause: Some("fault".into()),
                why: None,
                perfetto_out: Some("p.json".into()),
            }
        );
        // Positional input and --why.
        let cmd = parse_args(&args("trace s.jsonl --why 3")).unwrap();
        let Command::Trace { input, why, .. } = cmd else {
            panic!("expected trace")
        };
        assert_eq!(input, "s.jsonl");
        assert_eq!(why, Some(3));
        assert!(parse_args(&args("trace")).unwrap_err().contains("--in"));
    }

    #[test]
    fn duplicate_stdout_sinks_are_rejected() {
        let run_err = |s: &str| run(parse_args(&args(s)).unwrap()).unwrap_err();
        let err = run_err("simulate --scale 0.001 --spans-out - --metrics-out -");
        assert!(err.contains("--metrics-out") && err.contains("--spans-out"));
        assert!(err.contains("stdout"));
        let err = run_err("simulate --scale 0.001 --trace-out - --profile-out -");
        assert!(err.contains("--trace-out") && err.contains("--profile-out"));
    }

    #[test]
    fn trace_rejects_bad_spans_files() {
        assert!(parse_spans_file("t", "{\"kind\":\"span\"}\n")
            .unwrap_err()
            .contains("missing netbatch-spans header"));
        assert!(
            parse_spans_file("t", "{\"schema\":\"netbatch-spans/99\"}\n")
                .unwrap_err()
                .contains("unsupported schema")
        );
        assert!(parse_spans_file("t", "not json\n")
            .unwrap_err()
            .contains("t:1"));
        let ok = parse_spans_file(
            "t",
            "{\"schema\":\"netbatch-spans/1\",\"strategy\":\"NoRes\",\"initial\":\"rr\",\
             \"jobs\":1,\"spans\":1,\"decisions\":0}\n\
             {\"kind\":\"span\",\"job\":0,\"seq\":0,\"phase\":\"running\",\"start\":0,\
             \"end\":5,\"pool\":0,\"machine\":1,\"cause\":{\"type\":\"submitted\"}}\n",
        )
        .unwrap();
        assert_eq!(ok.spans.len(), 1);
        assert!(ok.decisions.is_empty());
    }

    #[test]
    fn cause_descriptions_surface_ranking_inputs() {
        let policy = json::parse(
            "{\"type\":\"policy\",\"trigger\":\"suspend\",\"verdict\":\"restart\",\
             \"target\":3,\"candidates\":16,\"cur_util_milli\":913,\"tgt_util_milli\":252,\
             \"cur_queue\":7,\"tgt_queue\":0}",
        )
        .unwrap();
        let text = describe_cause(&policy);
        assert!(text.contains("suspend -> restart to pool 3"), "{text}");
        assert!(text.contains("16 candidates"), "{text}");
        assert!(text.contains("91.3% -> 25.2%"), "{text}");
        assert!(text.contains("queue 7 -> 0"), "{text}");
        let fault =
            json::parse("{\"type\":\"fault\",\"outage\":4,\"blacklisted_until\":212}").unwrap();
        assert!(describe_cause(&fault).contains("outage #4"));
        assert!(describe_cause(&fault).contains("blacklisted until t=212"));
    }

    #[test]
    fn strategy_names_parse_case_insensitively() {
        assert_eq!(
            parse_strategy("ressusutil").unwrap(),
            StrategyKind::ResSusUtil
        );
        assert_eq!(
            parse_strategy("MigrateSusUtil").unwrap(),
            StrategyKind::MigrateSusUtil
        );
        assert!(parse_strategy("bogus").is_err());
    }

    #[test]
    fn missing_values_are_reported() {
        assert!(parse_args(&args("generate --out"))
            .unwrap_err()
            .contains("--out"));
        assert!(parse_args(&args("generate")).unwrap_err().contains("--out"));
        assert!(parse_args(&args("analyze"))
            .unwrap_err()
            .contains("trace file"));
        assert!(parse_args(&args("frobnicate"))
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn help_and_strategies_parse() {
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&args("strategies")).unwrap(),
            Command::Strategies
        );
    }

    #[test]
    fn scenario_params_respects_seed() {
        let p = scenario_params("normal", 0.01, Some(7)).unwrap();
        assert_eq!(p.seed, 7);
        assert!(scenario_params("nope", 1.0, None).is_err());
    }
}
