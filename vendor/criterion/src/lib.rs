//! A minimal, dependency-free benchmark harness with (a subset of) the
//! `criterion` crate's API.
//!
//! This workspace builds in fully offline environments where crates.io is
//! unreachable, so the real `criterion` cannot be fetched. This shim keeps
//! the `harness = false` bench targets compiling and producing useful
//! wall-clock numbers: each benchmark is warmed up once, then timed over
//! `sample_size` samples, and the mean/min/max per-iteration times are
//! printed in criterion-like one-line reports.
//!
//! No statistical analysis, plotting, or baseline comparison is performed —
//! for cross-PR perf tracking this repo uses the `perf_baseline` binary,
//! which writes absolute wall-clock numbers to `BENCH_dispatch.json`.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            group_name: name.to_string(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone (ungrouped) benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &id.into_benchmark_id().full,
            self.default_sample_size,
            None,
            &mut f,
        );
        self
    }
}

/// Anything accepted where a benchmark id is expected (`&str`, `String`,
/// or an explicit [`BenchmarkId`]), mirroring criterion's API surface.
pub trait IntoBenchmarkId {
    /// Converts `self` into the canonical id form.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// How much work one iteration of a benchmark performs, used to report
/// throughput alongside raw time — matching criterion's API.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// One iteration processes this many logical elements (events, ops).
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    group_name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration work for every following benchmark in
    /// this group; reports gain an `thrpt:` column derived from the mean.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group_name, id.into_benchmark_id().full);
        run_bench(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.group_name, id.full);
        run_bench(
            &full,
            self.sample_size,
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (printing nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured sample slot.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (also primes caches/allocator so sample 0 isn't an outlier),
        // doubling as calibration: fast routines get batched so each sample
        // spans at least ~5ms and stays above the OS timer's resolution.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let n = self.samples.capacity();
        for _ in 0..n {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_bench<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<55} (no samples: b.iter was not called)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let thrpt = throughput
        .map(|t| format!("  thrpt: {}", fmt_throughput(t, mean)))
        .unwrap_or_default();
    println!(
        "{id:<55} time: [{} {} {}]  ({} samples){thrpt}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        bencher.samples.len(),
    );
}

fn fmt_throughput(t: Throughput, mean: Duration) -> String {
    let secs = mean.as_secs_f64().max(1e-12);
    match t {
        Throughput::Elements(n) => {
            let rate = n as f64 / secs;
            if rate >= 1e6 {
                format!("{:.3} Melem/s", rate / 1e6)
            } else if rate >= 1e3 {
                format!("{:.3} Kelem/s", rate / 1e3)
            } else {
                format!("{rate:.1} elem/s")
            }
        }
        Throughput::Bytes(n) => {
            let rate = n as f64 / secs;
            if rate >= 1e9 {
                format!("{:.3} GiB/s", rate / (1u64 << 30) as f64)
            } else if rate >= 1e6 {
                format!("{:.3} MiB/s", rate / (1u64 << 20) as f64)
            } else {
                format!("{:.3} KiB/s", rate / 1024.0)
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Collects benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
