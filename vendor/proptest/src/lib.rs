//! A minimal, dependency-free property-testing shim with (a subset of) the
//! `proptest` crate's API.
//!
//! This workspace builds in fully offline environments where crates.io is
//! unreachable, so the real `proptest` cannot be fetched. This shim keeps
//! the repo's property tests compiling and running by reimplementing the
//! surface they use: the [`proptest!`] macro, `prop_assert!`-style
//! assertions, numeric-range / tuple / mapped / one-of strategies, and the
//! `collection` / `option` / `sample` / `bool` helper modules.
//!
//! Differences from the real crate (deliberate, to stay tiny):
//!
//! * **No shrinking.** A failing case reports its inputs and the
//!   deterministic case number so it can be replayed, but is not minimized.
//! * **Deterministic by default.** Case `i` of test `t` always sees the
//!   same inputs (seeded from the test's module path and `i`), so runs are
//!   reproducible even without a persistence file.
//! * **Regression files are honoured.** Like the real crate, a failing
//!   case appends a `cc <64-hex>` line (the generator state, see
//!   [`test_runner::persistence`]) to `<test-file>.proptest-regressions`
//!   next to the test source, and every persisted line is replayed before
//!   any novel cases are generated. Check these files in to source
//!   control.
//! * Only the strategy combinators the workspace uses are provided.

pub mod test_runner {
    //! Test execution: config, RNG and failure type.

    /// SplitMix64 step, used for seeding and stream derivation.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small deterministic xoshiro256++ generator for test-case inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// The generator for one test case, derived from the test's name
        /// and the case index — fully deterministic across runs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Rebuilds a generator from a persisted state (the format stored
        /// in `.proptest-regressions` files). All-zero states are invalid
        /// for xoshiro256++ and are nudged onto a fixed non-zero state.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            TestRng { s }
        }

        /// The current generator state, persistable with
        /// [`crate::test_runner::persistence::render_cc_line`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below bound must be positive");
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }

    /// How many cases to run per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases generated per property test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases, overridable with the `PROPTEST_CASES` env var.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion (carries the formatted message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub mod persistence {
        //! `.proptest-regressions` load/save, in the upstream crate's
        //! file format: comment lines plus `cc <64-hex> # <note>` entries.
        //! The 64 hex digits encode the four big-endian `u64` words of
        //! the [`super::TestRng`] state a failing case started from, so a
        //! persisted line deterministically regenerates that case's
        //! inputs.

        use std::io::Write;
        use std::path::PathBuf;

        /// Header written when a regression file is first created
        /// (byte-identical to the upstream crate's, so tooling that knows
        /// one format knows both).
        const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

        /// Locates `test_file` (a `file!()` path, relative to the
        /// workspace root) from the test process working directory (the
        /// *package* root, which may sit below the workspace root) and
        /// returns the sibling `.proptest-regressions` path.
        fn regressions_path(test_file: &str) -> Option<PathBuf> {
            let reg_name = format!("{}.proptest-regressions", test_file.strip_suffix(".rs")?);
            ["", "../", "../../"].iter().find_map(|base| {
                PathBuf::from(format!("{base}{test_file}"))
                    .exists()
                    .then(|| PathBuf::from(format!("{base}{reg_name}")))
            })
        }

        /// Parses one regression-file line; `None` for comments, blanks,
        /// and malformed entries.
        pub fn parse_cc_line(line: &str) -> Option<[u64; 4]> {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if hex.len() != 64 {
                return None;
            }
            let mut state = [0u64; 4];
            for (i, word) in state.iter_mut().enumerate() {
                *word = u64::from_str_radix(&hex[i * 16..(i + 1) * 16], 16).ok()?;
            }
            Some(state)
        }

        /// Renders a state as a `cc` line (without the trailing newline).
        pub fn render_cc_line(state: [u64; 4], note: &str) -> String {
            let hex: String = state.iter().map(|w| format!("{w:016x}")).collect();
            format!("cc {hex} # {}", note.replace('\n', " "))
        }

        /// Loads every persisted generator state for a test source file.
        /// Missing files (the common case) yield an empty list.
        pub fn load_regressions(test_file: &str) -> Vec<[u64; 4]> {
            let Some(path) = regressions_path(test_file) else {
                return Vec::new();
            };
            let Ok(text) = std::fs::read_to_string(path) else {
                return Vec::new();
            };
            text.lines().filter_map(parse_cc_line).collect()
        }

        /// Appends a failing case's starting state to the test file's
        /// regression file (creating it, with the conventional header, on
        /// first use). Already-persisted states are not duplicated. Best
        /// effort: I/O problems are swallowed — persistence must never
        /// mask the test failure being reported.
        pub fn save_regression(test_file: &str, state: [u64; 4], note: &str) {
            let Some(path) = regressions_path(test_file) else {
                return;
            };
            let line = render_cc_line(state, note);
            let hex_end = line.find(" #").unwrap_or(line.len());
            match std::fs::read_to_string(&path) {
                Ok(existing) if existing.contains(&line[..hex_end]) => return,
                Ok(_) => {}
                Err(_) => {
                    let _ = std::fs::write(&path, HEADER);
                }
            }
            if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&path) {
                let _ = writeln!(f, "{line}");
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniformly picks one of several strategies per case
    /// (the [`crate::prop_oneof!`] backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain: no rejection needed.
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )+};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$v:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A/a)
        (A/a, B/b)
        (A/a, B/b, C/c)
        (A/a, B/b, C/c, D/d)
        (A/a, B/b, C/c, D/d, E/e)
        (A/a, B/b, C/c, D/d, E/e, F/f)
        (A/a, B/b, C/c, D/d, E/e, F/f, G/g)
        (A/a, B/b, C/c, D/d, E/e, F/f, G/g, H/h)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for a primitive type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one element of `values` per case.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select { values }
    }

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.values.len() as u64) as usize;
            self.values[i].clone()
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniform `true` / `false`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests: zero-argument `#[test]` functions that run the
/// body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion backend of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Replay every persisted failure state for this source
                // file before generating novel cases (regression files
                // are per-file, so each property replays all of them).
                let __persisted =
                    $crate::test_runner::persistence::load_regressions(file!());
                for (__idx, __state) in __persisted.into_iter().enumerate() {
                    let mut __rng = $crate::test_runner::TestRng::from_state(__state);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            Ok(())
                        })();
                    if let Err(err) = __outcome {
                        panic!(
                            "proptest {} failed replaying persisted regression #{} \
                             of {}.proptest-regressions: {}",
                            stringify!($name),
                            __idx,
                            file!().trim_end_matches(".rs"),
                            err
                        );
                    }
                }
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let __state = __rng.state();
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            Ok(())
                        })();
                    if let Err(err) = __outcome {
                        $crate::test_runner::persistence::save_regression(
                            file!(),
                            __state,
                            &format!("{}: deterministic case {}: {}", stringify!($name), __case, err),
                        );
                        panic!(
                            "proptest {} failed at deterministic case {} \
                             (state persisted to {}.proptest-regressions): {}",
                            stringify!($name),
                            __case,
                            file!().trim_end_matches(".rs"),
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion; fails the current case without panicking the
/// generator loop machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

/// Uniformly picks one of several same-valued strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("x", 7);
        let mut b = crate::test_runner::TestRng::for_case("x", 7);
        assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = crate::test_runner::TestRng::for_case("roundtrip", 3);
        let mut b = crate::test_runner::TestRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero state (invalid for xoshiro256++) still yields a
        // working generator.
        let mut z = crate::test_runner::TestRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn cc_lines_roundtrip_through_the_file_format() {
        use crate::test_runner::persistence::{parse_cc_line, render_cc_line};
        let state = [0x29f2_c6f5_e91d_4a99, 0x0f5f_c49c_5c34_0220, 7, u64::MAX];
        let line = render_cc_line(state, "shrinks to x = 1\nmultiline note");
        assert!(line.starts_with("cc 29f2c6f5e91d4a99"));
        assert!(!line.contains('\n'), "notes must stay on one line");
        assert_eq!(parse_cc_line(&line), Some(state));
        // Whitespace and the upstream file's comment lines are skipped.
        assert_eq!(parse_cc_line(&format!("   {line}")), Some(state));
        assert_eq!(parse_cc_line("# comment"), None);
        assert_eq!(parse_cc_line(""), None);
        assert_eq!(parse_cc_line("cc 123abc # too short"), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0u8..10, 1..20), flag in prop::bool::ANY) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 10), "out of range with flag {flag}");
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![(0u32..5).prop_map(|v| v * 2), Just(100u32)]) {
            prop_assert!(x == 100 || x < 10);
        }
    }
}
