//! Jobs: static specification, pool affinity, and the lifecycle state
//! machine with the accounting the paper's metrics are computed from.

use std::error::Error;
use std::fmt;

use netbatch_sim_engine::queue::EventId;
use netbatch_sim_engine::time::{SimDuration, SimTime};

use crate::ids::{JobId, PoolId, TaskId};
use crate::priority::Priority;

/// Which physical pools a job is allowed to run in.
///
/// Latency-sensitive high-priority jobs at Intel are "configured to only run
/// in specific sets of physical pools" (§2.3) — the root cause of suspension
/// bursts at 40% global utilization. `Any` jobs may run everywhere.
#[derive(Debug, PartialEq, Eq, Hash, Default)]
pub enum PoolAffinity {
    /// Eligible for every pool at the site.
    #[default]
    Any,
    /// Eligible only for the listed pools.
    Subset(Vec<PoolId>),
}

// Manual Clone so `clone_from` reuses an existing `Subset` buffer — the
// simulator's scratch `JobSpec` is re-cloned from a job record on every
// scheduling decision, and the derive would reallocate the pool list each
// time.
impl Clone for PoolAffinity {
    fn clone(&self) -> Self {
        match self {
            PoolAffinity::Any => PoolAffinity::Any,
            PoolAffinity::Subset(pools) => PoolAffinity::Subset(pools.clone()),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        match (self, source) {
            (PoolAffinity::Subset(dst), PoolAffinity::Subset(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl PoolAffinity {
    /// Returns true if the job may run in `pool`.
    pub fn allows(&self, pool: PoolId) -> bool {
        match self {
            PoolAffinity::Any => true,
            PoolAffinity::Subset(pools) => pools.contains(&pool),
        }
    }

    /// Enumerates the candidate pools given the site has `n_pools` pools.
    pub fn candidates(&self, n_pools: u16) -> Vec<PoolId> {
        let mut out = Vec::new();
        self.candidates_into(n_pools, &mut out);
        out
    }

    /// Writes the candidate pools into `out` (cleared first) — the
    /// allocation-free variant the dispatch hot path uses with a scratch
    /// buffer.
    pub fn candidates_into(&self, n_pools: u16, out: &mut Vec<PoolId>) {
        out.clear();
        match self {
            PoolAffinity::Any => out.extend((0..n_pools).map(PoolId)),
            PoolAffinity::Subset(pools) => {
                out.extend(pools.iter().copied().filter(|p| p.as_u16() < n_pools))
            }
        }
    }

    /// Number of candidate pools at a site with `n_pools` pools.
    pub fn candidate_count(&self, n_pools: u16) -> usize {
        self.candidates(n_pools).len()
    }
}

/// The resource footprint a job occupies while running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resources {
    /// Cores occupied while running (released while suspended).
    pub cores: u32,
    /// Resident memory in MB (retained while suspended — NetBatch suspension
    /// is SIGSTOP-style, the process stays on the host).
    pub memory_mb: u64,
}

impl Resources {
    /// A single-core footprint with the given memory.
    pub const fn single_core(memory_mb: u64) -> Self {
        Resources {
            cores: 1,
            memory_mb,
        }
    }
}

impl Default for Resources {
    fn default() -> Self {
        Resources {
            cores: 1,
            memory_mb: 1024,
        }
    }
}

/// Immutable description of a job as submitted by a user.
///
/// Matches the fields the paper says the NetBatch trace carries: "computing
/// resource and memory requirements, submission time and priority".
///
/// # Examples
///
/// ```
/// use netbatch_cluster::job::JobSpec;
/// use netbatch_cluster::priority::Priority;
/// use netbatch_sim_engine::time::{SimDuration, SimTime};
///
/// let spec = JobSpec::new(7.into(), SimTime::ZERO, SimDuration::from_hours(3))
///     .with_priority(Priority::HIGH)
///     .with_cores(2);
/// assert_eq!(spec.resources.cores, 2);
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Unique job identifier.
    pub id: JobId,
    /// When the user submitted the job to the virtual pool manager.
    pub submit_time: SimTime,
    /// Pure compute time required on a reference (speed 1.0) machine.
    pub runtime: SimDuration,
    /// Core and memory footprint.
    pub resources: Resources,
    /// Scheduling priority (ownership class).
    pub priority: Priority,
    /// Pools this job may execute in.
    pub affinity: PoolAffinity,
    /// Optional task grouping (§2.2: a task's result needs all its jobs).
    pub task: Option<TaskId>,
}

// Manual Clone so `clone_from` forwards to `PoolAffinity::clone_from`,
// which reuses an existing `Subset` buffer. The simulator re-clones its
// scratch spec from a job record on every routing decision, so the derive's
// default `clone_from` (drop + fresh clone) would put an allocation back on
// the hot path.
impl Clone for JobSpec {
    fn clone(&self) -> Self {
        JobSpec {
            id: self.id,
            submit_time: self.submit_time,
            runtime: self.runtime,
            resources: self.resources,
            priority: self.priority,
            affinity: self.affinity.clone(),
            task: self.task,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.id = source.id;
        self.submit_time = source.submit_time;
        self.runtime = source.runtime;
        self.resources = source.resources;
        self.priority = source.priority;
        self.affinity.clone_from(&source.affinity);
        self.task = source.task;
    }
}

impl JobSpec {
    /// Creates a spec with default footprint (1 core, 1 GB), low priority
    /// and no affinity restriction.
    pub fn new(id: JobId, submit_time: SimTime, runtime: SimDuration) -> Self {
        JobSpec {
            id,
            submit_time,
            runtime,
            resources: Resources::default(),
            priority: Priority::LOW,
            affinity: PoolAffinity::Any,
            task: None,
        }
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the core requirement.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.resources.cores = cores;
        self
    }

    /// Sets the memory requirement in MB.
    pub fn with_memory_mb(mut self, memory_mb: u64) -> Self {
        self.resources.memory_mb = memory_mb;
        self
    }

    /// Restricts the job to a set of pools.
    pub fn with_affinity(mut self, affinity: PoolAffinity) -> Self {
        self.affinity = affinity;
        self
    }

    /// Assigns the job to a task group.
    pub fn with_task(mut self, task: TaskId) -> Self {
        self.task = Some(task);
        self
    }
}

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobPhase {
    /// Known to the simulator but not yet submitted.
    Created,
    /// At the virtual pool manager, being routed (also the transient state
    /// between a rescheduling decision and re-submission).
    AtVpm,
    /// Waiting in a physical pool's queue.
    Waiting {
        /// The pool whose queue holds the job.
        pool: PoolId,
    },
    /// Executing on a machine.
    Running {
        /// The hosting pool.
        pool: PoolId,
        /// The hosting machine (pool-local id).
        machine: crate::ids::MachineId,
    },
    /// Preempted by a higher-priority job; resident but stopped.
    Suspended {
        /// The hosting pool.
        pool: PoolId,
        /// The machine the job is suspended on.
        machine: crate::ids::MachineId,
    },
    /// Finished successfully.
    Completed,
}

impl JobPhase {
    /// Short human-readable name, used in logs and error messages.
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Created => "created",
            JobPhase::AtVpm => "at-vpm",
            JobPhase::Waiting { .. } => "waiting",
            JobPhase::Running { .. } => "running",
            JobPhase::Suspended { .. } => "suspended",
            JobPhase::Completed => "completed",
        }
    }
}

/// Error returned when a lifecycle method is called in the wrong phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseError {
    /// The job in question.
    pub job: JobId,
    /// The operation that was attempted.
    pub operation: &'static str,
    /// The phase the job was actually in.
    pub actual: &'static str,
}

impl fmt::Display for PhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid lifecycle operation `{}` on {} in phase `{}`",
            self.operation, self.job, self.actual
        )
    }
}

impl Error for PhaseError {}

/// A job's dynamic state: phase plus the time accounting that the paper's
/// metrics (AvgCT, AvgST, AvgWCT and its three components) are built from.
///
/// The record is a strict state machine; every transition method validates
/// the current phase and returns a [`PhaseError`] on misuse, which keeps
/// accounting bugs loud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    spec: JobSpec,
    phase: JobPhase,
    /// When the job entered its current phase.
    phase_since: SimTime,
    /// Wall-clock minutes of execution left in the *current attempt* on the
    /// current machine (scaled by machine speed at start).
    remaining_wall: SimDuration,
    /// Wall-clock length of the current attempt as started (for computing
    /// discarded progress on restart).
    attempt_wall: SimDuration,
    // ---- accounting ----
    wait_total: SimDuration,
    suspend_total: SimDuration,
    run_total: SimDuration,
    /// Execution progress thrown away by restarts, plus any restart overhead.
    resched_waste: SimDuration,
    suspensions: u32,
    restarts_from_suspend: u32,
    restarts_from_wait: u32,
    migrations: u32,
    first_started_at: Option<SimTime>,
    completed_at: Option<SimTime>,
    /// Pending completion event in the simulator's queue, if running.
    pub completion_event: Option<EventId>,
    /// Pending wait-threshold timer, if any.
    pub wait_timer_event: Option<EventId>,
}

impl JobRecord {
    /// Creates a record in the `Created` phase.
    pub fn new(spec: JobSpec) -> Self {
        JobRecord {
            phase: JobPhase::Created,
            phase_since: spec.submit_time,
            remaining_wall: SimDuration::ZERO,
            attempt_wall: SimDuration::ZERO,
            wait_total: SimDuration::ZERO,
            suspend_total: SimDuration::ZERO,
            run_total: SimDuration::ZERO,
            resched_waste: SimDuration::ZERO,
            suspensions: 0,
            restarts_from_suspend: 0,
            restarts_from_wait: 0,
            migrations: 0,
            first_started_at: None,
            completed_at: None,
            completion_event: None,
            wait_timer_event: None,
            spec,
        }
    }

    /// The immutable spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The job id.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Current phase.
    pub fn phase(&self) -> JobPhase {
        self.phase
    }

    /// When the job entered its current phase.
    pub fn phase_since(&self) -> SimTime {
        self.phase_since
    }

    /// Wall time left in the current attempt (meaningful when running or
    /// suspended).
    pub fn remaining_wall(&self) -> SimDuration {
        self.remaining_wall
    }

    /// Wall-clock progress accrued in the current attempt as of the last
    /// accounting update — the amount a restart from the suspended state
    /// would discard. For a running job this excludes the time since the
    /// last suspend/resume boundary (callers add `now - phase_since()`).
    pub fn attempt_progress(&self) -> SimDuration {
        self.attempt_wall - self.remaining_wall
    }

    fn err(&self, operation: &'static str) -> PhaseError {
        PhaseError {
            job: self.spec.id,
            operation,
            actual: self.phase.name(),
        }
    }

    /// Created → AtVpm: the user's submission reaches the virtual pool
    /// manager.
    pub fn submit(&mut self, now: SimTime) -> Result<(), PhaseError> {
        if self.phase != JobPhase::Created {
            return Err(self.err("submit"));
        }
        self.phase = JobPhase::AtVpm;
        self.phase_since = now;
        Ok(())
    }

    /// AtVpm → Waiting: the physical pool queued the job.
    pub fn enqueue(&mut self, now: SimTime, pool: PoolId) -> Result<(), PhaseError> {
        if self.phase != JobPhase::AtVpm {
            return Err(self.err("enqueue"));
        }
        self.wait_total += now.since(self.phase_since);
        self.phase = JobPhase::Waiting { pool };
        self.phase_since = now;
        Ok(())
    }

    /// AtVpm/Waiting → Running: a machine started the job. `wall` is the
    /// attempt's wall-clock length on that machine (runtime scaled by the
    /// machine's speed).
    pub fn start(
        &mut self,
        now: SimTime,
        pool: PoolId,
        machine: crate::ids::MachineId,
        wall: SimDuration,
    ) -> Result<(), PhaseError> {
        match self.phase {
            JobPhase::AtVpm | JobPhase::Waiting { .. } => {
                self.wait_total += now.since(self.phase_since);
                self.phase = JobPhase::Running { pool, machine };
                self.phase_since = now;
                self.remaining_wall = wall;
                self.attempt_wall = wall;
                self.first_started_at.get_or_insert(now);
                Ok(())
            }
            _ => Err(self.err("start")),
        }
    }

    /// Running → Suspended: preempted by a higher-priority job.
    pub fn suspend(&mut self, now: SimTime) -> Result<(), PhaseError> {
        let JobPhase::Running { pool, machine } = self.phase else {
            return Err(self.err("suspend"));
        };
        let elapsed = now.since(self.phase_since);
        self.run_total += elapsed;
        self.remaining_wall = self.remaining_wall.saturating_sub(elapsed);
        self.suspensions += 1;
        self.phase = JobPhase::Suspended { pool, machine };
        self.phase_since = now;
        Ok(())
    }

    /// Suspended → Running: capacity freed on the hosting machine and the
    /// job continues where it stopped.
    pub fn resume(&mut self, now: SimTime) -> Result<(), PhaseError> {
        let JobPhase::Suspended { pool, machine } = self.phase else {
            return Err(self.err("resume"));
        };
        self.suspend_total += now.since(self.phase_since);
        self.phase = JobPhase::Running { pool, machine };
        self.phase_since = now;
        Ok(())
    }

    /// Running → Completed.
    pub fn complete(&mut self, now: SimTime) -> Result<(), PhaseError> {
        let JobPhase::Running { .. } = self.phase else {
            return Err(self.err("complete"));
        };
        let elapsed = now.since(self.phase_since);
        self.run_total += elapsed;
        self.remaining_wall = self.remaining_wall.saturating_sub(elapsed);
        debug_assert!(
            self.remaining_wall.is_zero(),
            "{} completed with {} wall time left",
            self.spec.id,
            self.remaining_wall
        );
        self.phase = JobPhase::Completed;
        self.phase_since = now;
        self.completed_at = Some(now);
        Ok(())
    }

    /// Suspended/Waiting/Running → AtVpm: the job is pulled out of its pool
    /// to restart elsewhere — a rescheduling decision (Suspended/Waiting)
    /// or a machine failure (Running). Progress from the current attempt is
    /// discarded and accounted as rescheduling waste, plus
    /// `restart_overhead` (data/binary transfer cost — zero in the paper's
    /// experiments, exposed as an extension knob).
    pub fn abort_for_restart(
        &mut self,
        now: SimTime,
        restart_overhead: SimDuration,
    ) -> Result<(), PhaseError> {
        match self.phase {
            JobPhase::Suspended { .. } => {
                self.suspend_total += now.since(self.phase_since);
                let progress = self.attempt_wall - self.remaining_wall;
                self.resched_waste += progress + restart_overhead;
                self.restarts_from_suspend += 1;
            }
            JobPhase::Waiting { .. } => {
                self.wait_total += now.since(self.phase_since);
                self.resched_waste += restart_overhead;
                self.restarts_from_wait += 1;
            }
            JobPhase::Running { .. } => {
                let elapsed = now.since(self.phase_since);
                self.run_total += elapsed;
                self.remaining_wall = self.remaining_wall.saturating_sub(elapsed);
                let progress = self.attempt_wall - self.remaining_wall;
                self.resched_waste += progress + restart_overhead;
            }
            _ => return Err(self.err("abort_for_restart")),
        }
        self.remaining_wall = SimDuration::ZERO;
        self.attempt_wall = SimDuration::ZERO;
        self.phase = JobPhase::AtVpm;
        self.phase_since = now;
        Ok(())
    }

    /// Suspended → AtVpm, *keeping progress*: a migration decision. The
    /// transfer `delay` is accounted as rescheduling waste (time the job
    /// exists without progressing). Returns the remaining wall time the
    /// caller must resubmit with.
    pub fn migrate_out(
        &mut self,
        now: SimTime,
        delay: SimDuration,
    ) -> Result<SimDuration, PhaseError> {
        let JobPhase::Suspended { .. } = self.phase else {
            return Err(self.err("migrate_out"));
        };
        self.suspend_total += now.since(self.phase_since);
        self.resched_waste += delay;
        self.migrations += 1;
        let remaining = self.remaining_wall;
        self.remaining_wall = SimDuration::ZERO;
        self.attempt_wall = SimDuration::ZERO;
        self.phase = JobPhase::AtVpm;
        self.phase_since = now;
        Ok(remaining)
    }

    /// Any active phase → Completed, because an equivalent copy of the job
    /// finished elsewhere (job duplication). Closes the current accounting
    /// segment and stamps the completion time.
    pub fn finish_by_proxy(&mut self, now: SimTime) -> Result<(), PhaseError> {
        if matches!(self.phase, JobPhase::Created | JobPhase::Completed) {
            return Err(self.err("finish_by_proxy"));
        }
        let elapsed = now.since(self.phase_since);
        match self.phase {
            JobPhase::Running { .. } => self.run_total += elapsed,
            JobPhase::Suspended { .. } => self.suspend_total += elapsed,
            JobPhase::Waiting { .. } | JobPhase::AtVpm => self.wait_total += elapsed,
            JobPhase::Created | JobPhase::Completed => unreachable!("checked above"),
        }
        self.remaining_wall = SimDuration::ZERO;
        self.attempt_wall = SimDuration::ZERO;
        self.phase = JobPhase::Completed;
        self.phase_since = now;
        self.completed_at = Some(now);
        Ok(())
    }

    /// Charges waste incurred on the job's behalf elsewhere (e.g. the
    /// discarded work of a cancelled duplicate copy).
    pub fn add_external_waste(&mut self, waste: SimDuration) {
        self.resched_waste += waste;
    }

    /// Number of times the job migrated between pools with its progress.
    pub fn migrations(&self) -> u32 {
        self.migrations
    }

    // ---- metric accessors ----

    /// True once the job has completed.
    pub fn is_completed(&self) -> bool {
        self.phase == JobPhase::Completed
    }

    /// True if the job was preempted at least once (the paper's "suspended
    /// jobs" population).
    pub fn was_suspended(&self) -> bool {
        self.suspensions > 0
    }

    /// Number of times the job was preempted.
    pub fn suspensions(&self) -> u32 {
        self.suspensions
    }

    /// Number of restarts triggered while suspended.
    pub fn restarts_from_suspend(&self) -> u32 {
        self.restarts_from_suspend
    }

    /// Number of restarts triggered while waiting in a queue.
    pub fn restarts_from_wait(&self) -> u32 {
        self.restarts_from_wait
    }

    /// Completion time (submission → completion), the paper's CT.
    /// `None` until completed.
    pub fn completion_time(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.since(self.spec.submit_time))
    }

    /// Total time spent waiting (virtual or physical pool level) — waste
    /// component (c1).
    pub fn wait_time(&self) -> SimDuration {
        self.wait_total
    }

    /// Total time spent suspended — waste component (c2).
    pub fn suspend_time(&self) -> SimDuration {
        self.suspend_total
    }

    /// Completion time wasted by restarts — waste component (c3).
    pub fn resched_waste(&self) -> SimDuration {
        self.resched_waste
    }

    /// Total productive execution time across all attempts.
    pub fn run_time(&self) -> SimDuration {
        self.run_total
    }

    /// Wasted completion time: the duration the job existed in NetBatch
    /// without making progress towards completion (c1 + c2 + c3).
    pub fn wasted_completion_time(&self) -> SimDuration {
        self.wait_total + self.suspend_total + self.resched_waste
    }

    /// When the job first started executing, if ever.
    pub fn first_started_at(&self) -> Option<SimTime> {
        self.first_started_at
    }

    /// When the job completed, if it has.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MachineId;

    fn spec(runtime_min: u64) -> JobSpec {
        JobSpec::new(
            JobId(1),
            SimTime::from_minutes(10),
            SimDuration::from_minutes(runtime_min),
        )
    }

    fn t(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    fn d(m: u64) -> SimDuration {
        SimDuration::from_minutes(m)
    }

    #[test]
    fn happy_path_accounting() {
        let mut r = JobRecord::new(spec(100));
        r.submit(t(10)).unwrap();
        r.enqueue(t(10), PoolId(0)).unwrap();
        r.start(t(30), PoolId(0), MachineId(2), d(100)).unwrap();
        r.complete(t(130)).unwrap();
        assert_eq!(r.wait_time(), d(20));
        assert_eq!(r.run_time(), d(100));
        assert_eq!(r.suspend_time(), SimDuration::ZERO);
        assert_eq!(r.completion_time(), Some(d(120)));
        assert_eq!(r.wasted_completion_time(), d(20));
        assert!(!r.was_suspended());
    }

    #[test]
    fn suspension_and_resume_accounting() {
        let mut r = JobRecord::new(spec(100));
        r.submit(t(10)).unwrap();
        r.start(t(10), PoolId(0), MachineId(0), d(100)).unwrap();
        r.suspend(t(40)).unwrap(); // ran 30, 70 left
        assert_eq!(r.remaining_wall(), d(70));
        r.resume(t(100)).unwrap(); // suspended 60
        r.complete(t(170)).unwrap();
        assert_eq!(r.suspend_time(), d(60));
        assert_eq!(r.run_time(), d(100));
        assert_eq!(r.suspensions(), 1);
        assert!(r.was_suspended());
        assert_eq!(r.completion_time(), Some(d(160)));
        assert_eq!(r.wasted_completion_time(), d(60));
    }

    #[test]
    fn restart_from_suspension_discards_progress() {
        let mut r = JobRecord::new(spec(100));
        r.submit(t(10)).unwrap();
        r.start(t(10), PoolId(0), MachineId(0), d(100)).unwrap();
        r.suspend(t(40)).unwrap(); // 30 min of progress
        r.abort_for_restart(t(50), SimDuration::ZERO).unwrap(); // 10 min suspended
        assert_eq!(r.suspend_time(), d(10));
        assert_eq!(r.resched_waste(), d(30));
        assert_eq!(r.restarts_from_suspend(), 1);
        // Restart in another pool from scratch.
        r.start(t(55), PoolId(1), MachineId(7), d(100)).unwrap();
        r.complete(t(155)).unwrap();
        assert_eq!(r.run_time(), d(130)); // 30 wasted + 100 useful
        assert_eq!(r.wait_time(), d(5)); // AtVpm 50→55
        assert_eq!(r.wasted_completion_time(), d(10) + d(30) + d(5));
    }

    #[test]
    fn restart_overhead_is_counted_as_waste() {
        let mut r = JobRecord::new(spec(100));
        r.submit(t(10)).unwrap();
        r.enqueue(t(10), PoolId(0)).unwrap();
        r.abort_for_restart(t(60), d(15)).unwrap();
        assert_eq!(r.wait_time(), d(50));
        assert_eq!(r.resched_waste(), d(15));
        assert_eq!(r.restarts_from_wait(), 1);
    }

    #[test]
    fn multiple_suspensions_accumulate() {
        let mut r = JobRecord::new(spec(60));
        r.submit(t(0)).unwrap();
        r.start(t(0), PoolId(0), MachineId(0), d(60)).unwrap();
        r.suspend(t(10)).unwrap();
        r.resume(t(20)).unwrap();
        r.suspend(t(30)).unwrap();
        r.resume(t(50)).unwrap();
        r.complete(t(90)).unwrap();
        assert_eq!(r.suspensions(), 2);
        assert_eq!(r.suspend_time(), d(30));
        assert_eq!(r.run_time(), d(60));
        // Lifecycle from the spec's submit_time (t=10) to completion (t=90):
        // run 60 + suspend 30 tiles the 0..90 wall window.
        assert_eq!(r.completion_time(), Some(d(80)));
    }

    #[test]
    fn abort_from_running_accounts_failure_waste() {
        let mut r = JobRecord::new(spec(100));
        r.submit(t(10)).unwrap();
        r.start(t(10), PoolId(0), MachineId(0), d(100)).unwrap();
        // Machine dies 30 minutes in.
        r.abort_for_restart(t(40), SimDuration::ZERO).unwrap();
        assert_eq!(r.run_time(), d(30));
        assert_eq!(r.resched_waste(), d(30));
        assert_eq!(r.restarts_from_suspend(), 0);
        // Restart from scratch elsewhere.
        r.start(t(45), PoolId(1), MachineId(0), d(100)).unwrap();
        r.complete(t(145)).unwrap();
        assert_eq!(r.run_time(), d(130));
        assert_eq!(r.completion_time(), Some(d(135)));
    }

    #[test]
    fn migration_keeps_progress_and_charges_delay() {
        let mut r = JobRecord::new(spec(100));
        r.submit(t(10)).unwrap();
        r.start(t(10), PoolId(0), MachineId(0), d(100)).unwrap();
        r.suspend(t(40)).unwrap(); // 60 left
        let remaining = r.migrate_out(t(50), d(15)).unwrap();
        assert_eq!(remaining, d(70));
        assert_eq!(r.suspend_time(), d(10));
        assert_eq!(r.resched_waste(), d(15), "only the transfer delay is waste");
        assert_eq!(r.migrations(), 1);
        // Resume elsewhere with the remaining work.
        r.start(t(65), PoolId(1), MachineId(0), d(70)).unwrap();
        r.complete(t(135)).unwrap();
        assert_eq!(r.run_time(), d(100), "no progress lost");
    }

    #[test]
    fn finish_by_proxy_closes_any_active_phase() {
        // Suspended original finished by its duplicate.
        let mut r = JobRecord::new(spec(100));
        r.submit(t(0)).unwrap();
        r.start(t(0), PoolId(0), MachineId(0), d(100)).unwrap();
        r.suspend(t(30)).unwrap();
        r.finish_by_proxy(t(80)).unwrap();
        assert!(r.is_completed());
        assert_eq!(r.suspend_time(), d(50));
        // The spec helper submits at t=10, so CT = 80 - 10.
        assert_eq!(r.completion_time(), Some(d(70)));
        // Waiting original finished by its duplicate.
        let mut w = JobRecord::new(spec(100));
        w.submit(t(0)).unwrap();
        w.enqueue(t(0), PoolId(0)).unwrap();
        w.finish_by_proxy(t(40)).unwrap();
        assert_eq!(w.wait_time(), d(40));
        // Completed jobs cannot be proxy-finished again.
        assert!(w.finish_by_proxy(t(50)).is_err());
    }

    #[test]
    fn external_waste_is_added() {
        let mut r = JobRecord::new(spec(10));
        r.add_external_waste(d(25));
        assert_eq!(r.resched_waste(), d(25));
    }

    #[test]
    fn invalid_transitions_error() {
        let mut r = JobRecord::new(spec(10));
        assert!(r.enqueue(t(0), PoolId(0)).is_err());
        assert!(r.suspend(t(0)).is_err());
        assert!(r.resume(t(0)).is_err());
        assert!(r.complete(t(0)).is_err());
        assert!(r.abort_for_restart(t(0), SimDuration::ZERO).is_err());
        r.submit(t(10)).unwrap();
        assert!(r.submit(t(11)).is_err());
        let err = r.complete(t(12)).unwrap_err();
        assert_eq!(err.actual, "at-vpm");
        assert!(err.to_string().contains("complete"));
    }

    #[test]
    fn phase_names_cover_all_variants() {
        assert_eq!(JobPhase::Created.name(), "created");
        assert_eq!(JobPhase::Completed.name(), "completed");
        assert_eq!(
            JobPhase::Running {
                pool: PoolId(0),
                machine: MachineId(0)
            }
            .name(),
            "running"
        );
    }

    #[test]
    fn affinity_allows_and_candidates() {
        let any = PoolAffinity::Any;
        assert!(any.allows(PoolId(7)));
        assert_eq!(any.candidate_count(20), 20);
        let subset = PoolAffinity::Subset(vec![PoolId(1), PoolId(3), PoolId(99)]);
        assert!(subset.allows(PoolId(3)));
        assert!(!subset.allows(PoolId(2)));
        // Out-of-range pools are filtered out of the candidate set.
        assert_eq!(subset.candidates(20), vec![PoolId(1), PoolId(3)]);
    }

    #[test]
    fn spec_builder_methods() {
        let s = spec(5)
            .with_priority(Priority::HIGH)
            .with_cores(4)
            .with_memory_mb(8192)
            .with_task(TaskId(3))
            .with_affinity(PoolAffinity::Subset(vec![PoolId(0)]));
        assert_eq!(s.priority, Priority::HIGH);
        assert_eq!(s.resources.cores, 4);
        assert_eq!(s.resources.memory_mb, 8192);
        assert_eq!(s.task, Some(TaskId(3)));
        assert!(!s.affinity.allows(PoolId(1)));
    }
}
