//! Point-in-time views of pool and cluster state.
//!
//! Snapshots serve two consumers: the per-minute sampling that produces
//! Figure 4 (suspension count and utilization over time), and scheduling
//! policies (`ResSusUtil` et al.) that rank candidate pools by load.

use std::fmt;

use crate::ids::PoolId;
use crate::pool::PhysicalPool;
use crate::priority::Priority;

/// A pool's load at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSnapshot {
    /// Which pool.
    pub id: PoolId,
    /// Total cores in the pool.
    pub total_cores: u32,
    /// Nominal cores across all machines, up or down (static).
    pub nominal_cores: u32,
    /// Cores running jobs.
    pub busy_cores: u32,
    /// Jobs in the wait queue.
    pub waiting: usize,
    /// Suspended jobs resident on machines.
    pub suspended: usize,
    /// Running jobs.
    pub running: usize,
    /// Machines in the pool (healthy or not) — the denominator for
    /// down-machine ratios in telemetry and health reporting.
    pub machines: usize,
    /// Machines currently down (failed and not yet restored) — the pool's
    /// health signal for fault-aware policies and observers.
    pub down_machines: usize,
    /// Machines currently draining or cordoned (no new placements).
    pub draining_machines: usize,
    /// Health-weighted capacity of available (up, non-draining) machines
    /// in core-millis (`Σ cores · health_milli`) — the health-aware
    /// policies' effective-capacity signal.
    pub effective_cores_milli: u64,
    /// Lowest priority among running jobs (`None` when idle) — the pool's
    /// O(1) preemptibility signal: a job can only preempt here if its
    /// priority is strictly above this.
    pub lowest_running_priority: Option<Priority>,
}

impl PoolSnapshot {
    /// Captures a pool's current state.
    pub fn capture(pool: &PhysicalPool) -> Self {
        PoolSnapshot {
            id: pool.id(),
            total_cores: pool.total_cores(),
            nominal_cores: pool.nominal_cores(),
            busy_cores: pool.busy_cores(),
            waiting: pool.queue_len(),
            suspended: pool.suspended_count(),
            running: pool.running_count(),
            machines: pool.machine_count(),
            down_machines: pool.down_machine_count(),
            draining_machines: pool.draining_machine_count(),
            effective_cores_milli: pool.effective_cores_milli(),
            lowest_running_priority: pool.lowest_running_priority(),
        }
    }

    /// Core utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_cores == 0 {
            0.0
        } else {
            f64::from(self.busy_cores) / f64::from(self.total_cores)
        }
    }

    /// Fraction of the pool's machines currently down, in `[0, 1]`.
    pub fn down_fraction(&self) -> f64 {
        if self.machines == 0 {
            0.0
        } else {
            self.down_machines as f64 / self.machines as f64
        }
    }

    /// Health-weighted *effective* utilization: busy cores over the
    /// health-weighted available capacity. Exceeds plain utilization when
    /// machines are down, draining, or flaky, so health-aware policies
    /// see a drained pool as loaded even while its residents finish. A
    /// pool with no effective capacity reads as fully loaded.
    pub fn effective_utilization(&self) -> f64 {
        if self.effective_cores_milli == 0 {
            return if self.busy_cores > 0 {
                f64::INFINITY
            } else {
                1.0
            };
        }
        f64::from(self.busy_cores) * 1000.0 / self.effective_cores_milli as f64
    }

    /// Pool health in `[0, 1]`: health-weighted available capacity over
    /// nominal capacity (1.0 = every machine up, accepting work, fully
    /// healthy; 0.0 = nothing accepts work). The telemetry gauge and the
    /// health-aware selection weight.
    pub fn health(&self) -> f64 {
        if self.nominal_cores == 0 {
            return 0.0;
        }
        (self.effective_cores_milli as f64 / (f64::from(self.nominal_cores) * 1000.0)).min(1.0)
    }
}

impl From<&PhysicalPool> for PoolSnapshot {
    fn from(pool: &PhysicalPool) -> Self {
        PoolSnapshot::capture(pool)
    }
}

/// The whole site at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterSnapshot {
    /// Per-pool views, indexed by pool id.
    pub pools: Vec<PoolSnapshot>,
}

impl ClusterSnapshot {
    /// Captures every pool.
    pub fn capture<'a>(pools: impl IntoIterator<Item = &'a PhysicalPool>) -> Self {
        ClusterSnapshot {
            pools: pools.into_iter().map(PoolSnapshot::capture).collect(),
        }
    }

    /// Re-captures every pool into this snapshot, reusing its buffer —
    /// the per-decision path of the simulator refreshes one long-lived
    /// snapshot instead of allocating a new `Vec` per view.
    pub fn capture_into<'a>(&mut self, pools: impl IntoIterator<Item = &'a PhysicalPool>) {
        self.pools.clear();
        self.pools
            .extend(pools.into_iter().map(PoolSnapshot::capture));
    }

    /// Site-wide core utilization in `[0, 1]` (Figure 4's dotted line).
    pub fn utilization(&self) -> f64 {
        let total: u64 = self.pools.iter().map(|p| u64::from(p.total_cores)).sum();
        if total == 0 {
            return 0.0;
        }
        let busy: u64 = self.pools.iter().map(|p| u64::from(p.busy_cores)).sum();
        busy as f64 / total as f64
    }

    /// Site-wide suspended-job count (Figure 4's solid line).
    pub fn suspended_total(&self) -> usize {
        self.pools.iter().map(|p| p.suspended).sum()
    }

    /// Site-wide wait-queue length.
    pub fn waiting_total(&self) -> usize {
        self.pools.iter().map(|p| p.waiting).sum()
    }

    /// The pool with the lowest utilization among `candidates`; ties break
    /// to the lowest pool id for determinism. Returns `None` if the
    /// candidate list is empty.
    pub fn least_utilized(&self, candidates: &[PoolId]) -> Option<PoolId> {
        candidates
            .iter()
            .filter_map(|id| self.pools.get(id.as_usize()))
            .min_by(|a, b| {
                a.utilization()
                    .partial_cmp(&b.utilization())
                    .expect("utilization is never NaN")
                    .then(a.id.cmp(&b.id))
            })
            .map(|p| p.id)
    }

    /// The pool with the lowest *health-weighted effective* utilization
    /// among `candidates` — the health-aware variant of
    /// [`ClusterSnapshot::least_utilized`]: a pool that looks idle but is
    /// mostly draining or flaky ranks as loaded. Ties break to the lowest
    /// pool id.
    pub fn least_effectively_utilized(&self, candidates: &[PoolId]) -> Option<PoolId> {
        candidates
            .iter()
            .filter_map(|id| self.pools.get(id.as_usize()))
            .min_by(|a, b| {
                a.effective_utilization()
                    .partial_cmp(&b.effective_utilization())
                    .expect("effective utilization is never NaN")
                    .then(a.id.cmp(&b.id))
            })
            .map(|p| p.id)
    }

    /// The candidate pool with the shortest wait queue (extension policy
    /// `ResSusQueue`); ties break to the lowest pool id.
    pub fn shortest_queue(&self, candidates: &[PoolId]) -> Option<PoolId> {
        candidates
            .iter()
            .filter_map(|id| self.pools.get(id.as_usize()))
            .min_by(|a, b| a.waiting.cmp(&b.waiting).then(a.id.cmp(&b.id)))
            .map(|p| p.id)
    }
}

impl fmt::Display for ClusterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "util {:.1}% | suspended {} | waiting {}",
            self.utilization() * 100.0,
            self.suspended_total(),
            self.waiting_total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::pool::PoolConfig;
    use netbatch_sim_engine::time::{SimDuration, SimTime};

    fn snap(stats: &[(u32, u32, usize)]) -> ClusterSnapshot {
        ClusterSnapshot {
            pools: stats
                .iter()
                .enumerate()
                .map(|(i, &(total, busy, waiting))| PoolSnapshot {
                    id: PoolId(i as u16),
                    total_cores: total,
                    nominal_cores: total,
                    busy_cores: busy,
                    waiting,
                    suspended: 0,
                    running: 0,
                    machines: 0,
                    down_machines: 0,
                    draining_machines: 0,
                    effective_cores_milli: u64::from(total) * 1000,
                    lowest_running_priority: None,
                })
                .collect(),
        }
    }

    #[test]
    fn aggregate_utilization_weights_by_cores() {
        let s = snap(&[(100, 100, 0), (300, 0, 0)]);
        assert!((s.utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn least_utilized_picks_minimum_with_deterministic_ties() {
        let s = snap(&[(10, 5, 0), (10, 2, 0), (10, 2, 0), (10, 9, 0)]);
        let all: Vec<PoolId> = (0..4).map(PoolId).collect();
        assert_eq!(s.least_utilized(&all), Some(PoolId(1)));
        // Restricting candidates respects the restriction.
        assert_eq!(s.least_utilized(&[PoolId(0), PoolId(3)]), Some(PoolId(0)));
        assert_eq!(s.least_utilized(&[]), None);
    }

    #[test]
    fn effective_utilization_ranks_drained_pools_as_loaded() {
        let mut s = snap(&[(10, 2, 0), (10, 3, 0)]);
        // Pool 0 is less utilized on paper, but most of its capacity is
        // draining/unhealthy: effective utilization flips the ranking.
        s.pools[0].effective_cores_milli = 4000;
        let all: Vec<PoolId> = (0..2).map(PoolId).collect();
        assert_eq!(s.least_utilized(&all), Some(PoolId(0)));
        assert_eq!(s.least_effectively_utilized(&all), Some(PoolId(1)));
        assert!((s.pools[0].health() - 0.4).abs() < 1e-9);
        assert!((s.pools[0].effective_utilization() - 0.5).abs() < 1e-9);
        // A pool with no effective capacity reads fully loaded, or
        // infinitely loaded while residents still run.
        s.pools[0].effective_cores_milli = 0;
        assert_eq!(s.pools[0].effective_utilization(), f64::INFINITY);
        s.pools[0].busy_cores = 0;
        assert!((s.pools[0].effective_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shortest_queue_policy() {
        let s = snap(&[(10, 0, 7), (10, 0, 3), (10, 0, 3)]);
        let all: Vec<PoolId> = (0..3).map(PoolId).collect();
        assert_eq!(s.shortest_queue(&all), Some(PoolId(1)));
    }

    #[test]
    fn capture_reflects_live_pool() {
        let mut pool = crate::pool::PhysicalPool::new(PoolConfig::uniform(PoolId(3), 2, 2, 4096));
        pool.submit(
            SimTime::ZERO,
            &JobSpec::new(1.into(), SimTime::ZERO, SimDuration::from_minutes(5)),
        );
        let s = PoolSnapshot::capture(&pool);
        assert_eq!(s.id, PoolId(3));
        assert_eq!(s.busy_cores, 1);
        assert_eq!(s.running, 1);
        assert_eq!(s.machines, 2);
        assert_eq!(s.down_fraction(), 0.0);
        assert!((s.utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_cluster_is_zeroed() {
        let s = ClusterSnapshot::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.suspended_total(), 0);
        assert!(!s.to_string().is_empty());
    }
}
