//! Incremental machine-availability indexing for the pool dispatch hot path.
//!
//! The paper's §2.1 dispatch protocol picks the *first* (lowest-id) machine
//! that is both eligible and available, which a naive implementation scans
//! the machine list for on every submit — O(machines) per event, the
//! dominant cost at the paper's scale (680-machine pools, 248k jobs/week).
//!
//! [`AvailabilityIndex`] replaces the scan: machines are grouped into
//! *capacity classes* (identical static `(cores, memory_mb)` configuration)
//! and, within each class, bucketed by their current free capacity
//! `(free_cores, free_memory)`. Buckets hold machine indices in sorted
//! vectors, so the lowest-id available machine in a bucket is `O(1)` and a
//! full first-fit query is `O(classes · buckets)` with each bucket visited
//! only when it can actually satisfy the footprint. The pool keeps the
//! index in sync with one [`AvailabilityIndex::sync`] call (a binary
//! search plus a small shift in a contiguous level vector) after every
//! machine mutation (start / suspend / resume / release / fail /
//! restore); drained bucket vectors are recycled, so steady-state sync is
//! allocation-free.
//!
//! **Behavior preservation:** a machine appears in a bucket iff it is up,
//! not draining, and the bucket key equals its exact free capacity, and bucket sets are
//! ordered by machine index, so [`AvailabilityIndex::first_fit`] returns
//! precisely the machine the reference linear scan
//! (`position(|m| m.can_ever_run(res) && m.can_run_now(res))`) would find.
//! `PhysicalPool` cross-checks this with the retained reference scan in
//! debug builds and under property tests.
//!
//! The module also provides [`MinMultiset`], the ordered counting multiset
//! behind the pool's two other O(1) short-circuits: the lowest running
//! priority (skip preemption planning when nothing is preemptible) and the
//! wait queue's minimum footprint (stop `capacity_cycle` scans when the
//! freed machine cannot fit anything waiting).

use std::collections::BTreeMap;

use crate::job::Resources;
use crate::machine::Machine;

/// Upper bound on drained bucket vectors salvaged per class for reuse.
const SPARE_LIMIT: usize = 64;

/// One core level: `free_memory → machine indices` buckets, sorted by key.
type MemLevel = Vec<(u64, Vec<usize>)>;

/// Machines sharing one static `(cores, memory_mb)` configuration, with
/// their current free capacity bucketed for ordered first-fit queries.
///
/// Buckets live in **flat sorted vectors** rather than `BTreeMap`s: a
/// machine changing state moves between buckets on every start / release,
/// and tree-node churn (a node allocated and freed per move) was the
/// dominant per-event allocation in the dispatch loop. Shifting a few
/// `(key, bucket)` pairs in a small contiguous vector costs less than a
/// node allocation, never allocates in steady state (capacity is the
/// high-water mark, drained bucket vectors are recycled through `spare`),
/// and keeps range queries walking only *live* buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CapacityClass {
    /// Static core count of every machine in the class.
    cores: u32,
    /// Static memory of every machine in the class.
    memory_mb: u64,
    /// `free_cores → free_memory → machine indices`, every vector sorted
    /// by its key (machine indices ascending). Nested (rather than keyed
    /// by the pair) so a memory range query never walks buckets below the
    /// requested floor. Memory buckets are removed when drained; core
    /// levels are retained (at most `cores + 1` of them, trivially skipped
    /// when empty).
    levels: Vec<(u32, MemLevel)>,
    /// Drained bucket vectors, reused when a fresh bucket key appears so
    /// steady-state bucket creation allocates nothing.
    spare: Vec<Vec<usize>>,
}

impl CapacityClass {
    /// The lowest machine index in this class that can run `res` right
    /// now, or `None`.
    fn first_fit(&self, res: Resources) -> Option<usize> {
        let mut best: Option<usize> = None;
        let lo = self.levels.partition_point(|&(c, _)| c < res.cores);
        for (_, mem_level) in &self.levels[lo..] {
            let mo = mem_level.partition_point(|&(m, _)| m < res.memory_mb);
            for (_, set) in &mem_level[mo..] {
                if let Some(&idx) = set.first() {
                    best = Some(best.map_or(idx, |b| b.min(idx)));
                }
            }
        }
        best
    }

    fn insert(&mut self, key: (u32, u64), idx: usize) {
        let li = match self.levels.binary_search_by_key(&key.0, |&(c, _)| c) {
            Ok(i) => i,
            Err(i) => {
                self.levels.insert(i, (key.0, Vec::new()));
                i
            }
        };
        let mem_level = &mut self.levels[li].1;
        match mem_level.binary_search_by_key(&key.1, |&(m, _)| m) {
            Ok(mi) => {
                let set = &mut mem_level[mi].1;
                match set.binary_search(&idx) {
                    Err(pos) => set.insert(pos, idx),
                    Ok(_) => debug_assert!(false, "machine {idx} already in its bucket"),
                }
            }
            Err(mi) => {
                let mut set = self.spare.pop().unwrap_or_default();
                set.push(idx);
                mem_level.insert(mi, (key.1, set));
            }
        }
    }

    fn remove(&mut self, key: (u32, u64), idx: usize) {
        let li = self
            .levels
            .binary_search_by_key(&key.0, |&(c, _)| c)
            .expect("core level exists");
        let mem_level = &mut self.levels[li].1;
        let mi = mem_level
            .binary_search_by_key(&key.1, |&(m, _)| m)
            .expect("bucket exists");
        let set = &mut mem_level[mi].1;
        let pos = set
            .binary_search(&idx)
            .unwrap_or_else(|_| panic!("machine {idx} missing from its bucket"));
        set.remove(pos);
        if set.is_empty() {
            let (_, drained) = mem_level.remove(mi);
            if self.spare.len() < SPARE_LIMIT {
                self.spare.push(drained);
            }
        }
    }

    /// The occupied buckets in key order — the class's *semantic* content,
    /// independent of spare capacity or retained-but-empty core levels.
    fn occupied(&self) -> impl Iterator<Item = (u32, u64, &[usize])> + '_ {
        self.levels.iter().flat_map(|(cores, mem_level)| {
            mem_level
                .iter()
                .map(move |(mem, set)| (*cores, *mem, set.as_slice()))
        })
    }
}

/// The per-machine slot tracked by the index: which class the machine
/// belongs to and which bucket it currently sits in (`None` while down
/// or draining).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    class: usize,
    bucket: Option<(u32, u64)>,
}

/// Incremental index over a pool's machines answering *"which machine does
/// first-fit dispatch choose?"* and *"is any machine eligible?"* without
/// scanning the machine list.
///
/// Owned and kept in sync by `PhysicalPool`; see the module docs for the
/// structure and the behavior-preservation argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityIndex {
    classes: Vec<CapacityClass>,
    slots: Vec<Slot>,
}

impl AvailabilityIndex {
    /// Builds the index for a machine list, grouping by static
    /// configuration and placing every machine in its current bucket.
    pub fn new(machines: &[Machine]) -> Self {
        let mut classes: Vec<CapacityClass> = Vec::new();
        let mut slots = Vec::with_capacity(machines.len());
        for (idx, m) in machines.iter().enumerate() {
            let (cores, memory_mb) = (m.config().cores, m.config().memory_mb);
            let class = classes
                .iter()
                .position(|c| c.cores == cores && c.memory_mb == memory_mb)
                .unwrap_or_else(|| {
                    classes.push(CapacityClass {
                        cores,
                        memory_mb,
                        levels: Vec::new(),
                        spare: Vec::new(),
                    });
                    classes.len() - 1
                });
            let bucket =
                (!m.is_down() && !m.is_draining()).then(|| (m.cores_free(), m.memory_free()));
            if let Some(key) = bucket {
                classes[class].insert(key, idx);
            }
            slots.push(Slot { class, bucket });
        }
        AvailabilityIndex { classes, slots }
    }

    /// Number of distinct capacity classes (the `classes` factor in the
    /// query complexity).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Re-syncs machine `idx` after any state change (start / suspend /
    /// resume / release / fail / restore). `O(log n)`.
    pub fn sync(&mut self, idx: usize, machine: &Machine) {
        let new_bucket = (!machine.is_down() && !machine.is_draining())
            .then(|| (machine.cores_free(), machine.memory_free()));
        let slot = self.slots[idx];
        if slot.bucket == new_bucket {
            return;
        }
        if let Some(old) = slot.bucket {
            self.classes[slot.class].remove(old, idx);
        }
        if let Some(new) = new_bucket {
            self.classes[slot.class].insert(new, idx);
        }
        self.slots[idx].bucket = new_bucket;
    }

    /// True if any machine (up **or down** — eligibility deliberately
    /// ignores downtime, matching `Machine::can_ever_run`) could run the
    /// footprint when idle. `O(classes)`: class membership is static.
    pub fn is_eligible(&self, res: Resources) -> bool {
        self.classes
            .iter()
            .any(|c| res.cores <= c.cores && res.memory_mb <= c.memory_mb)
    }

    /// The lowest-index machine that can run `res` *right now* — exactly
    /// the machine the seed's linear first-fit scan would pick (the class
    /// check reproduces `can_ever_run`; bucket membership reproduces
    /// `can_run_now`).
    pub fn first_fit(&self, res: Resources) -> Option<usize> {
        let mut best: Option<usize> = None;
        for class in &self.classes {
            if res.cores > class.cores || res.memory_mb > class.memory_mb {
                continue;
            }
            if let Some(idx) = class.first_fit(res) {
                best = Some(best.map_or(idx, |b| b.min(idx)));
            }
        }
        best
    }

    /// Full consistency check against the live machine list (used by
    /// `PhysicalPool::check_invariants` and property tests): rebuilding
    /// from scratch must reproduce the incrementally-maintained state.
    /// Compared *semantically* — retained-but-empty buckets (an allocation
    /// optimization, invisible to queries) are ignored.
    pub fn check_consistency(&self, machines: &[Machine]) -> bool {
        let fresh = AvailabilityIndex::new(machines);
        self.slots == fresh.slots
            && self.classes.len() == fresh.classes.len()
            && self.classes.iter().zip(&fresh.classes).all(|(a, b)| {
                a.cores == b.cores && a.memory_mb == b.memory_mb && a.occupied().eq(b.occupied())
            })
    }
}

/// An ordered counting multiset with O(log n) insert/remove and O(log n)
/// minimum, used for the pool's running-priority and queue-footprint
/// summaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinMultiset<T: Ord + Copy> {
    counts: BTreeMap<T, usize>,
    len: usize,
}

impl<T: Ord + Copy> MinMultiset<T> {
    /// An empty multiset.
    pub fn new() -> Self {
        MinMultiset {
            counts: BTreeMap::new(),
            len: 0,
        }
    }

    /// Adds one occurrence of `value`.
    pub fn insert(&mut self, value: T) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.len += 1;
    }

    /// Removes one occurrence of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not present — the pool's bookkeeping inserts
    /// and removes in strict pairs, so absence is a logic error.
    pub fn remove(&mut self, value: T) {
        let count = self
            .counts
            .get_mut(&value)
            .expect("value present in multiset");
        *count -= 1;
        if *count == 0 {
            self.counts.remove(&value);
        }
        self.len -= 1;
    }

    /// The smallest value present, or `None` when empty.
    pub fn min(&self) -> Option<T> {
        self.counts.keys().next().copied()
    }

    /// Total number of occurrences.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no occurrences are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{JobId, MachineId};
    use crate::machine::MachineConfig;
    use crate::priority::Priority;
    use netbatch_sim_engine::time::SimTime;

    fn res(cores: u32, mem: u64) -> Resources {
        Resources {
            cores,
            memory_mb: mem,
        }
    }

    /// A heterogeneous machine list: two 2-core/4 GB, one 4-core/8 GB, one
    /// 1-core/2 GB (classes in id order).
    fn machines() -> Vec<Machine> {
        [(2u32, 4096u64), (2, 4096), (4, 8192), (1, 2048)]
            .into_iter()
            .enumerate()
            .map(|(i, (c, m))| Machine::new(MachineConfig::new(MachineId(i as u32), c, m)))
            .collect()
    }

    fn reference_first_fit(machines: &[Machine], res: Resources) -> Option<usize> {
        machines
            .iter()
            .position(|m| m.can_ever_run(res) && m.can_run_now(res))
    }

    #[test]
    fn groups_identical_configs_into_one_class() {
        let ms = machines();
        let idx = AvailabilityIndex::new(&ms);
        assert_eq!(idx.class_count(), 3);
    }

    #[test]
    fn first_fit_matches_reference_on_idle_pool() {
        let ms = machines();
        let idx = AvailabilityIndex::new(&ms);
        for (c, m) in [(1, 100), (2, 4096), (3, 100), (4, 8192), (5, 1), (1, 9000)] {
            assert_eq!(
                idx.first_fit(res(c, m)),
                reference_first_fit(&ms, res(c, m)),
                "footprint ({c}, {m})"
            );
        }
    }

    #[test]
    fn sync_tracks_starts_and_releases() {
        let mut ms = machines();
        let mut idx = AvailabilityIndex::new(&ms);
        // Fill machine 0 completely; first fit for 2 cores moves to machine 1.
        ms[0].start(SimTime::ZERO, JobId(1), res(2, 1000), Priority::LOW);
        idx.sync(0, &ms[0]);
        assert_eq!(idx.first_fit(res(2, 100)), Some(1));
        assert_eq!(
            idx.first_fit(res(2, 100)),
            reference_first_fit(&ms, res(2, 100))
        );
        ms[0].release(JobId(1)).unwrap();
        idx.sync(0, &ms[0]);
        assert_eq!(idx.first_fit(res(2, 100)), Some(0));
        assert!(idx.check_consistency(&ms));
    }

    #[test]
    fn down_machines_leave_their_buckets_but_stay_eligible() {
        let mut ms = machines();
        let mut idx = AvailabilityIndex::new(&ms);
        ms[2].fail();
        idx.sync(2, &ms[2]);
        assert_eq!(
            idx.first_fit(res(4, 100)),
            None,
            "only the 4-core machine fits"
        );
        assert!(idx.is_eligible(res(4, 100)), "eligibility ignores downtime");
        ms[2].restore();
        idx.sync(2, &ms[2]);
        assert_eq!(idx.first_fit(res(4, 100)), Some(2));
        assert!(idx.check_consistency(&ms));
    }

    #[test]
    fn redundant_sync_is_a_no_op() {
        let ms = machines();
        let mut idx = AvailabilityIndex::new(&ms);
        let before = idx.clone();
        idx.sync(0, &ms[0]);
        assert_eq!(idx, before);
    }

    #[test]
    fn memory_floor_prunes_without_missing_matches() {
        // One machine with lots of free cores but little free memory must
        // not shadow a later machine with enough of both.
        let mut ms = machines();
        ms[2].start(SimTime::ZERO, JobId(1), res(1, 8000), Priority::LOW);
        let idx = AvailabilityIndex::new(&ms);
        assert_eq!(idx.first_fit(res(3, 1000)), None);
        assert_eq!(idx.first_fit(res(2, 3000)), Some(0));
        assert_eq!(
            idx.first_fit(res(1, 2000)),
            reference_first_fit(&ms, res(1, 2000))
        );
    }

    #[test]
    fn min_multiset_tracks_minimum_through_churn() {
        let mut s = MinMultiset::new();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        s.insert(5u32);
        s.insert(2);
        s.insert(2);
        s.insert(9);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.len(), 4);
        s.remove(2);
        assert_eq!(s.min(), Some(2), "one occurrence of the min remains");
        s.remove(2);
        assert_eq!(s.min(), Some(5));
        s.remove(5);
        s.remove(9);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "value present")]
    fn min_multiset_remove_absent_panics() {
        MinMultiset::<u32>::new().remove(1);
    }
}
