//! Job priorities and the ownership model behind them.
//!
//! In NetBatch, business groups *own* machines they pay for; their jobs run
//! at high priority and may preempt (suspend) lower-priority jobs on those
//! machines (§2.2 of the paper). We model this with a totally ordered
//! [`Priority`]: a job may preempt another iff its priority is **strictly**
//! higher.

use std::fmt;

/// A job's scheduling priority. Larger values are more important.
///
/// The paper's environment is effectively two-class (owner/high vs
/// borrowed/low), but NetBatch supports finer levels, so this is a full
/// `u8` lattice with the two paper classes as named constants.
///
/// # Examples
///
/// ```
/// use netbatch_cluster::priority::Priority;
///
/// assert!(Priority::HIGH.can_preempt(Priority::LOW));
/// assert!(!Priority::LOW.can_preempt(Priority::HIGH));
/// assert!(!Priority::HIGH.can_preempt(Priority::HIGH)); // equal never preempts
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u8);

impl Priority {
    /// Low priority: jobs running on borrowed (non-owned) machines.
    pub const LOW: Priority = Priority(0);

    /// High priority: owners' jobs and latency-sensitive work.
    pub const HIGH: Priority = Priority(10);

    /// The maximum expressible priority.
    pub const MAX: Priority = Priority(u8::MAX);

    /// Creates a priority from a raw level.
    pub const fn new(level: u8) -> Self {
        Priority(level)
    }

    /// Returns the raw level.
    pub const fn level(self) -> u8 {
        self.0
    }

    /// Returns true if a job at this priority may preempt (suspend) a job at
    /// `other`. Preemption requires **strictly** greater priority; equals
    /// queue behind each other.
    pub const fn can_preempt(self, other: Priority) -> bool {
        self.0 > other.0
    }

    /// Returns true if this is a high-class priority (at or above
    /// [`Priority::HIGH`]); used by workload generators and reports to
    /// bucket jobs the way the paper does.
    pub const fn is_high_class(self) -> bool {
        self.0 >= Self::HIGH.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Priority::LOW => write!(f, "low"),
            Priority::HIGH => write!(f, "high"),
            Priority(p) => write!(f, "prio{p}"),
        }
    }
}

impl From<u8> for Priority {
    fn from(level: u8) -> Self {
        Priority(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn preemption_is_strict() {
        assert!(Priority::HIGH.can_preempt(Priority::LOW));
        assert!(!Priority::LOW.can_preempt(Priority::HIGH));
        assert!(!Priority::new(5).can_preempt(Priority::new(5)));
    }

    #[test]
    fn class_bucketing() {
        assert!(Priority::HIGH.is_high_class());
        assert!(Priority::MAX.is_high_class());
        assert!(!Priority::LOW.is_high_class());
        assert!(!Priority::new(9).is_high_class());
    }

    #[test]
    fn display_names_paper_classes() {
        assert_eq!(Priority::LOW.to_string(), "low");
        assert_eq!(Priority::HIGH.to_string(), "high");
        assert_eq!(Priority::new(3).to_string(), "prio3");
    }

    proptest! {
        /// can_preempt is a strict order: irreflexive and asymmetric.
        #[test]
        fn prop_preempt_strict_order(a in any::<u8>(), b in any::<u8>()) {
            let (pa, pb) = (Priority(a), Priority(b));
            prop_assert!(!pa.can_preempt(pa));
            if pa.can_preempt(pb) {
                prop_assert!(!pb.can_preempt(pa));
            }
        }

        /// can_preempt agrees with Ord.
        #[test]
        fn prop_preempt_matches_ord(a in any::<u8>(), b in any::<u8>()) {
            prop_assert_eq!(Priority(a).can_preempt(Priority(b)), a > b);
        }
    }
}
