//! Typed identifiers for cluster entities.
//!
//! Newtypes keep pool, machine, job and task ids statically distinct
//! (C-NEWTYPE): handing a `MachineId` where a `PoolId` is expected is a
//! compile error rather than a silent mis-index.

use std::fmt;

/// Identifies a job across the whole cluster. Dense and allocation-ordered,
/// so it doubles as an index into the simulator's job table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

impl JobId {
    /// Returns the raw index.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the id as a usize for table indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl From<u64> for JobId {
    fn from(v: u64) -> Self {
        JobId(v)
    }
}

/// Identifies a physical pool at a site (the paper's site has 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PoolId(pub u16);

impl PoolId {
    /// Returns the raw index.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the id as a usize for table indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool{}", self.0)
    }
}

impl From<u16> for PoolId {
    fn from(v: u16) -> Self {
        PoolId(v)
    }
}

/// Identifies a machine within its pool (pool-local index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineId(pub u32);

impl MachineId {
    /// Returns the raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the id as a usize for table indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for MachineId {
    fn from(v: u32) -> Self {
        MachineId(v)
    }
}

/// Identifies a *task*: a set of jobs whose results are only useful when all
/// (or a high percentage) complete — the paper's §2.2 chip-simulation
/// productivity unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Returns the raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_distinctly() {
        assert_eq!(JobId(3).to_string(), "job3");
        assert_eq!(PoolId(3).to_string(), "pool3");
        assert_eq!(MachineId(3).to_string(), "m3");
        assert_eq!(TaskId(3).to_string(), "task3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(JobId(1) < JobId(2));
        assert!(PoolId(0) < PoolId(19));
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(JobId::from(9).as_u64(), 9);
        assert_eq!(PoolId::from(9).as_u16(), 9);
        assert_eq!(MachineId::from(9).as_u32(), 9);
        assert_eq!(JobId(12).as_usize(), 12);
    }
}
