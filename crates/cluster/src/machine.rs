//! A single multi-core compute machine: capacity tracking, residency, and
//! host-level preemption planning.
//!
//! Semantics pinned here (documented in DESIGN.md §3): a **running** job
//! holds cores and memory; a **suspended** job releases its cores but stays
//! resident in memory (NetBatch suspension is SIGSTOP-style — the process
//! remains on the host and resumes there when capacity frees up).

use std::fmt;

use netbatch_sim_engine::time::{SimDuration, SimTime};

use crate::ids::{JobId, MachineId};
use crate::job::Resources;
use crate::priority::Priority;

/// Static description of a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Pool-local identifier.
    pub id: MachineId,
    /// Number of cores.
    pub cores: u32,
    /// Physical memory in MB.
    pub memory_mb: u64,
    /// CPU speed as a per-mille factor relative to the reference machine
    /// (1000 = 1.0×). A job with base runtime `r` takes `ceil(r / speed)`
    /// wall minutes here. NetBatch pools contain machines "with varying CPU
    /// speed and memory" (§3.1).
    pub speed_milli: u32,
}

impl MachineConfig {
    /// A reference-speed machine.
    pub fn new(id: MachineId, cores: u32, memory_mb: u64) -> Self {
        MachineConfig {
            id,
            cores,
            memory_mb,
            speed_milli: 1000,
        }
    }

    /// Sets the speed factor in per-mille (500 = half speed, 2000 = double).
    ///
    /// # Panics
    ///
    /// Panics if `speed_milli` is zero.
    pub fn with_speed_milli(mut self, speed_milli: u32) -> Self {
        assert!(speed_milli > 0, "machine speed must be positive");
        self.speed_milli = speed_milli;
        self
    }

    /// Wall-clock duration of a job with the given base runtime on this
    /// machine (rounded up to whole minutes, minimum 1 minute).
    pub fn scaled_wall(&self, runtime: SimDuration) -> SimDuration {
        let base = runtime.as_minutes();
        let scaled = (base * 1000).div_ceil(u64::from(self.speed_milli));
        SimDuration::from_minutes(scaled.max(1))
    }
}

/// Reusable sort-key buffer for preemption planning and resume ordering:
/// `(priority, since, list position, job, cores)` per resident. The pool
/// owns one and threads it through [`Machine::preemption_plan_into`] /
/// [`Machine::resumable_into`] so the dispatch hot path never allocates.
/// The list position makes the key a total order, letting an in-place
/// unstable sort reproduce exactly what a stable sort over the resident
/// list would produce.
pub type ResidentKeys = Vec<(Priority, SimTime, u32, JobId, u32)>;

/// A job resident on a machine (running or suspended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resident {
    /// The resident job.
    pub job: JobId,
    /// Its resource footprint.
    pub resources: Resources,
    /// Its priority (used for preemption planning).
    pub priority: Priority,
    /// When it entered its current residency state (start or suspension
    /// instant).
    pub since: SimTime,
}

/// Dynamic machine state.
pub struct Machine {
    config: MachineConfig,
    running: Vec<Resident>,
    suspended: Vec<Resident>,
    cores_used: u32,
    memory_used: u64,
    down: bool,
    /// Draining (or cordoned): the machine accepts no new work, but
    /// resident jobs keep running (and may resume) until they finish or
    /// the drain deadline kills the host.
    draining: bool,
    /// Probe-derived health score in per-mille (1000 = perfectly healthy).
    /// Static per run; only weights pool-level effective capacity, never
    /// gates placement feasibility.
    health_milli: u32,
    /// Cached minimum over `running[..].priority`, kept current on every
    /// start/suspend/release/resume/fail so the pool's preemption planner
    /// can skip machines (and whole pools) with nothing preemptible in
    /// O(1) instead of walking residents.
    min_running_prio: Option<Priority>,
}

impl Machine {
    /// Creates an idle machine.
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            config,
            running: Vec::new(),
            suspended: Vec::new(),
            cores_used: 0,
            memory_used: 0,
            down: false,
            draining: false,
            health_milli: 1000,
            min_running_prio: None,
        }
    }

    /// True if the machine is failed/offline.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// True if the machine is draining or cordoned (no new placements;
    /// residents may keep running and resuming).
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Starts draining (or cordons) the machine: no new work lands here,
    /// residents stay.
    pub fn start_drain(&mut self) {
        self.draining = true;
    }

    /// Ends a drain/cordon without a restart (the machine never went
    /// down); new work may land again.
    pub fn end_drain(&mut self) {
        self.draining = false;
    }

    /// Probe-derived health score in per-mille (1000 = healthy).
    pub fn health_milli(&self) -> u32 {
        self.health_milli
    }

    /// Sets the per-run health score (clamped to 0..=1000).
    pub fn set_health_milli(&mut self, health_milli: u32) {
        self.health_milli = health_milli.min(1000);
    }

    /// Fails the machine: every resident job (running or suspended) is
    /// evicted and returned; the machine accepts no work until
    /// [`Machine::restore`].
    pub fn fail(&mut self) -> Vec<Resident> {
        self.down = true;
        self.cores_used = 0;
        self.memory_used = 0;
        self.min_running_prio = None;
        let mut evicted = std::mem::take(&mut self.running);
        evicted.append(&mut self.suspended);
        evicted
    }

    /// Brings a failed machine back online, empty. Any drain/cordon in
    /// force stays in force: lifecycle plans end drains with an explicit
    /// drain-end, so a fault restore inside a cordon window cannot
    /// silently reopen the machine.
    pub fn restore(&mut self) {
        self.down = false;
    }

    /// The static configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Machine id.
    pub fn id(&self) -> MachineId {
        self.config.id
    }

    /// Cores currently occupied by running jobs.
    pub fn cores_used(&self) -> u32 {
        self.cores_used
    }

    /// Cores currently free.
    pub fn cores_free(&self) -> u32 {
        self.config.cores - self.cores_used
    }

    /// Memory currently occupied (running **and** suspended residents).
    pub fn memory_used(&self) -> u64 {
        self.memory_used
    }

    /// Memory currently free.
    pub fn memory_free(&self) -> u64 {
        self.config.memory_mb - self.memory_used
    }

    /// Jobs currently running here.
    pub fn running(&self) -> &[Resident] {
        &self.running
    }

    /// Jobs currently suspended here.
    pub fn suspended(&self) -> &[Resident] {
        &self.suspended
    }

    /// The lowest priority among jobs currently running here (`None` when
    /// idle). Cached, so O(1) — the pool's preemption short-circuit reads
    /// this for every eligible machine.
    pub fn min_running_priority(&self) -> Option<Priority> {
        self.min_running_prio
    }

    /// Recomputes the cached running-priority minimum after a resident
    /// carrying the current minimum leaves the running set.
    fn refresh_min_running(&mut self, departed: Priority) {
        if self.min_running_prio == Some(departed) {
            self.min_running_prio = self.running.iter().map(|r| r.priority).min();
        }
    }

    /// True if the machine could run the footprint when completely idle —
    /// the *eligibility* test (job requirements vs machine capability).
    /// Deliberately ignores downtime: a failed machine is still *capable*,
    /// so jobs queue for it rather than bouncing as unrunnable.
    pub fn can_ever_run(&self, res: Resources) -> bool {
        res.cores <= self.config.cores && res.memory_mb <= self.config.memory_mb
    }

    /// True if the footprint fits right now without preemption — the
    /// *availability* test.
    pub fn can_run_now(&self, res: Resources) -> bool {
        !self.down
            && !self.draining
            && res.cores <= self.cores_free()
            && res.memory_mb <= self.memory_free()
    }

    /// Plans a preemption: which running jobs must be suspended so that a
    /// job with footprint `res` and priority `priority` fits.
    ///
    /// Only **strictly lower-priority** jobs are candidates. Victims are
    /// chosen lowest-priority-first, most-recently-started-first (minimizing
    /// discarded progress). Suspension frees cores but *not* memory, so if
    /// free memory is insufficient the plan fails regardless of victims.
    ///
    /// Returns the victim list (possibly empty if the job already fits), or
    /// `None` if no feasible plan exists.
    pub fn preemption_plan(&self, res: Resources, priority: Priority) -> Option<Vec<JobId>> {
        let mut keys = ResidentKeys::new();
        let mut victims = Vec::new();
        self.preemption_plan_into(res, priority, &mut keys, &mut victims)
            .then_some(victims)
    }

    /// Allocation-free preemption planning: writes the victim list
    /// (possibly empty if the job already fits) into `victims` and returns
    /// whether a feasible plan exists. `keys` is a reusable sort buffer
    /// owned by the caller; both buffers are cleared first.
    ///
    /// Victim order is identical to [`Machine::preemption_plan`]: lowest
    /// priority first, most recently started first among equals, original
    /// list position as the final tie-break.
    pub fn preemption_plan_into(
        &self,
        res: Resources,
        priority: Priority,
        keys: &mut ResidentKeys,
        victims: &mut Vec<JobId>,
    ) -> bool {
        victims.clear();
        if self.down
            || self.draining
            || !self.can_ever_run(res)
            || res.memory_mb > self.memory_free()
        {
            return false;
        }
        if res.cores <= self.cores_free() {
            return true;
        }
        keys.clear();
        keys.extend(
            self.running
                .iter()
                .enumerate()
                .filter(|(_, r)| priority.can_preempt(r.priority))
                .map(|(i, r)| (r.priority, r.since, i as u32, r.job, r.resources.cores)),
        );
        // Lowest priority first; among equals, most recently started first.
        keys.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
        let needed = res.cores - self.cores_free();
        let mut freed = 0u32;
        for &(_, _, _, job, cores) in keys.iter() {
            if freed >= needed {
                break;
            }
            freed += cores;
            victims.push(job);
        }
        if freed >= needed {
            true
        } else {
            victims.clear();
            false
        }
    }

    /// Starts a job on this machine.
    ///
    /// # Panics
    ///
    /// Panics if the footprint does not currently fit — callers must check
    /// [`Machine::can_run_now`] (or execute a preemption plan) first.
    pub fn start(&mut self, now: SimTime, job: JobId, res: Resources, priority: Priority) {
        assert!(
            self.can_run_now(res),
            "start called without capacity on {} for {}",
            self.config.id,
            job
        );
        self.cores_used += res.cores;
        self.memory_used += res.memory_mb;
        self.min_running_prio = Some(self.min_running_prio.map_or(priority, |m| m.min(priority)));
        self.running.push(Resident {
            job,
            resources: res,
            priority,
            since: now,
        });
    }

    /// Suspends a running job in place: cores are freed, memory stays
    /// resident.
    ///
    /// Returns the resident entry, or `None` if the job is not running here.
    pub fn suspend(&mut self, now: SimTime, job: JobId) -> Option<Resident> {
        let idx = self.running.iter().position(|r| r.job == job)?;
        let mut r = self.running.swap_remove(idx);
        self.cores_used -= r.resources.cores;
        self.refresh_min_running(r.priority);
        r.since = now;
        self.suspended.push(r);
        Some(r)
    }

    /// Resumes a suspended job (cores are re-acquired).
    ///
    /// Returns `None` (leaving state untouched) if the job is not suspended
    /// here or its cores no longer fit.
    pub fn resume(&mut self, now: SimTime, job: JobId) -> Option<Resident> {
        let idx = self.suspended.iter().position(|r| r.job == job)?;
        if self.suspended[idx].resources.cores > self.cores_free() {
            return None;
        }
        let mut r = self.suspended.swap_remove(idx);
        self.cores_used += r.resources.cores;
        self.min_running_prio = Some(
            self.min_running_prio
                .map_or(r.priority, |m| m.min(r.priority)),
        );
        r.since = now;
        self.running.push(r);
        Some(r)
    }

    /// The suspended jobs that could be resumed with current free cores,
    /// in resume order: highest priority first, earliest-suspended first.
    pub fn resumable(&self) -> Vec<JobId> {
        let mut keys = ResidentKeys::new();
        let mut out = Vec::new();
        self.resumable_into(&mut keys, &mut out);
        out
    }

    /// Allocation-free variant of [`Machine::resumable`]: writes the resume
    /// order into `out` using the caller's reusable `keys` sort buffer
    /// (both cleared first). Order is identical: highest priority first,
    /// earliest-suspended first, original list position as the tie-break.
    pub fn resumable_into(&self, keys: &mut ResidentKeys, out: &mut Vec<JobId>) {
        out.clear();
        keys.clear();
        keys.extend(
            self.suspended
                .iter()
                .enumerate()
                .map(|(i, r)| (r.priority, r.since, i as u32, r.job, r.resources.cores)),
        );
        keys.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut free = self.cores_free();
        for &(_, _, _, job, cores) in keys.iter() {
            if cores <= free {
                free -= cores;
                out.push(job);
            }
        }
    }

    /// Removes a running job (completion): frees cores and memory.
    ///
    /// Returns the resident entry, or `None` if the job is not running here.
    pub fn release(&mut self, job: JobId) -> Option<Resident> {
        let idx = self.running.iter().position(|r| r.job == job)?;
        let r = self.running.swap_remove(idx);
        self.cores_used -= r.resources.cores;
        self.memory_used -= r.resources.memory_mb;
        self.refresh_min_running(r.priority);
        Some(r)
    }

    /// Removes a suspended job (rescheduled away): frees its memory.
    ///
    /// Returns the resident entry, or `None` if the job is not suspended
    /// here.
    pub fn remove_suspended(&mut self, job: JobId) -> Option<Resident> {
        let idx = self.suspended.iter().position(|r| r.job == job)?;
        let r = self.suspended.swap_remove(idx);
        self.memory_used -= r.resources.memory_mb;
        Some(r)
    }

    /// Internal consistency check, used by tests and debug assertions.
    pub fn check_invariants(&self) -> bool {
        let cores: u32 = self.running.iter().map(|r| r.resources.cores).sum();
        let mem: u64 = self
            .running
            .iter()
            .chain(self.suspended.iter())
            .map(|r| r.resources.memory_mb)
            .sum();
        cores == self.cores_used
            && mem == self.memory_used
            && self.cores_used <= self.config.cores
            && self.memory_used <= self.config.memory_mb
            && self.min_running_prio == self.running.iter().map(|r| r.priority).min()
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("id", &self.config.id)
            .field(
                "cores",
                &format_args!("{}/{}", self.cores_used, self.config.cores),
            )
            .field(
                "memory_mb",
                &format_args!("{}/{}", self.memory_used, self.config.memory_mb),
            )
            .field("running", &self.running.len())
            .field("suspended", &self.suspended.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(cores: u32, mem: u64) -> Machine {
        Machine::new(MachineConfig::new(MachineId(0), cores, mem))
    }

    fn res(cores: u32, mem: u64) -> Resources {
        Resources {
            cores,
            memory_mb: mem,
        }
    }

    fn t(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    #[test]
    fn capacity_tracking() {
        let mut m = mk(4, 8000);
        assert!(m.can_run_now(res(4, 8000)));
        m.start(t(0), JobId(1), res(2, 3000), Priority::LOW);
        assert_eq!(m.cores_free(), 2);
        assert_eq!(m.memory_free(), 5000);
        assert!(m.can_run_now(res(2, 5000)));
        assert!(!m.can_run_now(res(3, 1000)));
        assert!(!m.can_run_now(res(1, 6000)));
        assert!(m.check_invariants());
    }

    #[test]
    fn eligibility_vs_availability() {
        let mut m = mk(2, 4000);
        m.start(t(0), JobId(1), res(2, 1000), Priority::LOW);
        assert!(m.can_ever_run(res(2, 4000)));
        assert!(!m.can_run_now(res(1, 1000)));
        assert!(!m.can_ever_run(res(3, 1000)));
        assert!(!m.can_ever_run(res(1, 5000)));
    }

    #[test]
    fn suspension_frees_cores_keeps_memory() {
        let mut m = mk(4, 8000);
        m.start(t(0), JobId(1), res(4, 4000), Priority::LOW);
        assert_eq!(m.cores_free(), 0);
        m.suspend(t(5), JobId(1)).expect("job running");
        assert_eq!(m.cores_free(), 4);
        assert_eq!(m.memory_free(), 4000); // memory still held
        assert_eq!(m.suspended().len(), 1);
        assert!(m.check_invariants());
    }

    #[test]
    fn resume_restores_cores() {
        let mut m = mk(4, 8000);
        m.start(t(0), JobId(1), res(2, 1000), Priority::LOW);
        m.suspend(t(1), JobId(1)).unwrap();
        let r = m.resume(t(9), JobId(1)).expect("resumable");
        assert_eq!(r.since, t(9));
        assert_eq!(m.cores_used(), 2);
        assert!(m.check_invariants());
    }

    #[test]
    fn resume_fails_without_cores() {
        let mut m = mk(4, 8000);
        m.start(t(0), JobId(1), res(3, 1000), Priority::LOW);
        m.suspend(t(1), JobId(1)).unwrap();
        m.start(t(1), JobId(2), res(3, 1000), Priority::HIGH);
        assert!(m.resume(t(2), JobId(1)).is_none());
        assert_eq!(
            m.suspended().len(),
            1,
            "failed resume must not lose the job"
        );
    }

    #[test]
    fn preemption_plan_picks_lowest_priority_most_recent() {
        let mut m = mk(4, 16_000);
        m.start(t(0), JobId(1), res(1, 100), Priority::new(2));
        m.start(t(5), JobId(2), res(1, 100), Priority::new(1));
        m.start(t(9), JobId(3), res(1, 100), Priority::new(1));
        m.start(t(2), JobId(4), res(1, 100), Priority::new(3));
        // Need 2 cores for a HIGH job: should pick the two priority-1 jobs,
        // most recent (job3) first.
        let plan = m
            .preemption_plan(res(2, 100), Priority::HIGH)
            .expect("feasible");
        assert_eq!(plan, vec![JobId(3), JobId(2)]);
    }

    #[test]
    fn preemption_plan_empty_when_fits() {
        let mut m = mk(4, 8000);
        m.start(t(0), JobId(1), res(1, 100), Priority::LOW);
        let plan = m.preemption_plan(res(1, 100), Priority::HIGH).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn preemption_infeasible_against_equal_priority() {
        let mut m = mk(2, 8000);
        m.start(t(0), JobId(1), res(2, 100), Priority::HIGH);
        assert!(m.preemption_plan(res(1, 100), Priority::HIGH).is_none());
        assert!(m.preemption_plan(res(1, 100), Priority::LOW).is_none());
    }

    #[test]
    fn preemption_infeasible_when_memory_short() {
        let mut m = mk(4, 4000);
        m.start(t(0), JobId(1), res(4, 3500), Priority::LOW);
        // Suspending frees cores but not the 3500 MB, so a 1000 MB job
        // cannot be placed.
        assert!(m.preemption_plan(res(1, 1000), Priority::HIGH).is_none());
        // A small-memory job can.
        assert!(m.preemption_plan(res(1, 400), Priority::HIGH).is_some());
    }

    #[test]
    fn resumable_orders_by_priority_then_suspension_time() {
        let mut m = mk(8, 64_000);
        for (id, prio, start) in [
            (1u64, Priority::LOW, 0u64),
            (2, Priority::HIGH, 1),
            (3, Priority::LOW, 2),
        ] {
            m.start(t(start), JobId(id), res(2, 100), prio);
            m.suspend(t(start + 10), JobId(id)).unwrap();
        }
        assert_eq!(
            m.resumable(),
            vec![JobId(2), JobId(1), JobId(3)],
            "high priority first, then earliest suspended"
        );
    }

    #[test]
    fn resumable_respects_core_budget() {
        let mut m = mk(4, 64_000);
        m.start(t(0), JobId(1), res(3, 100), Priority::LOW);
        m.suspend(t(1), JobId(1)).unwrap();
        m.start(t(2), JobId(2), res(2, 100), Priority::LOW);
        m.suspend(t(3), JobId(2)).unwrap();
        m.start(t(4), JobId(3), res(2, 100), Priority::LOW);
        // 2 cores busy, 2 free: job1 (3 cores) does not fit, job2 (2) does.
        assert_eq!(m.resumable(), vec![JobId(2)]);
    }

    #[test]
    fn release_and_remove_suspended_free_resources() {
        let mut m = mk(4, 8000);
        m.start(t(0), JobId(1), res(2, 2000), Priority::LOW);
        m.start(t(0), JobId(2), res(2, 2000), Priority::LOW);
        m.suspend(t(1), JobId(2)).unwrap();
        m.release(JobId(1)).expect("running");
        assert_eq!(m.cores_used(), 0);
        assert_eq!(m.memory_used(), 2000);
        m.remove_suspended(JobId(2)).expect("suspended");
        assert_eq!(m.memory_used(), 0);
        assert!(m.check_invariants());
    }

    #[test]
    fn missing_jobs_return_none() {
        let mut m = mk(4, 8000);
        assert!(m.suspend(t(0), JobId(9)).is_none());
        assert!(m.resume(t(0), JobId(9)).is_none());
        assert!(m.release(JobId(9)).is_none());
        assert!(m.remove_suspended(JobId(9)).is_none());
    }

    #[test]
    fn scaled_wall_rounds_up_and_scales() {
        let cfg = MachineConfig::new(MachineId(0), 1, 1000).with_speed_milli(2000);
        assert_eq!(
            cfg.scaled_wall(SimDuration::from_minutes(100)).as_minutes(),
            50
        );
        let slow = MachineConfig::new(MachineId(0), 1, 1000).with_speed_milli(300);
        assert_eq!(
            slow.scaled_wall(SimDuration::from_minutes(10)).as_minutes(),
            34
        );
        // Minimum one minute even for zero-runtime jobs.
        assert_eq!(slow.scaled_wall(SimDuration::ZERO).as_minutes(), 1);
    }

    #[test]
    fn min_running_priority_tracks_residency_changes() {
        let mut m = mk(4, 16_000);
        assert_eq!(m.min_running_priority(), None);
        m.start(t(0), JobId(1), res(1, 100), Priority::new(5));
        m.start(t(1), JobId(2), res(1, 100), Priority::new(2));
        m.start(t(2), JobId(3), res(1, 100), Priority::new(8));
        assert_eq!(m.min_running_priority(), Some(Priority::new(2)));
        // Suspending the minimum re-derives from the remaining running set.
        m.suspend(t(3), JobId(2)).unwrap();
        assert_eq!(m.min_running_priority(), Some(Priority::new(5)));
        // Resuming it brings the minimum back down.
        m.resume(t(4), JobId(2)).unwrap();
        assert_eq!(m.min_running_priority(), Some(Priority::new(2)));
        m.release(JobId(2)).unwrap();
        m.release(JobId(1)).unwrap();
        assert_eq!(m.min_running_priority(), Some(Priority::new(8)));
        m.release(JobId(3)).unwrap();
        assert_eq!(m.min_running_priority(), None);
        assert!(m.check_invariants());
    }

    #[test]
    fn failure_evicts_everyone_and_blocks_work() {
        let mut m = mk(4, 8000);
        m.start(t(0), JobId(1), res(1, 1000), Priority::LOW);
        m.start(t(0), JobId(2), res(1, 1000), Priority::LOW);
        m.suspend(t(1), JobId(2)).unwrap();
        let evicted = m.fail();
        assert_eq!(evicted.len(), 2);
        assert!(m.is_down());
        assert_eq!(m.cores_used(), 0);
        assert_eq!(m.memory_used(), 0);
        // Still *capable* (jobs may queue for it) but not *available*.
        assert!(m.can_ever_run(res(1, 1)));
        assert!(!m.can_run_now(res(1, 1)));
        assert!(m.preemption_plan(res(1, 1), Priority::HIGH).is_none());
        assert!(m.check_invariants());
        m.restore();
        assert!(m.can_run_now(res(4, 8000)));
    }

    #[test]
    fn draining_blocks_new_work_but_keeps_residents() {
        let mut m = mk(4, 8000);
        m.start(t(0), JobId(1), res(1, 1000), Priority::LOW);
        m.start(t(0), JobId(2), res(1, 1000), Priority::LOW);
        m.suspend(t(1), JobId(2)).unwrap();
        m.start_drain();
        assert!(m.is_draining());
        // No new placements or preemption plans...
        assert!(!m.can_run_now(res(1, 1)));
        assert!(m.preemption_plan(res(1, 1), Priority::HIGH).is_none());
        // ...but residents stay, may resume, and complete in place.
        assert_eq!(m.running().len(), 1);
        assert!(m.resume(t(2), JobId(2)).is_some());
        assert!(m.release(JobId(1)).is_some());
        assert!(m.check_invariants());
        m.end_drain();
        assert!(!m.is_draining());
        assert!(m.can_run_now(res(1, 1)));
    }

    #[test]
    fn health_is_clamped_to_millis() {
        let mut m = mk(1, 1000);
        assert_eq!(m.health_milli(), 1000);
        m.set_health_milli(250);
        assert_eq!(m.health_milli(), 250);
        m.set_health_milli(5000);
        assert_eq!(m.health_milli(), 1000);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Start { cores: u32, mem: u64, prio: u8 },
            Suspend(usize),
            Resume(usize),
            Release(usize),
            RemoveSuspended(usize),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (1u32..3, 64u64..2000, 0u8..12).prop_map(|(cores, mem, prio)| Op::Start {
                    cores,
                    mem,
                    prio
                }),
                (0usize..64).prop_map(Op::Suspend),
                (0usize..64).prop_map(Op::Resume),
                (0usize..64).prop_map(Op::Release),
                (0usize..64).prop_map(Op::RemoveSuspended),
            ]
        }

        proptest! {
            /// Machine counters stay consistent with residency under any
            /// valid operation sequence; capacity is never exceeded.
            #[test]
            fn prop_machine_invariants(ops in proptest::collection::vec(arb_op(), 1..100)) {
                let mut m = Machine::new(MachineConfig::new(MachineId(0), 4, 4096));
                let mut next = 0u64;
                let mut ids: Vec<JobId> = Vec::new();
                for (step, op) in ops.into_iter().enumerate() {
                    let t = SimTime::from_minutes(step as u64);
                    match op {
                        Op::Start { cores, mem, prio } => {
                            let res = Resources { cores, memory_mb: mem };
                            if m.can_run_now(res) {
                                let id = JobId(next);
                                next += 1;
                                m.start(t, id, res, Priority::new(prio));
                                ids.push(id);
                            }
                        }
                        Op::Suspend(i) => {
                            if let Some(&id) = ids.get(i % ids.len().max(1)) {
                                m.suspend(t, id);
                            }
                        }
                        Op::Resume(i) => {
                            if let Some(&id) = ids.get(i % ids.len().max(1)) {
                                m.resume(t, id);
                            }
                        }
                        Op::Release(i) => {
                            if let Some(&id) = ids.get(i % ids.len().max(1)) {
                                m.release(id);
                            }
                        }
                        Op::RemoveSuspended(i) => {
                            if let Some(&id) = ids.get(i % ids.len().max(1)) {
                                m.remove_suspended(id);
                            }
                        }
                    }
                    prop_assert!(m.check_invariants());
                    prop_assert!(m.cores_used() <= m.config().cores);
                    prop_assert!(m.memory_used() <= m.config().memory_mb);
                }
            }

            /// A feasible preemption plan, when executed, always makes room
            /// for the incoming footprint.
            #[test]
            fn prop_preemption_plan_is_sufficient(
                seeds in proptest::collection::vec((1u32..3, 0u8..5), 1..8),
                incoming_cores in 1u32..5,
                incoming_prio in 4u8..15,
            ) {
                let mut m = Machine::new(MachineConfig::new(MachineId(0), 4, 65536));
                for (i, (cores, prio)) in seeds.iter().enumerate() {
                    let res = Resources { cores: *cores, memory_mb: 10 };
                    if m.can_run_now(res) {
                        m.start(SimTime::from_minutes(i as u64), JobId(i as u64), res, Priority::new(*prio));
                    }
                }
                let want = Resources { cores: incoming_cores, memory_mb: 10 };
                if let Some(victims) = m.preemption_plan(want, Priority::new(incoming_prio)) {
                    for v in victims {
                        m.suspend(SimTime::from_minutes(100), v).expect("victim runs");
                    }
                    prop_assert!(m.can_run_now(want), "plan must free enough capacity");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "without capacity")]
    fn start_without_capacity_panics() {
        let mut m = mk(1, 1000);
        m.start(t(0), JobId(1), res(1, 1000), Priority::LOW);
        m.start(t(0), JobId(2), res(1, 1000), Priority::LOW);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        MachineConfig::new(MachineId(0), 1, 1).with_speed_milli(0);
    }
}
