//! The physical pool manager: machine list, wait queue, dispatch,
//! host-level preemption and capacity-freeing cycles.
//!
//! Protocol reproduced from §2.1 of the paper: when a job is assigned to the
//! pool, the manager picks the first *eligible and available* machine and
//! starts the job there. If every eligible machine is busy and some eligible
//! machine runs a strictly lower-priority job, that job is suspended and the
//! new one takes its place; otherwise the new job queues. If **no** machine
//! in the pool is eligible at all, the job is bounced back to the virtual
//! pool manager ([`SubmitOutcome::Ineligible`]).
//!
//! The "first eligible and available machine" is resolved through the
//! incremental [`AvailabilityIndex`] rather than a linear scan — same
//! chosen machine (verified against the retained reference scan,
//! [`PhysicalPool::reference_first_fit`], in debug builds and property
//! tests), O(classes·log n) instead of O(machines) per dispatch.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use netbatch_sim_engine::time::{SimDuration, SimTime};

use crate::ids::{JobId, MachineId, PoolId};
use crate::index::{AvailabilityIndex, MinMultiset};
use crate::job::{JobSpec, Resources};
use crate::machine::{Machine, MachineConfig};
use crate::priority::Priority;

/// Static description of a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// The pool's identifier.
    pub id: PoolId,
    /// Machines in the pool, in dispatch-scan order.
    pub machines: Vec<MachineConfig>,
}

impl PoolConfig {
    /// A pool of `n` identical machines.
    pub fn uniform(id: PoolId, n: u32, cores: u32, memory_mb: u64) -> Self {
        PoolConfig {
            id,
            machines: (0..n)
                .map(|i| MachineConfig::new(MachineId(i), cores, memory_mb))
                .collect(),
        }
    }

    /// Total core count.
    pub fn total_cores(&self) -> u32 {
        self.machines.iter().map(|m| m.cores).sum()
    }

    /// Returns a copy with every machine's core count halved (rounded up to
    /// at least 1) — the paper's **high load** scenario construction ("we
    /// reduce the number of compute cores available to each pool by half
    /// while keeping the submitted job trace unchanged").
    pub fn halved_cores(&self) -> PoolConfig {
        PoolConfig {
            id: self.id,
            machines: self
                .machines
                .iter()
                .map(|m| {
                    let mut c = m.clone();
                    c.cores = (m.cores / 2).max(1);
                    c
                })
                .collect(),
        }
    }
}

/// A job sitting in the pool's wait queue, with everything needed to start
/// it later without consulting external state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEntry {
    /// The waiting job.
    pub job: JobId,
    /// Its footprint.
    pub resources: Resources,
    /// Its priority.
    pub priority: Priority,
    /// Base runtime (unscaled).
    pub runtime: SimDuration,
    /// When it entered this queue.
    pub enqueued_at: SimTime,
}

/// Something the pool did that the simulator must react to (scheduling or
/// cancelling completion events, updating job records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolAction {
    /// A job began executing; its completion is `wall` from now.
    Started {
        /// The started job.
        job: JobId,
        /// Host machine.
        machine: MachineId,
        /// Wall-clock execution length on that machine.
        wall: SimDuration,
    },
    /// A running job was preempted and suspended in place.
    Suspended {
        /// The suspended job.
        job: JobId,
        /// Host machine.
        machine: MachineId,
    },
    /// A suspended job resumed on its machine; the simulator computes the
    /// new completion instant from the job's remaining wall time.
    Resumed {
        /// The resumed job.
        job: JobId,
        /// Host machine.
        machine: MachineId,
    },
}

/// Result of submitting a job to the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job was placed (possibly after preempting victims); the actions
    /// include one `Started` for the submitted job and a `Suspended` per
    /// victim, in execution order.
    Dispatched(Vec<PoolAction>),
    /// All eligible machines are saturated and non-preemptible; the job is
    /// in the wait queue.
    Queued,
    /// No machine in this pool can ever run the job; the virtual pool
    /// manager should try the next pool.
    Ineligible,
}

/// Outcome kind reported by [`PhysicalPool::submit_into`] — the
/// allocation-free submit appends its actions to the caller's buffer, so
/// the outcome itself carries no `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitKind {
    /// The job was placed; actions were appended to the caller's buffer.
    Dispatched,
    /// The job entered the wait queue; no actions.
    Queued,
    /// No machine here can ever run the job; no actions.
    Ineligible,
}

/// Cumulative per-pool statistics over a run — the operator's view of
/// where preemption storms and queue buildups happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Job starts (initial dispatches, queue starts, restarts).
    pub starts: u64,
    /// Preemption (suspension) events in this pool.
    pub suspensions: u64,
    /// Jobs that entered the wait queue.
    pub enqueues: u64,
    /// Largest wait-queue length observed.
    pub peak_queue: usize,
    /// Largest concurrent suspended-job count observed.
    pub peak_suspended: usize,
}

/// Queue key: higher priority first, FIFO within a priority.
type QueueKey = (std::cmp::Reverse<u8>, u64);

/// A physical pool: machines plus a priority wait queue.
pub struct PhysicalPool {
    id: PoolId,
    machines: Vec<Machine>,
    queue: BTreeMap<QueueKey, WaitEntry>,
    queue_index: HashMap<JobId, QueueKey>,
    queue_seq: u64,
    running_on: HashMap<JobId, MachineId>,
    suspended_on: HashMap<JobId, MachineId>,
    total_cores: u32,
    /// Static core total across all machines, up or down — the health
    /// gauge's denominator (`total_cores` shrinks while machines are
    /// down).
    nominal_cores: u32,
    busy_cores: u32,
    /// Machines currently failed; maintained by `fail_machine` /
    /// `restore_machine` so health queries are O(1).
    down_machines: usize,
    /// Machines currently draining or cordoned; maintained by
    /// `drain_machine` / `undrain_machine`.
    draining_machines: usize,
    /// Health-weighted capacity of *available* (up, non-draining)
    /// machines, in core-millis: `Σ cores · health_milli`. Maintained
    /// incrementally on every fail/restore/drain/undrain/health change so
    /// per-decision snapshots stay O(1).
    eff_cores_milli: u64,
    stats: PoolStats,
    /// Free-capacity index over `machines`, re-synced after every machine
    /// mutation; answers first-fit and eligibility without scanning.
    index: AvailabilityIndex,
    /// Priorities of all running jobs in the pool. Its minimum tells
    /// `submit` in O(1) whether *any* preemption plan can exist.
    running_prios: MinMultiset<Priority>,
    /// Core footprints of all waiting jobs: `capacity_cycle` stops
    /// scanning the queue once the freed machine can't cover the minimum.
    queue_cores: MinMultiset<u32>,
    /// Memory footprints of all waiting jobs (same cutoff, memory axis).
    queue_mem: MinMultiset<u64>,
    // Scratch buffers reused across dispatch operations, so steady-state
    // submit/release/resume cycles allocate nothing.
    /// Trial victim plan for the machine currently being scanned.
    scratch_plan: Vec<JobId>,
    /// Best victim plan found so far (swapped with `scratch_plan`).
    scratch_best: Vec<JobId>,
    /// Resume order produced per capacity cycle.
    scratch_resume: Vec<JobId>,
    /// Sort-key buffer threaded through the machine-level planners.
    scratch_keys: crate::machine::ResidentKeys,
}

impl PhysicalPool {
    /// Builds an idle pool from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if machine ids are not the dense sequence `0..n` in order —
    /// the pool uses machine ids as indices into its scan list.
    pub fn new(config: PoolConfig) -> Self {
        for (i, m) in config.machines.iter().enumerate() {
            assert_eq!(
                m.id.as_usize(),
                i,
                "machine ids must be dense and in order within a pool"
            );
        }
        let total_cores = config.total_cores();
        let machines: Vec<Machine> = config.machines.into_iter().map(Machine::new).collect();
        let index = AvailabilityIndex::new(&machines);
        PhysicalPool {
            id: config.id,
            machines,
            queue: BTreeMap::new(),
            queue_index: HashMap::new(),
            queue_seq: 0,
            running_on: HashMap::new(),
            suspended_on: HashMap::new(),
            total_cores,
            nominal_cores: total_cores,
            busy_cores: 0,
            down_machines: 0,
            draining_machines: 0,
            eff_cores_milli: u64::from(total_cores) * 1000,
            stats: PoolStats::default(),
            index,
            running_prios: MinMultiset::new(),
            queue_cores: MinMultiset::new(),
            queue_mem: MinMultiset::new(),
            scratch_plan: Vec::new(),
            scratch_best: Vec::new(),
            scratch_resume: Vec::new(),
            scratch_keys: Vec::new(),
        }
    }

    /// Re-syncs the availability index for machine `idx` after any state
    /// change. Every mutation path funnels through this, keeping index and
    /// machines in lock-step.
    fn sync_index(&mut self, idx: usize) {
        self.index.sync(idx, &self.machines[idx]);
    }

    /// Cumulative statistics since construction.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// The pool id.
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// Total cores across all machines.
    pub fn total_cores(&self) -> u32 {
        self.total_cores
    }

    /// Static core total across all machines, up or down.
    pub fn nominal_cores(&self) -> u32 {
        self.nominal_cores
    }

    /// Cores currently running jobs. Maintained incrementally, so this is
    /// `O(1)` — scheduling policies call it on every decision.
    pub fn busy_cores(&self) -> u32 {
        self.busy_cores
    }

    /// Core utilization in `[0, 1]` — the signal `ResSusUtil`-style policies
    /// select pools by.
    pub fn utilization(&self) -> f64 {
        if self.total_cores == 0 {
            return 0.0;
        }
        f64::from(self.busy_cores()) / f64::from(self.total_cores)
    }

    /// Number of jobs in the wait queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of suspended jobs across the pool's machines.
    pub fn suspended_count(&self) -> usize {
        self.suspended_on.len()
    }

    /// Number of running jobs.
    pub fn running_count(&self) -> usize {
        self.running_on.len()
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of machines currently down (failed and not yet restored).
    pub fn down_machine_count(&self) -> usize {
        self.down_machines
    }

    /// Number of machines currently draining or cordoned.
    pub fn draining_machine_count(&self) -> usize {
        self.draining_machines
    }

    /// Health-weighted capacity of available (up, non-draining) machines
    /// in core-millis (`Σ cores · health_milli`; 1000 per fully healthy
    /// core). The health-aware policies' effective-capacity signal, O(1).
    pub fn effective_cores_milli(&self) -> u64 {
        self.eff_cores_milli
    }

    /// True when every machine in the pool is down — e.g. the pool lost
    /// connectivity to the virtual pool manager. A hardened scheduler
    /// parks retried jobs at the VPM instead of queueing on such a pool.
    pub fn is_fully_down(&self) -> bool {
        !self.machines.is_empty() && self.down_machines == self.machines.len()
    }

    /// Read access to one machine, for observers that cross-check the
    /// pool's per-machine accounting (cores, resident memory) online.
    pub fn machine(&self, id: MachineId) -> Option<&Machine> {
        self.machines.get(id.as_usize())
    }

    /// Since when a job has been waiting in this pool's queue, if it is.
    pub fn waiting_since(&self, job: JobId) -> Option<SimTime> {
        let key = self.queue_index.get(&job)?;
        self.queue.get(key).map(|e| e.enqueued_at)
    }

    /// The machine a job is suspended on, if it is suspended here.
    pub fn suspended_machine(&self, job: JobId) -> Option<MachineId> {
        self.suspended_on.get(&job).copied()
    }

    /// The machine a job is running on, if it is running here.
    pub fn running_machine(&self, job: JobId) -> Option<MachineId> {
        self.running_on.get(&job).copied()
    }

    /// Iterates the wait queue in dispatch order (priority desc, FIFO).
    pub fn waiting_jobs(&self) -> impl Iterator<Item = &WaitEntry> {
        self.queue.values()
    }

    /// True if any machine could ever run the footprint (the pool-level
    /// eligibility test). O(classes): class membership is static, so the
    /// index answers without touching the machine list.
    pub fn is_eligible(&self, res: Resources) -> bool {
        let eligible = self.index.is_eligible(res);
        debug_assert_eq!(eligible, self.machines.iter().any(|m| m.can_ever_run(res)));
        eligible
    }

    /// The machine first-fit dispatch would choose right now, resolved
    /// through the availability index. Exposed (with
    /// [`PhysicalPool::reference_first_fit`]) for differential testing.
    pub fn indexed_first_fit(&self, res: Resources) -> Option<MachineId> {
        self.index.first_fit(res).map(|i| self.machines[i].id())
    }

    /// The seed's original linear first-fit scan, retained as the reference
    /// the index is differentially checked against: the first machine in id
    /// order that is both eligible and available.
    pub fn reference_first_fit(&self, res: Resources) -> Option<MachineId> {
        self.machines
            .iter()
            .position(|m| m.can_ever_run(res) && m.can_run_now(res))
            .map(|i| self.machines[i].id())
    }

    /// The lowest priority among running jobs anywhere in the pool, O(1).
    /// `None` means the pool runs nothing — and, either way, a submit with
    /// priority ≤ this value cannot trigger a preemption.
    pub fn lowest_running_priority(&self) -> Option<Priority> {
        self.running_prios.min()
    }

    /// Submits a job to this pool (paper §2.1 dispatch protocol).
    pub fn submit(&mut self, now: SimTime, spec: &JobSpec) -> SubmitOutcome {
        let mut actions = Vec::new();
        match self.submit_into(now, spec, &mut actions) {
            SubmitKind::Dispatched => SubmitOutcome::Dispatched(actions),
            SubmitKind::Queued => SubmitOutcome::Queued,
            SubmitKind::Ineligible => SubmitOutcome::Ineligible,
        }
    }

    /// Allocation-free submit: identical protocol and action order to
    /// [`PhysicalPool::submit`], but any resulting actions are appended to
    /// the caller's reusable buffer and the outcome carries no `Vec`.
    pub fn submit_into(
        &mut self,
        now: SimTime,
        spec: &JobSpec,
        actions: &mut Vec<PoolAction>,
    ) -> SubmitKind {
        let res = spec.resources;
        if !self.is_eligible(res) {
            return SubmitKind::Ineligible;
        }
        // 1. First eligible machine with free capacity — indexed query,
        // cross-checked against the reference linear scan in debug builds.
        let first_fit = self.index.first_fit(res);
        debug_assert_eq!(
            first_fit.map(|i| self.machines[i].id()),
            self.reference_first_fit(res),
            "availability index diverged from the reference scan"
        );
        if let Some(idx) = first_fit {
            let wall = self.machines[idx].config().scaled_wall(spec.runtime);
            let mid = self.machines[idx].id();
            self.machines[idx].start(now, spec.id, res, spec.priority);
            self.sync_index(idx);
            self.running_on.insert(spec.id, mid);
            self.running_prios.insert(spec.priority);
            self.busy_cores += res.cores;
            self.stats.starts += 1;
            debug_assert!(self.machines[idx].check_invariants());
            actions.push(PoolAction::Started {
                job: spec.id,
                machine: mid,
                wall,
            });
            return SubmitKind::Dispatched;
        }
        // 2. Preemption: among eligible machines with a feasible plan, pick
        // the one whose victims lose the least progress (most recently
        // started). Suspending the freshest jobs minimizes the work a
        // rescheduling restart will discard.
        //
        // Short-circuit: step 1 failed, so any feasible plan has at least
        // one victim, which must run at strictly lower priority. If no job
        // in the pool does (O(1) via the running-priority minimum), no plan
        // exists anywhere — skip straight to the queue.
        if !self
            .running_prios
            .min()
            .is_some_and(|lowest| spec.priority.can_preempt(lowest))
        {
            self.enqueue(now, spec);
            return SubmitKind::Queued;
        }
        // The plan buffers are taken out of `self` for the scan so machine
        // mutations below don't fight the borrow checker; put back at the
        // end to keep their capacity for the next submit.
        let mut trial = std::mem::take(&mut self.scratch_plan);
        let mut best_plan = std::mem::take(&mut self.scratch_best);
        let mut keys = std::mem::take(&mut self.scratch_keys);
        best_plan.clear();
        let mut best: Option<(usize, SimTime)> = None;
        for idx in 0..self.machines.len() {
            if !self.machines[idx].can_ever_run(res) {
                continue;
            }
            // Same argument per machine: no strictly-lower-priority job
            // running here means no feasible plan here (cached, O(1)).
            if !self.machines[idx]
                .min_running_priority()
                .is_some_and(|lowest| spec.priority.can_preempt(lowest))
            {
                continue;
            }
            if !self.machines[idx].preemption_plan_into(res, spec.priority, &mut keys, &mut trial) {
                continue;
            }
            debug_assert!(!trial.is_empty(), "empty plan implies can_run_now");
            // Freshest plan = latest earliest-start among its victims.
            let earliest_start = trial
                .iter()
                .filter_map(|v| {
                    self.machines[idx]
                        .running()
                        .iter()
                        .find(|r| r.job == *v)
                        .map(|r| r.since)
                })
                .min()
                .unwrap_or(SimTime::ZERO);
            let better = match &best {
                Some((_, best_start)) => earliest_start > *best_start,
                None => true,
            };
            if better {
                best = Some((idx, earliest_start));
                std::mem::swap(&mut best_plan, &mut trial);
            }
        }
        let kind = if let Some((idx, _)) = best {
            let mid = self.machines[idx].id();
            actions.reserve(best_plan.len() + 1);
            for &victim in &best_plan {
                let r = self.machines[idx]
                    .suspend(now, victim)
                    .expect("planned victim is running");
                self.busy_cores -= r.resources.cores;
                self.running_on.remove(&victim);
                self.running_prios.remove(r.priority);
                self.suspended_on.insert(victim, mid);
                self.stats.suspensions += 1;
                self.stats.peak_suspended = self.stats.peak_suspended.max(self.suspended_on.len());
                actions.push(PoolAction::Suspended {
                    job: victim,
                    machine: mid,
                });
            }
            let wall = self.machines[idx].config().scaled_wall(spec.runtime);
            self.machines[idx].start(now, spec.id, res, spec.priority);
            self.sync_index(idx);
            self.running_on.insert(spec.id, mid);
            self.running_prios.insert(spec.priority);
            self.busy_cores += res.cores;
            self.stats.starts += 1;
            actions.push(PoolAction::Started {
                job: spec.id,
                machine: mid,
                wall,
            });
            debug_assert!(self.machines[idx].check_invariants());
            SubmitKind::Dispatched
        } else {
            // 3. Queue.
            self.enqueue(now, spec);
            SubmitKind::Queued
        };
        self.scratch_plan = trial;
        self.scratch_best = best_plan;
        self.scratch_keys = keys;
        kind
    }

    fn enqueue(&mut self, now: SimTime, spec: &JobSpec) {
        let key = (std::cmp::Reverse(spec.priority.level()), self.queue_seq);
        self.queue_seq += 1;
        self.queue.insert(
            key,
            WaitEntry {
                job: spec.id,
                resources: spec.resources,
                priority: spec.priority,
                runtime: spec.runtime,
                enqueued_at: now,
            },
        );
        self.queue_index.insert(spec.id, key);
        self.queue_cores.insert(spec.resources.cores);
        self.queue_mem.insert(spec.resources.memory_mb);
        self.stats.enqueues += 1;
        self.stats.peak_queue = self.stats.peak_queue.max(self.queue.len());
    }

    /// A running job completed: frees its resources, then resumes suspended
    /// jobs on that machine and dispatches waiting jobs onto the freed
    /// capacity.
    ///
    /// Returns the follow-on actions (`Resumed` / `Started`). Returns `None`
    /// if the job is not running in this pool.
    pub fn release(&mut self, now: SimTime, job: JobId) -> Option<Vec<PoolAction>> {
        let mut actions = Vec::new();
        self.release_into(now, job, &mut actions).then_some(actions)
    }

    /// Allocation-free variant of [`PhysicalPool::release`]: appends the
    /// follow-on actions to `actions` and returns whether the job was
    /// running here (nothing is appended when it was not).
    pub fn release_into(
        &mut self,
        now: SimTime,
        job: JobId,
        actions: &mut Vec<PoolAction>,
    ) -> bool {
        let Some(mid) = self.running_on.remove(&job) else {
            return false;
        };
        let idx = mid.as_usize();
        let r = self.machines[idx].release(job).expect("index says running");
        self.busy_cores -= r.resources.cores;
        self.running_prios.remove(r.priority);
        self.capacity_cycle_into(now, idx, actions);
        true
    }

    /// Removes a waiting job from the queue (a wait-rescheduling decision).
    ///
    /// Returns the entry, or `None` if the job is not waiting here.
    pub fn remove_waiting(&mut self, job: JobId) -> Option<WaitEntry> {
        let key = self.queue_index.remove(&job)?;
        let entry = self.queue.remove(&key);
        if let Some(e) = &entry {
            self.queue_cores.remove(e.resources.cores);
            self.queue_mem.remove(e.resources.memory_mb);
        }
        entry
    }

    /// Removes a suspended job from its machine (a suspend-rescheduling
    /// decision): frees its resident memory, which may admit queued jobs.
    ///
    /// Returns the follow-on actions, or `None` if the job is not suspended
    /// here.
    pub fn remove_suspended(&mut self, now: SimTime, job: JobId) -> Option<Vec<PoolAction>> {
        let mut actions = Vec::new();
        self.remove_suspended_into(now, job, &mut actions)
            .then_some(actions)
    }

    /// Allocation-free variant of [`PhysicalPool::remove_suspended`]:
    /// appends the follow-on actions to `actions` and returns whether the
    /// job was suspended here.
    pub fn remove_suspended_into(
        &mut self,
        now: SimTime,
        job: JobId,
        actions: &mut Vec<PoolAction>,
    ) -> bool {
        let Some(mid) = self.suspended_on.remove(&job) else {
            return false;
        };
        let idx = mid.as_usize();
        self.machines[idx]
            .remove_suspended(job)
            .expect("index says suspended");
        self.capacity_cycle_into(now, idx, actions);
        true
    }

    /// After capacity freed on machine `idx`: resume suspended residents
    /// (highest priority, earliest suspended first), then start queued jobs
    /// that now fit, repeating until nothing changes.
    ///
    /// Design choice (DESIGN.md §3): suspended residents take freed capacity
    /// before the wait queue — they already hold memory on the host and
    /// suspension is meant to be temporary.
    fn capacity_cycle_into(&mut self, now: SimTime, idx: usize, actions: &mut Vec<PoolAction>) {
        let mid = self.machines[idx].id();
        // 1. Resume. The resume list is taken out of `self` so the machine
        // mutations inside the loop don't conflict with its borrow.
        let mut resumable = std::mem::take(&mut self.scratch_resume);
        let mut keys = std::mem::take(&mut self.scratch_keys);
        self.machines[idx].resumable_into(&mut keys, &mut resumable);
        for &job in &resumable {
            let r = self.machines[idx].resume(now, job).expect("resumable fits");
            self.busy_cores += r.resources.cores;
            self.suspended_on.remove(&job);
            self.running_on.insert(job, mid);
            self.running_prios.insert(r.priority);
            actions.push(PoolAction::Resumed { job, machine: mid });
        }
        self.scratch_resume = resumable;
        self.scratch_keys = keys;
        // 2. Dispatch queue onto this machine while anything fits. The
        // queue's min-footprint summary bounds the scan: once the machine
        // can't cover even the smallest waiting core or memory ask,
        // nothing in the queue fits and the O(queue) scan is skipped.
        loop {
            let machine = &self.machines[idx];
            let can_fit_something = !machine.is_down()
                && !machine.is_draining()
                && self
                    .queue_cores
                    .min()
                    .is_some_and(|c| c <= machine.cores_free())
                && self
                    .queue_mem
                    .min()
                    .is_some_and(|m| m <= machine.memory_free());
            if !can_fit_something {
                debug_assert!(
                    !self
                        .queue
                        .values()
                        .any(|e| self.machines[idx].can_run_now(e.resources)),
                    "min-footprint cutoff skipped a dispatchable entry"
                );
                break;
            }
            let candidate = self
                .queue
                .iter()
                .find(|(_, e)| self.machines[idx].can_run_now(e.resources))
                .map(|(k, _)| *k);
            let Some(key) = candidate else { break };
            let entry = self.queue.remove(&key).expect("key just found");
            self.queue_index.remove(&entry.job);
            self.queue_cores.remove(entry.resources.cores);
            self.queue_mem.remove(entry.resources.memory_mb);
            let wall = self.machines[idx].config().scaled_wall(entry.runtime);
            self.machines[idx].start(now, entry.job, entry.resources, entry.priority);
            self.running_on.insert(entry.job, mid);
            self.running_prios.insert(entry.priority);
            self.busy_cores += entry.resources.cores;
            self.stats.starts += 1;
            actions.push(PoolAction::Started {
                job: entry.job,
                machine: mid,
                wall,
            });
        }
        self.sync_index(idx);
        debug_assert!(self.machines[idx].check_invariants());
    }

    /// Fails a machine: every resident job is evicted (the caller must
    /// resubmit them — host-level state is lost, so they restart from
    /// scratch). Returns `(running, suspended)` evicted job ids, or `None`
    /// if the machine is already down or out of range.
    pub fn fail_machine(&mut self, machine: MachineId) -> Option<(Vec<JobId>, Vec<JobId>)> {
        let mut running = Vec::new();
        let mut suspended = Vec::new();
        self.fail_machine_into(machine, &mut running, &mut suspended)
            .then_some((running, suspended))
    }

    /// Allocation-light variant of [`PhysicalPool::fail_machine`]: appends
    /// the evicted running and suspended job ids to the caller's buffers
    /// and returns whether the machine was up (nothing is appended when it
    /// was not).
    pub fn fail_machine_into(
        &mut self,
        machine: MachineId,
        running: &mut Vec<JobId>,
        suspended: &mut Vec<JobId>,
    ) -> bool {
        let idx = machine.as_usize();
        if idx >= self.machines.len() || self.machines[idx].is_down() {
            return false;
        }
        if !self.machines[idx].is_draining() {
            self.eff_cores_milli -= u64::from(self.machines[idx].config().cores)
                * u64::from(self.machines[idx].health_milli());
        }
        for r in self.machines[idx].fail() {
            if self.running_on.remove(&r.job).is_some() {
                self.busy_cores -= r.resources.cores;
                self.running_prios.remove(r.priority);
                running.push(r.job);
            } else if self.suspended_on.remove(&r.job).is_some() {
                suspended.push(r.job);
            }
        }
        self.sync_index(idx);
        self.total_cores -= self.machines[idx].config().cores;
        self.down_machines += 1;
        true
    }

    /// Restores a failed machine and immediately dispatches queued work
    /// onto it. Returns the follow-on actions, or `None` if the machine
    /// was not down.
    pub fn restore_machine(&mut self, now: SimTime, machine: MachineId) -> Option<Vec<PoolAction>> {
        let mut actions = Vec::new();
        self.restore_machine_into(now, machine, &mut actions)
            .then_some(actions)
    }

    /// Allocation-free variant of [`PhysicalPool::restore_machine`]:
    /// appends the follow-on actions to `actions` and returns whether the
    /// machine was down.
    pub fn restore_machine_into(
        &mut self,
        now: SimTime,
        machine: MachineId,
        actions: &mut Vec<PoolAction>,
    ) -> bool {
        let idx = machine.as_usize();
        if idx >= self.machines.len() || !self.machines[idx].is_down() {
            return false;
        }
        self.machines[idx].restore();
        if !self.machines[idx].is_draining() {
            self.eff_cores_milli += u64::from(self.machines[idx].config().cores)
                * u64::from(self.machines[idx].health_milli());
        }
        self.total_cores += self.machines[idx].config().cores;
        self.down_machines -= 1;
        self.capacity_cycle_into(now, idx, actions);
        true
    }

    /// Starts draining (or cordons) a machine: it leaves the availability
    /// index, accepting no new work, while residents keep running (and
    /// resuming). Returns whether the machine was not already draining.
    pub fn drain_machine(&mut self, machine: MachineId) -> bool {
        let idx = machine.as_usize();
        if idx >= self.machines.len() || self.machines[idx].is_draining() {
            return false;
        }
        if !self.machines[idx].is_down() {
            self.eff_cores_milli -= u64::from(self.machines[idx].config().cores)
                * u64::from(self.machines[idx].health_milli());
        }
        self.machines[idx].start_drain();
        self.sync_index(idx);
        self.draining_machines += 1;
        true
    }

    /// Ends a machine's drain/cordon and immediately dispatches queued
    /// work onto it. Returns the follow-on actions, or `None` if the
    /// machine was not draining.
    pub fn undrain_machine(&mut self, now: SimTime, machine: MachineId) -> Option<Vec<PoolAction>> {
        let mut actions = Vec::new();
        self.undrain_machine_into(now, machine, &mut actions)
            .then_some(actions)
    }

    /// Allocation-free variant of [`PhysicalPool::undrain_machine`]:
    /// appends the follow-on actions to `actions` and returns whether the
    /// machine was draining.
    pub fn undrain_machine_into(
        &mut self,
        now: SimTime,
        machine: MachineId,
        actions: &mut Vec<PoolAction>,
    ) -> bool {
        let idx = machine.as_usize();
        if idx >= self.machines.len() || !self.machines[idx].is_draining() {
            return false;
        }
        self.machines[idx].end_drain();
        if !self.machines[idx].is_down() {
            self.eff_cores_milli += u64::from(self.machines[idx].config().cores)
                * u64::from(self.machines[idx].health_milli());
        }
        self.draining_machines -= 1;
        self.capacity_cycle_into(now, idx, actions);
        true
    }

    /// Lists the jobs resident on `machine` — running and suspended, in
    /// resident-list order — without disturbing them. The proactive
    /// evacuation planner's read-only view: unlike
    /// [`PhysicalPool::fail_machine_into`] the machine keeps its state.
    pub fn residents_into(
        &self,
        machine: MachineId,
        running: &mut Vec<JobId>,
        suspended: &mut Vec<JobId>,
    ) {
        if let Some(m) = self.machines.get(machine.as_usize()) {
            running.extend(m.running().iter().map(|r| r.job));
            suspended.extend(m.suspended().iter().map(|r| r.job));
        }
    }

    /// Sets a machine's per-run health score (clamped to 0..=1000),
    /// keeping the effective-capacity sum consistent.
    pub fn set_machine_health(&mut self, machine: MachineId, health_milli: u32) {
        let idx = machine.as_usize();
        if idx >= self.machines.len() {
            return;
        }
        let cores = u64::from(self.machines[idx].config().cores);
        let old = u64::from(self.machines[idx].health_milli());
        self.machines[idx].set_health_milli(health_milli);
        let new = u64::from(self.machines[idx].health_milli());
        if !self.machines[idx].is_down() && !self.machines[idx].is_draining() {
            self.eff_cores_milli = self.eff_cores_milli - cores * old + cores * new;
        }
    }

    /// Pool-level invariant check used by tests: index maps agree with
    /// machine residency, capacity counters are consistent, and the
    /// incremental availability index and min-summaries match a rebuild
    /// from scratch.
    pub fn check_invariants(&self) -> bool {
        let machines_ok = self.machines.iter().all(Machine::check_invariants);
        let running: usize = self.machines.iter().map(|m| m.running().len()).sum();
        let suspended: usize = self.machines.iter().map(|m| m.suspended().len()).sum();
        let busy: u32 = self.machines.iter().map(Machine::cores_used).sum();
        let prios_ok = self.running_prios.len() == self.running_on.len()
            && self.running_prios.min()
                == self
                    .machines
                    .iter()
                    .filter_map(Machine::min_running_priority)
                    .min();
        let queue_summary_ok = self.queue_cores.len() == self.queue.len()
            && self.queue_mem.len() == self.queue.len()
            && self.queue_cores.min() == self.queue.values().map(|e| e.resources.cores).min()
            && self.queue_mem.min() == self.queue.values().map(|e| e.resources.memory_mb).min();
        let down = self.machines.iter().filter(|m| m.is_down()).count();
        let draining = self.machines.iter().filter(|m| m.is_draining()).count();
        let eff: u64 = self
            .machines
            .iter()
            .filter(|m| !m.is_down() && !m.is_draining())
            .map(|m| u64::from(m.config().cores) * u64::from(m.health_milli()))
            .sum();
        machines_ok
            && running == self.running_on.len()
            && suspended == self.suspended_on.len()
            && self.queue.len() == self.queue_index.len()
            && busy == self.busy_cores
            && down == self.down_machines
            && draining == self.draining_machines
            && eff == self.eff_cores_milli
            && self.index.check_consistency(&self.machines)
            && prios_ok
            && queue_summary_ok
    }
}

impl fmt::Debug for PhysicalPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalPool")
            .field("id", &self.id)
            .field("machines", &self.machines.len())
            .field("busy_cores", &self.busy_cores())
            .field("total_cores", &self.total_cores)
            .field("waiting", &self.queue.len())
            .field("suspended", &self.suspended_on.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::Priority;

    fn t(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    fn d(m: u64) -> SimDuration {
        SimDuration::from_minutes(m)
    }

    fn spec(id: u64, prio: Priority, runtime: u64) -> JobSpec {
        JobSpec::new(JobId(id), t(0), d(runtime)).with_priority(prio)
    }

    fn small_pool() -> PhysicalPool {
        // 2 machines × 2 cores × 4 GB.
        PhysicalPool::new(PoolConfig::uniform(PoolId(0), 2, 2, 4096))
    }

    #[test]
    fn dispatch_to_first_available_machine() {
        let mut p = small_pool();
        let out = p.submit(t(0), &spec(1, Priority::LOW, 100));
        let SubmitOutcome::Dispatched(actions) = out else {
            panic!("expected dispatch, got {out:?}")
        };
        assert_eq!(
            actions,
            vec![PoolAction::Started {
                job: JobId(1),
                machine: MachineId(0),
                wall: d(100)
            }]
        );
        assert_eq!(p.busy_cores(), 1);
        assert!(p.check_invariants());
    }

    #[test]
    fn fills_machines_in_scan_order() {
        let mut p = small_pool();
        for id in 1..=4 {
            assert!(matches!(
                p.submit(t(0), &spec(id, Priority::LOW, 10)),
                SubmitOutcome::Dispatched(_)
            ));
        }
        assert_eq!(p.busy_cores(), 4);
        assert_eq!(p.utilization(), 1.0);
        // Fifth job queues.
        assert_eq!(
            p.submit(t(1), &spec(5, Priority::LOW, 10)),
            SubmitOutcome::Queued
        );
        assert_eq!(p.queue_len(), 1);
        assert_eq!(p.waiting_since(JobId(5)), Some(t(1)));
    }

    #[test]
    fn high_priority_preempts_low() {
        let mut p = small_pool();
        for id in 1..=4 {
            p.submit(t(0), &spec(id, Priority::LOW, 100));
        }
        let out = p.submit(t(5), &spec(9, Priority::HIGH, 50));
        let SubmitOutcome::Dispatched(actions) = out else {
            panic!("expected preemption dispatch")
        };
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[0],
            PoolAction::Suspended {
                machine: MachineId(0),
                ..
            }
        ));
        assert!(matches!(
            actions[1],
            PoolAction::Started {
                job: JobId(9),
                machine: MachineId(0),
                ..
            }
        ));
        assert_eq!(p.suspended_count(), 1);
        assert!(p.check_invariants());
    }

    #[test]
    fn equal_priority_queues_instead_of_preempting() {
        let mut p = small_pool();
        for id in 1..=4 {
            p.submit(t(0), &spec(id, Priority::HIGH, 100));
        }
        assert_eq!(
            p.submit(t(5), &spec(9, Priority::HIGH, 50)),
            SubmitOutcome::Queued
        );
        assert_eq!(p.suspended_count(), 0);
    }

    #[test]
    fn ineligible_when_no_machine_big_enough() {
        let mut p = small_pool();
        let big = JobSpec::new(JobId(1), t(0), d(10)).with_cores(8);
        assert_eq!(p.submit(t(0), &big), SubmitOutcome::Ineligible);
        let fat = JobSpec::new(JobId(2), t(0), d(10)).with_memory_mb(1 << 20);
        assert_eq!(p.submit(t(0), &fat), SubmitOutcome::Ineligible);
    }

    #[test]
    fn completion_resumes_suspended_before_queue() {
        let mut p = small_pool();
        // Fill machine 0 with two low jobs, machine 1 with two low jobs.
        for id in 1..=4 {
            p.submit(t(0), &spec(id, Priority::LOW, 100));
        }
        // Preempt on machine 0 with a 2-core high job (suspends jobs 1+2).
        let high = JobSpec::new(JobId(9), t(1), d(30))
            .with_priority(Priority::HIGH)
            .with_cores(2);
        let SubmitOutcome::Dispatched(a) = p.submit(t(1), &high) else {
            panic!()
        };
        assert_eq!(
            a.iter()
                .filter(|x| matches!(x, PoolAction::Suspended { .. }))
                .count(),
            2
        );
        // Queue a low job as well.
        p.submit(t(2), &spec(20, Priority::LOW, 10));
        assert_eq!(p.queue_len(), 1);
        // High job completes: suspended jobs resume first and fill the
        // machine; queued job stays.
        let actions = p.release(t(31), JobId(9)).expect("running");
        let resumed: Vec<_> = actions
            .iter()
            .filter(|x| matches!(x, PoolAction::Resumed { .. }))
            .collect();
        assert_eq!(resumed.len(), 2);
        assert_eq!(p.queue_len(), 1, "no room left for the queued job");
        assert!(p.check_invariants());
    }

    #[test]
    fn completion_starts_queued_in_priority_then_fifo_order() {
        let mut p = PhysicalPool::new(PoolConfig::uniform(PoolId(0), 1, 1, 4096));
        p.submit(t(0), &spec(1, Priority::HIGH, 50)); // occupies the core
        p.submit(t(1), &spec(2, Priority::LOW, 10));
        p.submit(t(2), &spec(3, Priority::HIGH, 10)); // equal prio: queues
        p.submit(t(3), &spec(4, Priority::LOW, 10));
        assert_eq!(p.queue_len(), 3);
        let actions = p.release(t(50), JobId(1)).expect("running");
        // Highest-priority waiter (job 3) starts on the freed core.
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            actions[0],
            PoolAction::Started { job: JobId(3), .. }
        ));
        assert_eq!(p.queue_len(), 2);
    }

    #[test]
    fn preemption_then_completion_resume_cycle() {
        let mut p = PhysicalPool::new(PoolConfig::uniform(PoolId(0), 1, 1, 4096));
        p.submit(t(0), &spec(1, Priority::LOW, 50));
        let out = p.submit(t(10), &spec(2, Priority::HIGH, 20));
        assert!(matches!(out, SubmitOutcome::Dispatched(_)));
        assert_eq!(p.suspended_count(), 1);
        let actions = p.release(t(30), JobId(2)).expect("high job running");
        assert_eq!(
            actions,
            vec![PoolAction::Resumed {
                job: JobId(1),
                machine: MachineId(0)
            }]
        );
        assert_eq!(p.suspended_count(), 0);
        assert_eq!(p.running_machine(JobId(1)), Some(MachineId(0)));
    }

    #[test]
    fn remove_waiting_for_rescheduling() {
        let mut p = PhysicalPool::new(PoolConfig::uniform(PoolId(0), 1, 1, 4096));
        p.submit(t(0), &spec(1, Priority::LOW, 50));
        p.submit(t(1), &spec(2, Priority::LOW, 10));
        let entry = p.remove_waiting(JobId(2)).expect("waiting");
        assert_eq!(entry.enqueued_at, t(1));
        assert_eq!(p.queue_len(), 0);
        assert!(p.remove_waiting(JobId(2)).is_none());
        assert!(p.check_invariants());
    }

    #[test]
    fn remove_suspended_frees_memory_and_dispatches() {
        // One machine: 2 cores, 4096 MB. Suspended job holds 3000 MB.
        let mut p = PhysicalPool::new(PoolConfig::uniform(PoolId(0), 1, 2, 4096));
        let fat_low = JobSpec::new(JobId(1), t(0), d(100))
            .with_priority(Priority::LOW)
            .with_cores(2)
            .with_memory_mb(3000);
        p.submit(t(0), &fat_low);
        let high = JobSpec::new(JobId(2), t(1), d(50))
            .with_priority(Priority::HIGH)
            .with_cores(1)
            .with_memory_mb(1000);
        assert!(matches!(
            p.submit(t(1), &high),
            SubmitOutcome::Dispatched(_)
        ));
        // A queued job needing 2000 MB cannot start while job 1 sits
        // suspended holding 3000 MB.
        let waiter = JobSpec::new(JobId(3), t(2), d(10))
            .with_priority(Priority::LOW)
            .with_cores(1)
            .with_memory_mb(2000);
        assert_eq!(p.submit(t(2), &waiter), SubmitOutcome::Queued);
        // Reschedule job 1 away: its memory frees, job 3 starts.
        let actions = p.remove_suspended(t(3), JobId(1)).expect("suspended");
        assert!(actions
            .iter()
            .any(|a| matches!(a, PoolAction::Started { job: JobId(3), .. })));
        assert_eq!(p.queue_len(), 0);
        assert!(p.check_invariants());
    }

    #[test]
    fn release_unknown_job_is_none() {
        let mut p = small_pool();
        assert!(p.release(t(0), JobId(77)).is_none());
        assert!(p.remove_suspended(t(0), JobId(77)).is_none());
    }

    #[test]
    fn utilization_tracks_busy_cores() {
        let mut p = small_pool();
        assert_eq!(p.utilization(), 0.0);
        p.submit(t(0), &spec(1, Priority::LOW, 10));
        assert!((p.utilization() - 0.25).abs() < 1e-9);
        let two_core = JobSpec::new(JobId(2), t(0), d(10)).with_cores(2);
        p.submit(t(0), &two_core);
        assert!((p.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn halved_cores_scenario_transform() {
        let cfg = PoolConfig::uniform(PoolId(0), 3, 4, 1024);
        let halved = cfg.halved_cores();
        assert_eq!(halved.total_cores(), 6);
        let single = PoolConfig::uniform(PoolId(0), 1, 1, 1024).halved_cores();
        assert_eq!(single.total_cores(), 1, "cores never drop below 1");
    }

    #[test]
    fn pool_stats_accumulate() {
        let mut p = PhysicalPool::new(PoolConfig::uniform(PoolId(0), 1, 1, 4096));
        p.submit(t(0), &spec(1, Priority::LOW, 50));
        p.submit(t(1), &spec(2, Priority::LOW, 10)); // queues
        p.submit(t(2), &spec(3, Priority::HIGH, 10)); // preempts job 1
        let s = p.stats();
        assert_eq!(s.starts, 2);
        assert_eq!(s.suspensions, 1);
        assert_eq!(s.enqueues, 1);
        assert_eq!(s.peak_queue, 1);
        assert_eq!(s.peak_suspended, 1);
        // High job completes: the suspended job resumes first (no new
        // start); when it finishes, the queued job finally starts.
        p.release(t(12), JobId(3));
        assert_eq!(p.stats().starts, 2);
        p.release(t(62), JobId(1));
        assert_eq!(p.stats().starts, 3);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// One random pool operation.
        #[derive(Debug, Clone)]
        enum Op {
            Submit {
                prio: u8,
                cores: u32,
                mem: u64,
                runtime: u64,
            },
            Release(usize),
            RemoveWaiting(usize),
            RemoveSuspended(usize),
            FailMachine(u32),
            RestoreMachine(u32),
            DrainMachine(u32),
            UndrainMachine(u32),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u8..12, 1u32..3, 64u64..3000, 1u64..300).prop_map(
                    |(prio, cores, mem, runtime)| Op::Submit {
                        prio,
                        cores,
                        mem,
                        runtime
                    }
                ),
                (0usize..200).prop_map(Op::Release),
                (0usize..200).prop_map(Op::RemoveWaiting),
                (0usize..200).prop_map(Op::RemoveSuspended),
                (0u32..4).prop_map(Op::FailMachine),
                (0u32..4).prop_map(Op::RestoreMachine),
                (0u32..4).prop_map(Op::DrainMachine),
                (0u32..4).prop_map(Op::UndrainMachine),
            ]
        }

        /// A pool mixing three capacity classes (so class grouping, bucket
        /// maintenance, and cross-class minimums are all exercised).
        fn heterogeneous_pool() -> PhysicalPool {
            let machines = [(2u32, 4096u64), (4, 8192), (2, 4096), (1, 2048), (4, 8192)]
                .into_iter()
                .enumerate()
                .map(|(i, (c, m))| MachineConfig::new(MachineId(i as u32), c, m))
                .collect();
            PhysicalPool::new(PoolConfig {
                id: PoolId(0),
                machines,
            })
        }

        proptest! {
            /// Differential check for the tentpole index: under arbitrary
            /// submit/release/suspend/fail/restore sequences on a
            /// heterogeneous pool, the indexed first-fit query picks
            /// exactly the machine the seed's reference linear scan picks,
            /// for a sweep of probe footprints after every operation.
            #[test]
            fn prop_indexed_dispatch_matches_reference_scan(
                ops in proptest::collection::vec(arb_op(), 1..120),
            ) {
                let mut pool = heterogeneous_pool();
                let mut next_id = 0u64;
                let mut known: Vec<JobId> = Vec::new();
                let mut now = 0u64;
                let probes = [
                    (1u32, 64u64), (1, 1500), (1, 3000), (1, 6000),
                    (2, 64), (2, 2500), (3, 4000), (4, 8192), (5, 64),
                ];
                for op in ops {
                    now += 1;
                    let t = SimTime::from_minutes(now);
                    match op {
                        Op::Submit { prio, cores, mem, runtime } => {
                            let spec = JobSpec::new(
                                JobId(next_id),
                                t,
                                SimDuration::from_minutes(runtime),
                            )
                            .with_priority(Priority::new(prio))
                            .with_cores(cores)
                            .with_memory_mb(mem);
                            next_id += 1;
                            if !matches!(pool.submit(t, &spec), SubmitOutcome::Ineligible) {
                                known.push(spec.id);
                            }
                        }
                        Op::Release(i) => {
                            if let Some(&job) = known.get(i % known.len().max(1)) {
                                pool.release(t, job);
                            }
                        }
                        Op::RemoveWaiting(i) => {
                            if let Some(&job) = known.get(i % known.len().max(1)) {
                                pool.remove_waiting(job);
                            }
                        }
                        Op::RemoveSuspended(i) => {
                            if let Some(&job) = known.get(i % known.len().max(1)) {
                                pool.remove_suspended(t, job);
                            }
                        }
                        Op::FailMachine(m) => {
                            pool.fail_machine(MachineId(m));
                        }
                        Op::RestoreMachine(m) => {
                            pool.restore_machine(t, MachineId(m));
                        }
                        Op::DrainMachine(m) => {
                            pool.drain_machine(MachineId(m));
                        }
                        Op::UndrainMachine(m) => {
                            pool.undrain_machine(t, MachineId(m));
                        }
                    }
                    for (cores, mem) in probes {
                        let res = Resources { cores, memory_mb: mem };
                        prop_assert_eq!(
                            pool.indexed_first_fit(res),
                            pool.reference_first_fit(res),
                            "index diverged for probe ({}, {}) after {:?}",
                            cores, mem, op
                        );
                    }
                    prop_assert!(pool.check_invariants(), "invariants violated after {op:?}");
                }
            }

            /// The pool's internal indexes and counters stay consistent
            /// under arbitrary operation sequences, and every action it
            /// reports references a job it actually knows about.
            #[test]
            fn prop_pool_invariants_under_random_ops(
                ops in proptest::collection::vec(arb_op(), 1..120),
            ) {
                let mut pool = PhysicalPool::new(PoolConfig::uniform(PoolId(0), 4, 2, 4096));
                let mut next_id = 0u64;
                let mut known: Vec<JobId> = Vec::new();
                let mut now = 0u64;
                for op in ops {
                    now += 1;
                    let t = SimTime::from_minutes(now);
                    match op {
                        Op::Submit { prio, cores, mem, runtime } => {
                            let spec = JobSpec::new(
                                JobId(next_id),
                                t,
                                SimDuration::from_minutes(runtime),
                            )
                            .with_priority(Priority::new(prio))
                            .with_cores(cores)
                            .with_memory_mb(mem);
                            next_id += 1;
                            match pool.submit(t, &spec) {
                                SubmitOutcome::Dispatched(actions) => {
                                    let started_self = actions.iter().any(|a| {
                                        matches!(a, PoolAction::Started { job, .. } if *job == spec.id)
                                    });
                                    prop_assert!(started_self);
                                    known.push(spec.id);
                                }
                                SubmitOutcome::Queued => known.push(spec.id),
                                SubmitOutcome::Ineligible => {}
                            }
                        }
                        Op::Release(i) => {
                            if let Some(&job) = known.get(i % known.len().max(1)) {
                                pool.release(t, job); // None if not running: fine
                            }
                        }
                        Op::RemoveWaiting(i) => {
                            if let Some(&job) = known.get(i % known.len().max(1)) {
                                pool.remove_waiting(job);
                            }
                        }
                        Op::RemoveSuspended(i) => {
                            if let Some(&job) = known.get(i % known.len().max(1)) {
                                pool.remove_suspended(t, job);
                            }
                        }
                        Op::FailMachine(m) => {
                            pool.fail_machine(MachineId(m));
                        }
                        Op::RestoreMachine(m) => {
                            pool.restore_machine(t, MachineId(m));
                        }
                        Op::DrainMachine(m) => {
                            pool.drain_machine(MachineId(m));
                        }
                        Op::UndrainMachine(m) => {
                            pool.undrain_machine(t, MachineId(m));
                        }
                    }
                    prop_assert!(pool.check_invariants(), "invariants violated after {op:?}");
                    prop_assert!(pool.busy_cores() <= pool.total_cores());
                    prop_assert!(pool.utilization() <= 1.0 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn draining_machine_takes_no_new_work_but_residents_finish() {
        let mut p = small_pool();
        p.submit(t(0), &spec(1, Priority::LOW, 100)); // lands on machine 0
        assert!(p.drain_machine(MachineId(0)));
        assert_eq!(p.draining_machine_count(), 1);
        // Fresh submits skip the draining machine.
        let SubmitOutcome::Dispatched(a) = p.submit(t(1), &spec(2, Priority::LOW, 10)) else {
            panic!("machine 1 is free")
        };
        assert!(matches!(
            a[0],
            PoolAction::Started {
                machine: MachineId(1),
                ..
            }
        ));
        // The resident keeps running and completes in place.
        assert_eq!(p.running_machine(JobId(1)), Some(MachineId(0)));
        p.release(t(100), JobId(1)).expect("still running");
        // Effective capacity excludes the drained machine (2 of 4 cores).
        assert_eq!(p.effective_cores_milli(), 2 * 1000);
        assert!(p.check_invariants());
        // Undrain re-admits work.
        p.undrain_machine(t(101), MachineId(0)).expect("draining");
        assert_eq!(p.effective_cores_milli(), 4 * 1000);
        assert_eq!(p.draining_machine_count(), 0);
        assert!(p.check_invariants());
    }

    #[test]
    fn undrain_dispatches_queued_work() {
        let mut p = PhysicalPool::new(PoolConfig::uniform(PoolId(0), 1, 1, 4096));
        assert!(p.drain_machine(MachineId(0)));
        assert_eq!(
            p.submit(t(0), &spec(1, Priority::LOW, 10)),
            SubmitOutcome::Queued,
            "draining pool queues instead of dispatching"
        );
        let actions = p.undrain_machine(t(5), MachineId(0)).expect("draining");
        assert!(matches!(
            actions[0],
            PoolAction::Started { job: JobId(1), .. }
        ));
        assert!(p.check_invariants());
    }

    #[test]
    fn health_weights_effective_capacity() {
        let mut p = small_pool();
        assert_eq!(p.effective_cores_milli(), 4 * 1000);
        p.set_machine_health(MachineId(0), 500);
        assert_eq!(p.effective_cores_milli(), 2 * 500 + 2 * 1000);
        // Failing the unhealthy machine removes its weighted share.
        p.fail_machine(MachineId(0)).expect("up");
        assert_eq!(p.effective_cores_milli(), 2 * 1000);
        p.restore_machine(t(1), MachineId(0)).expect("down");
        assert_eq!(p.effective_cores_milli(), 2 * 500 + 2 * 1000);
        assert!(p.check_invariants());
    }

    #[test]
    fn drain_survives_fail_restore_cycle() {
        let mut p = small_pool();
        assert!(p.drain_machine(MachineId(0)));
        p.fail_machine(MachineId(0)).expect("up");
        p.restore_machine(t(1), MachineId(0)).expect("down");
        assert_eq!(
            p.draining_machine_count(),
            1,
            "a fault restore must not end a cordon"
        );
        assert_eq!(p.effective_cores_milli(), 2 * 1000);
        assert!(p.check_invariants());
        p.undrain_machine(t(2), MachineId(0)).expect("draining");
        assert_eq!(p.effective_cores_milli(), 4 * 1000);
        assert!(p.check_invariants());
    }

    #[test]
    fn wait_queue_orders_priority_then_fifo() {
        let mut p = PhysicalPool::new(PoolConfig::uniform(PoolId(0), 1, 1, 1024));
        p.submit(t(0), &spec(1, Priority::HIGH, 1000)); // occupies the core
        p.submit(t(1), &spec(2, Priority::LOW, 10));
        p.submit(t(2), &spec(3, Priority::HIGH, 10));
        p.submit(t(3), &spec(4, Priority::LOW, 10));
        p.submit(t(4), &spec(5, Priority::HIGH, 10));
        let order: Vec<JobId> = p.waiting_jobs().map(|e| e.job).collect();
        assert_eq!(order, vec![JobId(3), JobId(5), JobId(2), JobId(4)]);
    }
}
