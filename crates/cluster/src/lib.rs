//! # netbatch-cluster
//!
//! The NetBatch cluster model for the Middleware 2010 dynamic-rescheduling
//! reproduction: typed ids, priorities with host-level preemption, job
//! lifecycle accounting, machines, physical pools with wait queues, and
//! snapshot views for load-aware policies.
//!
//! This crate is **pure mechanism**: it implements the dispatch and
//! preemption protocol of the paper's §2.1–2.2 (first-eligible-machine
//! dispatch, suspend-in-place preemption, resume-on-free, bounce-back when
//! ineligible) but contains no scheduling *policy*. Initial schedulers and
//! rescheduling strategies live in `netbatch-core` and drive pools through
//! the [`pool::PhysicalPool`] API.
//!
//! ## Example
//!
//! ```
//! use netbatch_cluster::job::JobSpec;
//! use netbatch_cluster::pool::{PhysicalPool, PoolConfig, SubmitOutcome};
//! use netbatch_cluster::priority::Priority;
//! use netbatch_sim_engine::time::{SimDuration, SimTime};
//!
//! let mut pool = PhysicalPool::new(PoolConfig::uniform(0.into(), 1, 1, 4096));
//! let low = JobSpec::new(1.into(), SimTime::ZERO, SimDuration::from_hours(2));
//! assert!(matches!(pool.submit(SimTime::ZERO, &low), SubmitOutcome::Dispatched(_)));
//!
//! // A high-priority arrival preempts the low-priority job in place.
//! let high = JobSpec::new(2.into(), SimTime::ZERO, SimDuration::from_hours(1))
//!     .with_priority(Priority::HIGH);
//! let out = pool.submit(SimTime::from_minutes(10), &high);
//! assert!(matches!(out, SubmitOutcome::Dispatched(_)));
//! assert_eq!(pool.suspended_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod ids;
pub mod index;
pub mod job;
pub mod machine;
pub mod pool;
pub mod priority;
pub mod snapshot;

pub use ids::{JobId, MachineId, PoolId, TaskId};
pub use index::{AvailabilityIndex, MinMultiset};
pub use job::{JobPhase, JobRecord, JobSpec, PhaseError, PoolAffinity, Resources};
pub use machine::{Machine, MachineConfig};
pub use pool::{PhysicalPool, PoolAction, PoolConfig, PoolStats, SubmitOutcome, WaitEntry};
pub use priority::Priority;
pub use snapshot::{ClusterSnapshot, PoolSnapshot};
