//! Criterion benchmarks of whole-scenario simulation throughput, one per
//! evaluation regime. These measure the reproduction substrate itself
//! (events/second of the ASCA-equivalent), not the paper's metrics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use netbatch_cluster::job::{JobSpec, Resources};
use netbatch_cluster::pool::PhysicalPool;
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_sim_engine::time::{SimDuration, SimTime};
use netbatch_workload::scenarios::{ScenarioParams, SiteSpec};

const BENCH_SCALE: f64 = 0.02;

fn bench_week_scenarios(c: &mut Criterion) {
    let params = ScenarioParams::normal_week(BENCH_SCALE);
    let normal_site = params.build_site();
    let high_site = normal_site.halved();
    let trace = params.generate_trace();
    let mut group = c.benchmark_group("week_simulation");
    group.sample_size(10);
    for strategy in [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
    ] {
        group.bench_with_input(
            BenchmarkId::new("normal_load", strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    Experiment::new(
                        normal_site.clone(),
                        trace.clone(),
                        SimConfig::new(InitialKind::RoundRobin, strategy),
                    )
                    .run()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("high_load", strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    Experiment::new(
                        high_site.clone(),
                        trace.clone(),
                        SimConfig::new(InitialKind::RoundRobin, strategy),
                    )
                    .run()
                })
            },
        );
    }
    group.finish();
}

fn bench_sampling_overhead(c: &mut Criterion) {
    let params = ScenarioParams::normal_week(BENCH_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.bench_function("without_sampling", |b| {
        b.iter(|| {
            Experiment::new(
                site.clone(),
                trace.clone(),
                SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes),
            )
            .run()
        })
    });
    group.bench_function("with_per_minute_sampling", |b| {
        b.iter(|| {
            Experiment::new(
                site.clone(),
                trace.clone(),
                SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes).with_sampling(),
            )
            .run()
        })
    });
    group.finish();
}

/// The dispatch decision in isolation: the indexed first-fit query against
/// the retained reference linear scan, on the paper-scale large pool
/// (680 machines at scale 1.0) packed to ~96% occupancy so free capacity
/// sits at the tail of the scan order — the regime the index targets.
fn bench_dispatch_hot_path(c: &mut Criterion) {
    let config = SiteSpec::paper_site(1.0).pools.swap_remove(0);
    let mut pool = PhysicalPool::new(config);
    let mut id: u64 = 0;
    // Pack with 2-core jobs until only the last few machines have headroom.
    for _ in 0..1500 {
        id += 1;
        let spec = JobSpec::new(id.into(), SimTime::ZERO, SimDuration::from_minutes(60))
            .with_cores(2)
            .with_memory_mb(4_096);
        pool.submit(SimTime::ZERO, &spec);
    }
    // A small ask that only tail machines can absorb, and a large ask that
    // nothing can (the linear scan's worst case: it must visit every machine).
    let tail_fit = Resources {
        cores: 2,
        memory_mb: 4_096,
    };
    let no_fit = Resources {
        cores: 8,
        memory_mb: 32_768,
    };
    let mut group = c.benchmark_group("dispatch_hot_path");
    for (label, res) in [("tail_fit", tail_fit), ("no_fit", no_fit)] {
        group.bench_function(BenchmarkId::new("indexed", label), |b| {
            b.iter(|| pool.indexed_first_fit(black_box(res)))
        });
        group.bench_function(BenchmarkId::new("reference_scan", label), |b| {
            b.iter(|| pool.reference_first_fit(black_box(res)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_week_scenarios,
    bench_sampling_overhead,
    bench_dispatch_hot_path
);
criterion_main!(benches);
