//! Criterion benchmarks of whole-scenario simulation throughput, one per
//! evaluation regime. These measure the reproduction substrate itself
//! (events/second of the ASCA-equivalent), not the paper's metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_workload::scenarios::ScenarioParams;

const BENCH_SCALE: f64 = 0.02;

fn bench_week_scenarios(c: &mut Criterion) {
    let params = ScenarioParams::normal_week(BENCH_SCALE);
    let normal_site = params.build_site();
    let high_site = normal_site.halved();
    let trace = params.generate_trace();
    let mut group = c.benchmark_group("week_simulation");
    group.sample_size(10);
    for strategy in [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
    ] {
        group.bench_with_input(
            BenchmarkId::new("normal_load", strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    Experiment::new(
                        normal_site.clone(),
                        trace.clone(),
                        SimConfig::new(InitialKind::RoundRobin, strategy),
                    )
                    .run()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("high_load", strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    Experiment::new(
                        high_site.clone(),
                        trace.clone(),
                        SimConfig::new(InitialKind::RoundRobin, strategy),
                    )
                    .run()
                })
            },
        );
    }
    group.finish();
}

fn bench_sampling_overhead(c: &mut Criterion) {
    let params = ScenarioParams::normal_week(BENCH_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    group.bench_function("without_sampling", |b| {
        b.iter(|| {
            Experiment::new(
                site.clone(),
                trace.clone(),
                SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes),
            )
            .run()
        })
    });
    group.bench_function("with_per_minute_sampling", |b| {
        b.iter(|| {
            Experiment::new(
                site.clone(),
                trace.clone(),
                SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes).with_sampling(),
            )
            .run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_week_scenarios, bench_sampling_overhead);
criterion_main!(benches);
