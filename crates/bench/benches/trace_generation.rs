//! Benchmarks of synthetic trace generation and trace I/O — the workload
//! substrate standing in for the proprietary NetBatch traces.

use criterion::{criterion_group, criterion_main, Criterion};
use netbatch_workload::io::{read_csv, write_csv};
use netbatch_workload::scenarios::ScenarioParams;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("normal_week_2pct", |b| {
        let params = ScenarioParams::normal_week(0.02);
        b.iter(|| params.generate_trace())
    });
    group.bench_function("high_suspension_week_2pct", |b| {
        let params = ScenarioParams::high_suspension_week(0.02);
        b.iter(|| params.generate_trace())
    });
    group.finish();
}

fn bench_trace_io(c: &mut Criterion) {
    let trace = ScenarioParams::normal_week(0.02).generate_trace();
    let mut buf = Vec::new();
    write_csv(&mut buf, &trace).expect("serialize");
    let mut group = c.benchmark_group("trace_io");
    group.bench_function("write_csv", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            write_csv(&mut out, &trace).expect("serialize");
            out.len()
        })
    });
    group.bench_function("read_csv", |b| {
        b.iter(|| read_csv(buf.as_slice()).expect("parse").len())
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_trace_io);
criterion_main!(benches);
