//! Criterion benchmarks of the hot-path overhaul: the hierarchical
//! timer-wheel event queue against the reference binary heap, both as a
//! queue kernel (schedule/pop churn shaped like simulator traffic) and
//! end-to-end (a whole week cell run on each backend). Throughput is
//! reported in events/second so regressions read directly against
//! `BENCH_hotpath.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{SimConfig, Simulator};
use netbatch_sim_engine::queue::EventQueue;
use netbatch_sim_engine::rng::DetRng;
use netbatch_sim_engine::time::SimTime;
use netbatch_workload::scenarios::ScenarioParams;

const BENCH_SCALE: f64 = 0.02;

/// Queue kernel under simulator-shaped traffic: a rolling horizon of
/// mostly near-future timers with occasional far ones, popped as time
/// advances — the pattern the wheel's level routing is built for.
fn bench_queue_kernel(c: &mut Criterion) {
    const OPS: u64 = 20_000;
    let mut group = c.benchmark_group("hotpath_queue_kernel");
    group.throughput(Throughput::Elements(OPS));
    for (label, reference) in [("timer_wheel", false), ("reference_heap", true)] {
        group.bench_with_input(
            BenchmarkId::new("rolling_horizon", label),
            &reference,
            |b, &reference| {
                let mut rng = DetRng::from_seed_u64(7);
                b.iter(|| {
                    let mut q = if reference {
                        EventQueue::with_reference_heap()
                    } else {
                        EventQueue::with_capacity(4096)
                    };
                    let mut now = 0u64;
                    let mut acc = 0u64;
                    for i in 0..OPS {
                        // ~90% of simulator timers land within the hour;
                        // the rest are wait checks and lease-like timers
                        // reaching days out.
                        let delta = if rng.next_below(10) == 0 {
                            rng.next_below(10_000)
                        } else {
                            rng.next_below(60)
                        };
                        q.schedule(SimTime::from_minutes(now + delta), i);
                        if i % 2 == 0 {
                            if let Some((t, v)) = q.pop() {
                                now = t.as_minutes();
                                acc = acc.wrapping_add(v);
                            }
                        }
                    }
                    while let Some((_, v)) = q.pop() {
                        acc = acc.wrapping_add(v);
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

/// End-to-end week cell on each queue backend: the tentpole's whole
/// vertical (wheel + zero-allocation dispatch) against the reference
/// heap with the same dispatch loop.
fn bench_end_to_end(c: &mut Criterion) {
    let params = ScenarioParams::normal_week(BENCH_SCALE);
    let site = params.build_site();
    let trace = params.generate_trace();
    // Event count is deterministic per cell; measure it once so Criterion
    // can report events/second.
    let events = {
        let config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
        let sim = Simulator::new(&site, trace.to_specs(), config);
        sim.run_to_completion().counters.events
    };
    let mut group = c.benchmark_group("hotpath_end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    for (label, reference) in [("timer_wheel", false), ("reference_heap", true)] {
        group.bench_with_input(
            BenchmarkId::new("rswu_normal_week", label),
            &reference,
            |b, &reference| {
                b.iter(|| {
                    let mut config =
                        SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
                    config.use_reference_queue = reference;
                    let sim = Simulator::new(&site, trace.to_specs(), config);
                    sim.run_to_completion().counters.events
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queue_kernel, bench_end_to_end);
criterion_main!(benches);
