//! Microbenchmarks of the discrete-event kernel: queue scheduling, popping
//! and cancellation — the inner loop every simulated minute rides on.

use criterion::{criterion_group, criterion_main, Criterion};
use netbatch_sim_engine::queue::EventQueue;
use netbatch_sim_engine::rng::DetRng;
use netbatch_sim_engine::time::SimTime;

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        let mut rng = DetRng::from_seed_u64(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_minutes(rng.next_below(100_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    group.bench_function("schedule_cancel_half_10k", |b| {
        let mut rng = DetRng::from_seed_u64(2);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let mut ids = Vec::with_capacity(10_000);
            for i in 0..10_000u64 {
                ids.push(q.schedule(SimTime::from_minutes(rng.next_below(100_000)), i));
            }
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut n = 0u32;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("detrng_next_u64_1k", |b| {
        let mut rng = DetRng::from_seed_u64(3);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64_inner());
            }
            acc
        })
    });
}

criterion_group!(benches, bench_schedule_pop, bench_rng);
criterion_main!(benches);
