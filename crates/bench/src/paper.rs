//! The paper's published numbers, transcribed from Zhang et al.,
//! *"On the Feasibility of Dynamic Rescheduling on the Intel Distributed
//! Computing Platform"*, Middleware 2010 — Tables 1–5, Figure 2's summary
//! statistics and Figure 3's waste decomposition.
//!
//! Every harness binary prints its measured rows side by side with these,
//! so paper-vs-measured comparisons never require opening the PDF.

use netbatch_core::policy::StrategyKind;

/// One row of a paper table: the five published metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Strategy of this row.
    pub strategy: StrategyKind,
    /// Suspend rate as a fraction (e.g. 0.0114 for 1.14%).
    pub suspend_rate: f64,
    /// AvgCT over suspended jobs (minutes).
    pub avg_ct_suspended: f64,
    /// AvgCT over all jobs (minutes).
    pub avg_ct_all: f64,
    /// AvgST (minutes).
    pub avg_st: f64,
    /// AvgWCT (minutes).
    pub avg_wct: f64,
}

const fn row(
    strategy: StrategyKind,
    suspend_rate: f64,
    avg_ct_suspended: f64,
    avg_ct_all: f64,
    avg_st: f64,
    avg_wct: f64,
) -> PaperRow {
    PaperRow {
        strategy,
        suspend_rate,
        avg_ct_suspended,
        avg_ct_all,
        avg_st,
        avg_wct,
    }
}

/// Table 1: performance under the normal-load scenario (round-robin
/// initial scheduler).
pub const TABLE_1: [PaperRow; 3] = [
    row(StrategyKind::NoRes, 0.0114, 2498.7, 569.8, 1189.1, 31.0),
    row(StrategyKind::ResSusUtil, 0.0156, 1265.4, 560.0, 82.2, 20.8),
    row(StrategyKind::ResSusRand, 0.0152, 7580.7, 638.7, 80.7, 91.9),
];

/// Table 2: performance under the high-load scenario (cores halved,
/// round-robin initial scheduler).
pub const TABLE_2: [PaperRow; 3] = [
    row(StrategyKind::NoRes, 0.0126, 5846.1, 988.7, 4402.4, 450.1),
    row(StrategyKind::ResSusUtil, 0.0183, 1475.1, 962.2, 86.2, 423.9),
    row(
        StrategyKind::ResSusRand,
        0.0160,
        6485.0,
        1180.0,
        73.2,
        636.3,
    ),
];

/// Table 3: suspended-job rescheduling with the utilization-based initial
/// scheduler (high load).
pub const TABLE_3: [PaperRow; 3] = [
    row(StrategyKind::NoRes, 0.0150, 5936.0, 994.2, 4916.0, 456.6),
    row(StrategyKind::ResSusUtil, 0.0172, 1466.9, 946.2, 84.5, 407.6),
    row(
        StrategyKind::ResSusRand,
        0.0162,
        7979.9,
        1229.9,
        72.3,
        686.8,
    ),
];

/// Table 4: combined suspended + waiting rescheduling, round-robin initial
/// scheduler (high load, 30-minute wait threshold).
pub const TABLE_4: [PaperRow; 3] = [
    row(StrategyKind::NoRes, 0.0126, 5846.1, 988.7, 4402.4, 450.1),
    row(
        StrategyKind::ResSusWaitUtil,
        0.0146,
        1224.3,
        951.4,
        72.7,
        414.2,
    ),
    row(
        StrategyKind::ResSusWaitRand,
        0.0150,
        1417.0,
        954.7,
        62.3,
        417.6,
    ),
];

/// Table 5: combined rescheduling with the utilization-based initial
/// scheduler (high load).
pub const TABLE_5: [PaperRow; 3] = [
    row(StrategyKind::NoRes, 0.0150, 5936.0, 994.2, 4916.0, 456.6),
    row(
        StrategyKind::ResSusWaitUtil,
        0.0174,
        1467.2,
        937.9,
        84.5,
        402.0,
    ),
    row(
        StrategyKind::ResSusWaitRand,
        0.0171,
        1603.1,
        935.7,
        100.6,
        399.7,
    ),
];

/// Figure 2's published suspension-time distribution summary (minutes,
/// over the year trace).
pub mod figure2 {
    /// Median suspension time: 437 minutes (7.3 hours).
    pub const MEDIAN_MIN: f64 = 437.0;
    /// Mean suspension time: 905 minutes (15 hours).
    pub const MEAN_MIN: f64 = 905.0;
    /// 20% of suspended jobs are suspended for more than 1100 minutes.
    pub const FRACTION_ABOVE_1100: f64 = 0.20;
    /// The threshold for the 20% statistic.
    pub const TAIL_THRESHOLD_MIN: f64 = 1100.0;
}

/// Figure 3's approximate waste decomposition under normal load (minutes;
/// read off the bar chart, totals anchored to Table 1's AvgWCT column).
pub mod figure3 {
    /// `(strategy, wait, suspend, resched)` approximate components.
    pub const COMPONENTS: [(&str, f64, f64, f64); 3] = [
        ("NoRes", 10.0, 21.0, 0.0),
        ("ResSusUtil", 12.0, 2.0, 6.8),
        ("ResSusRand", 80.0, 2.0, 9.9),
    ];
}

/// Figure 4's published system-level aggregates over the year trace.
pub mod figure4 {
    /// "The overall system utilization averages around 40%."
    pub const MEAN_UTILIZATION_PCT: f64 = 40.0;
    /// "...and is typically in the range of 20%-60%."
    pub const TYPICAL_UTILIZATION_BAND_PCT: (f64, f64) = (20.0, 60.0);
}

/// The §3.2.1 high-suspension scenario's published claims.
pub mod high_suspension {
    /// "a more significant reduction of 7% in AvgCT for all jobs".
    pub const CT_ALL_REDUCTION: f64 = 0.07;
    /// "an equally high reduction of 44% in AvgCT of suspended jobs".
    pub const CT_SUSPENDED_REDUCTION: f64 = 0.44;
}

/// Headline claims from the abstract/conclusion, used by the shape checks.
pub mod claims {
    /// Rescheduling suspended jobs cuts their AvgCT by ~50% (normal load).
    pub const NORMAL_CT_SUSPENDED_REDUCTION: f64 = 0.50;
    /// ...and reduces system waste by more than 33%.
    pub const NORMAL_WCT_REDUCTION: f64 = 0.33;
    /// Under high load the suspended-job AvgCT reduction reaches 75%.
    pub const HIGH_CT_SUSPENDED_REDUCTION: f64 = 0.75;
    /// With waiting-job rescheduling it reaches 79%.
    pub const HIGH_WAIT_CT_SUSPENDED_REDUCTION: f64 = 0.79;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_internally_consistent() {
        // NoRes rows of tables 2 and 4 are the same experiment.
        assert_eq!(TABLE_2[0], TABLE_4[0]);
        // NoRes rows of tables 3 and 5 are the same experiment.
        assert_eq!(TABLE_3[0], TABLE_5[0]);
        // Every table starts with the NoRes baseline.
        for t in [&TABLE_1, &TABLE_2, &TABLE_3, &TABLE_4, &TABLE_5] {
            assert_eq!(t[0].strategy, StrategyKind::NoRes);
        }
    }

    #[test]
    fn headline_reductions_match_tables() {
        // 50% CT reduction for suspended jobs at normal load.
        let r = 1.0 - TABLE_1[1].avg_ct_suspended / TABLE_1[0].avg_ct_suspended;
        assert!((r - claims::NORMAL_CT_SUSPENDED_REDUCTION).abs() < 0.02);
        // 33% waste reduction at normal load.
        // The paper rounds 32.9% up to "more than 33%".
        let w = 1.0 - TABLE_1[1].avg_wct / TABLE_1[0].avg_wct;
        assert!(w >= claims::NORMAL_WCT_REDUCTION - 0.01);
        // 75% at high load.
        let h = 1.0 - TABLE_2[1].avg_ct_suspended / TABLE_2[0].avg_ct_suspended;
        assert!((h - claims::HIGH_CT_SUSPENDED_REDUCTION).abs() < 0.01);
        // 79% with wait rescheduling.
        let hw = 1.0 - TABLE_4[1].avg_ct_suspended / TABLE_4[0].avg_ct_suspended;
        assert!((hw - claims::HIGH_WAIT_CT_SUSPENDED_REDUCTION).abs() < 0.01);
    }

    #[test]
    fn figure3_totals_roughly_match_table1_wct() {
        for (i, (_, wait, susp, resched)) in figure3::COMPONENTS.iter().enumerate() {
            let total = wait + susp + resched;
            let table = TABLE_1[i].avg_wct;
            assert!(
                (total - table).abs() / table < 0.15,
                "figure 3 components should sum near table 1 AvgWCT"
            );
        }
    }
}
