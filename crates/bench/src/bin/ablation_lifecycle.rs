//! Lifecycle ablation (extension): health-aware scheduling vs a
//! health-blind baseline under increasing lifecycle churn. Both runs in
//! every tier see the *same* maintenance drains, rolling-update waves,
//! health cordons and correlated stochastic faults; the only difference
//! is whether the scheduler reads the health scores (health-weighted
//! placement + proactive evacuation off draining machines) or ignores
//! them (work rides draining machines until the kill evicts it). CI
//! gates the heavy-tier delta via `tests/lifecycle.rs`; this sweep
//! produces the EXPERIMENTS.md degradation table.

use netbatch_bench::runner::{build_scenario, scale_from_env, Load};
use netbatch_core::experiment::Experiment;
use netbatch_core::faults::{FaultModel, LifecycleModel, ResiliencePolicy};
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_sim_engine::time::SimDuration;

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::Normal, scale);

    // A week of simulated time plus one repair window of slack, same as
    // the chaos ablation.
    let horizon = SimDuration::from_days(7) + SimDuration::from_hours(12);
    let mttr = SimDuration::from_hours(4);

    // Each tier pairs a fault model with a lifecycle model sharing the
    // same flaky fraction: the probes that depress a machine's health
    // score are correlated with the failures that punish scheduling onto
    // it, so health is a usable predictor, not decoration.
    // Tiers scale the *flaky cohort* (fraction and failure acceleration)
    // and the lifecycle churn, while the base fleet stays reliable: the
    // degradation health-aware scheduling can dodge is the predictable
    // kind — flappy machines and announced drains — not uniform chaos.
    let tiers: [(&str, Option<(FaultModel, LifecycleModel)>); 4] = [
        ("none", None),
        (
            "light",
            Some((
                FaultModel::new(SimDuration::from_hours(336), mttr, horizon).with_flaky(0.10, 16),
                LifecycleModel::new(horizon)
                    .with_maintenance(SimDuration::from_hours(72), SimDuration::from_hours(2))
                    .with_flaky(0.10, 16),
            )),
        ),
        (
            "medium",
            Some((
                FaultModel::new(SimDuration::from_hours(168), mttr, horizon).with_flaky(0.10, 32),
                LifecycleModel::standard(horizon).with_flaky(0.10, 32),
            )),
        ),
        (
            "heavy",
            Some((
                FaultModel::new(SimDuration::from_hours(96), mttr, horizon).with_flaky(0.15, 64),
                LifecycleModel::new(horizon)
                    .with_drain_lead(SimDuration::from_minutes(120))
                    .with_maintenance(SimDuration::from_hours(24), SimDuration::from_hours(3))
                    .with_rolling(2, 0.5, SimDuration::from_hours(2))
                    .with_cordon(600, SimDuration::from_hours(13))
                    .with_flaky(0.15, 64),
            )),
        ),
    ];

    println!("Lifecycle ablation: health-aware vs health-blind | normal load | scale {scale}");
    println!(
        "{:<8} {:>8} {:>12} {:>10} {:>8} {:>12} {:>9} {:>10}",
        "tier",
        "policy",
        "evacuations",
        "evictions",
        "retries",
        "AvgCT (all)",
        "AvgWCT",
        "unrunnable"
    );
    for (tier, models) in &tiers {
        for aware in [false, true] {
            let mut config =
                SimConfig::new(InitialKind::UtilizationBased, StrategyKind::ResSusWaitUtil);
            config.restart_overhead = SimDuration::from_minutes(10);
            if let Some((faults, lifecycle)) = models {
                config.fault_model = Some(faults.clone());
                config.lifecycle = Some(lifecycle.clone());
            }
            config.health_aware = aware;
            config.resilience = if aware {
                ResiliencePolicy::hardened().with_evacuation()
            } else {
                ResiliencePolicy::hardened()
            };
            let r = Experiment::new(site.clone(), trace.clone(), config).run();
            // The front-door accessor and the raw counter must agree —
            // the same reconciliation the golden/chaos suites enforce.
            assert_eq!(r.evacuations(), r.counters.evacuations);
            println!(
                "{:<8} {:>8} {:>12} {:>10} {:>8} {:>12.1} {:>9.1} {:>10}",
                tier,
                if aware { "aware" } else { "blind" },
                r.counters.evacuations,
                r.counters.failure_evictions,
                r.counters.retries_scheduled,
                r.avg_ct_all,
                r.avg_wct(),
                r.counters.unrunnable
            );
        }
    }
}
