//! Reproduces **Figure 2**: the CDF of job suspension time over a
//! year-long trace under the production configuration (NoRes, round-robin
//! initial scheduler), printed as a log-x series plus the summary
//! statistics the paper quotes (median 437 min, mean 905 min, 20% above
//! 1100 min).
//!
//! The year trace runs at `NETBATCH_SCALE × YEAR_SCALE_FACTOR` to keep
//! half a million simulated minutes tractable (default overall 0.05).

use netbatch_bench::paper::figure2;
use netbatch_bench::runner::scale_from_env;
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_workload::scenarios::ScenarioParams;

/// The year trace runs at half the table scale by default.
const YEAR_SCALE_FACTOR: f64 = 0.5;

fn main() {
    let scale = scale_from_env() * YEAR_SCALE_FACTOR;
    let params = ScenarioParams::year(scale);
    let site = params.build_site();
    let trace = params.generate_trace();
    println!(
        "Figure 2 | year trace ({} min) | NoRes | scale {scale:.3} | {} jobs | {} cores",
        params.horizon,
        trace.len(),
        site.total_cores()
    );
    let result = Experiment::new(
        site,
        trace,
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes),
    )
    .run();

    let cdf = result.suspension_cdf();
    println!("\nsuspension-time CDF (x = minutes, y = % of suspended jobs ≤ x):");
    for (x, pct) in cdf.log_series(2) {
        let bar = "#".repeat((pct / 2.0).round() as usize);
        println!("{x:>10.0}  {pct:>5.1}%  {bar}");
    }
    let median = cdf.median().unwrap_or(0.0);
    let mean = cdf.mean();
    let above = 1.0 - cdf.at(figure2::TAIL_THRESHOLD_MIN);
    println!("\n                      measured     paper");
    println!(
        "median suspension   {median:>9.0}  {:>9.0}",
        figure2::MEDIAN_MIN
    );
    println!(
        "mean suspension     {mean:>9.0}  {:>9.0}",
        figure2::MEAN_MIN
    );
    println!(
        "fraction > {:.0} min {:>8.1}%  {:>8.1}%",
        figure2::TAIL_THRESHOLD_MIN,
        above * 100.0,
        figure2::FRACTION_ABOVE_1100 * 100.0
    );
    println!("suspended jobs: {}", cdf.len());
}
