//! Ablation (paper §3.2.2 caveat / future work): how does `ResSusUtil`
//! degrade when the utilization signal is stale? The paper notes that an
//! exact utilization-based implementation "can be impractical in reality
//! given the unavoidable propagation latency between different pools in a
//! geographically distributed system" — this sweep quantifies the cost,
//! with `ResSusRand` (which needs no signal at all) as the reference line.

use netbatch_bench::runner::{build_scenario, run_cell, scale_from_env, Load};
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_sim_engine::time::SimDuration;

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!(
        "Staleness ablation | high load | ResSusUtil with aging utilization info | scale {scale}"
    );
    println!(
        "{:<22} {:>12} {:>11} {:>9}",
        "information age", "AvgCT (susp)", "AvgCT (all)", "AvgWCT"
    );
    for minutes in [0u64, 10, 30, 120, 480, 1440] {
        let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
        config.view_staleness = SimDuration::from_minutes(minutes);
        let r = Experiment::new(site.clone(), trace.clone(), config).run();
        println!(
            "{:<22} {:>12.1} {:>11.1} {:>9.1}",
            format!("{minutes} min"),
            r.avg_ct_suspended,
            r.avg_ct_all,
            r.avg_wct()
        );
    }
    let rand = run_cell(
        &site,
        &trace,
        InitialKind::RoundRobin,
        StrategyKind::ResSusRand,
    );
    println!(
        "{:<22} {:>12.1} {:>11.1} {:>9.1}   (needs no signal)",
        "ResSusRand reference",
        rand.avg_ct_suspended,
        rand.avg_ct_all,
        rand.avg_wct()
    );
    let nores = run_cell(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    println!(
        "{:<22} {:>12.1} {:>11.1} {:>9.1}",
        "NoRes reference",
        nores.avg_ct_suspended,
        nores.avg_ct_all,
        nores.avg_wct()
    );
}
