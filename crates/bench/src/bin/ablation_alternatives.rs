//! Ablation (extensions): restart vs. migrate vs. duplicate.
//!
//! The paper chooses restart-based rescheduling over checkpoint/VM
//! migration (§2.3: virtualization costs 10–20% for chip-sim workloads)
//! and defers "job duplication techniques" to future work (§5). This
//! sweep runs all three mechanisms with the same lowest-utilization
//! target selection, under both load regimes, and sweeps the migration
//! cost model to find where migration overtakes restarting.

use netbatch_bench::runner::{build_scenario, scale_from_env, Load};
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{MigrationParams, SimConfig};
use netbatch_metrics::table::Table;
use netbatch_sim_engine::time::SimDuration;

fn main() {
    let scale = scale_from_env();
    for (label, load) in [("normal load", Load::Normal), ("high load", Load::High)] {
        let (site, trace) = build_scenario(load, scale);
        println!("\nRescheduling-mechanism ablation | {label} | scale {scale}");
        let mut table = Table::new([
            "mechanism",
            "AvgCT (susp)",
            "AvgCT (all)",
            "AvgWCT",
            "moves",
        ]);
        for strategy in [
            StrategyKind::NoRes,
            StrategyKind::ResSusUtil,
            StrategyKind::MigrateSusUtil,
            StrategyKind::DupSusUtil,
        ] {
            let r = Experiment::new(
                site.clone(),
                trace.clone(),
                SimConfig::new(InitialKind::RoundRobin, strategy),
            )
            .run();
            let moves = r.counters.restarts_from_suspend
                + r.counters.migrations
                + r.counters.duplicates_launched;
            table.row([
                strategy.name().to_string(),
                format!("{:.0}", r.avg_ct_suspended),
                format!("{:.0}", r.avg_ct_all),
                format!("{:.1}", r.avg_wct()),
                moves.to_string(),
            ]);
        }
        print!("{table}");
    }

    // Where does migration overtake restarting? Sweep the transfer delay
    // (the slowdown stays at the paper's mid-range 15%).
    let (site, trace) = build_scenario(Load::High, scale);
    println!("\nMigration-cost sweep | high load | 15% slowdown");
    println!(
        "{:<14} {:>14} {:>12} {:>9}",
        "delay", "AvgCT (susp)", "AvgCT (all)", "AvgWCT"
    );
    let restart = Experiment::new(
        site.clone(),
        trace.clone(),
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil),
    )
    .run();
    for delay in [0u64, 15, 30, 60, 120, 480] {
        let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::MigrateSusUtil);
        config.migration = MigrationParams {
            delay: SimDuration::from_minutes(delay),
            slowdown_milli: 1150,
        };
        let r = Experiment::new(site.clone(), trace.clone(), config).run();
        println!(
            "{:<14} {:>14.0} {:>12.0} {:>9.1}",
            format!("{delay} min"),
            r.avg_ct_suspended,
            r.avg_ct_all,
            r.avg_wct()
        );
    }
    println!(
        "{:<14} {:>14.0} {:>12.0} {:>9.1}   (restart-based reference)",
        "ResSusUtil",
        restart.avg_ct_suspended,
        restart.avg_ct_all,
        restart.avg_wct()
    );
}
