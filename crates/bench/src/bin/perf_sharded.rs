//! Sharded/streaming-kernel benchmark (v2): weak-scaled pool sweep
//! (20 → 200 pools) and arrival-scale sweep (0.25 → 1.0) comparing the
//! streaming backend against the materialized serial reference, plus a
//! year-window memory sweep, tracked across PRs in `BENCH_sharded.json`.
//!
//! v1 measured the sharded backend, whose coordinator owned the global
//! event queue and merged every event serially; its 200-pool parallel
//! fraction topped out near 0.49. v2 measures the streaming backend
//! (shard-local lazy generation, per-pool queues, coordinator offload —
//! see `netbatch_core::streaming`), where generation and event execution
//! both live in the workers.
//!
//! Figures recorded per cell:
//!
//! - **Measured walls**: materialized serial backend (trace generated
//!   before t=0, generation excluded from its wall) vs streaming at
//!   1/2/4 worker shards (generation *included* — it happens inside the
//!   run), best-of-`ROUNDS`.
//! - **Measured work split + Amdahl projection**: a dedicated 1-shard
//!   run with pipelining disabled alternates coordinator and worker
//!   strictly, so worker busy time cleanly decomposes the wall into
//!   coordinator-serial and worker-parallelizable time.
//!   `parallel_fraction` is `worker_busy / wall` of that run;
//!   `projected_speedup_4_shards` is
//!
//!   ```text
//!   serial_wall / (coord + worker_busy/4 + max(0, wall_x4 - wall_x1))
//!   ```
//!
//!   i.e. perfect 4-way division of the measured worker work, charged
//!   with the full measured 4-shard synchronization overhead as if it
//!   serialized.
//! - **Measured speedup**: `serial_wall / streaming_wall_x4`, reported
//!   alongside the projection. This is a real parallel speedup only
//!   when `host_cores >= 4`; on fewer cores threads interleave and the
//!   figure mostly reflects the streaming kernel's per-event efficiency.
//! - **Peak run memory**: a live-bytes-tracking global allocator records
//!   the peak heap growth across the 1-shard streaming run. Streaming
//!   never materializes the trace, so this stays O(in-flight jobs) —
//!   the year sweep below shows it flat as the horizon grows 180x.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p netbatch-bench --bin perf_sharded
//! cargo run --release -p netbatch-bench --bin perf_sharded -- --check
//! ```
//!
//! `--check` is the CI gate: it asserts the committed headline cell
//! (200 pools, scale 1.0) keeps `parallel_fraction >= 0.75` and projects
//! at least 1.5x at 4 shards, then re-measures a small smoke cell
//! (failing on coordination-overhead or work-split regressions) and a
//! two-horizon memory smoke (failing if peak memory grows with the
//! horizon).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{Backend, SimConfig, SimOutput, Simulator};
use netbatch_core::take_sharded_worker_busy_nanos;
use netbatch_workload::scenarios::PerPoolParams;
use netbatch_workload::trace::Trace;
use netbatch_workload::WorkloadSpec;

/// Tracks live heap bytes and their high-water mark, so a run's peak
/// memory growth is measurable without process-level RSS noise. Counts
/// are relaxed-atomic: cross-thread interleaving can smear the peak by
/// a few allocations, which is noise against the megabytes it gates.
struct PeakAlloc;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn note_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        note_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_dealloc(layout.size());
        note_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

/// Resets the high-water mark to the current live size and returns the
/// baseline, so the next measurement sees only growth from here on.
fn reset_peak() -> u64 {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

/// Peak heap growth since the matching [`reset_peak`], in bytes.
fn peak_since(baseline: u64) -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline)
}

const MIB: f64 = 1024.0 * 1024.0;

/// Best-of rounds per (cell, backend) measurement.
const ROUNDS: usize = 3;

/// Trace window (minutes) for the pool/scale sweeps: two simulated days.
const HORIZON_MIN: u64 = 2 * 24 * 60;

/// The weak-scaled pool sweep (machines and arrivals both ∝ pools).
const POOL_SWEEP: [u16; 4] = [20, 50, 100, 200];

/// The arrival/capacity scale sweep, run on the 200-pool site (scale 1.0
/// is already the last pool-sweep cell).
const SCALE_SWEEP: [f64; 2] = [0.25, 0.5];

/// Shard counts measured per cell.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The year sweep: the 200-pool site at reduced scale, with the horizon
/// growing from two days to a full year while the peak-memory column
/// must stay flat (the streaming tentpole's memory contract).
const YEAR_POOLS: u16 = 200;
const YEAR_SCALE: f64 = 0.05;
const YEAR_SWEEP: [u64; 3] = [2 * 24 * 60, 30 * 24 * 60, 365 * 24 * 60];

/// CI gate: the committed headline projection must stay at or above
/// this — the contract for the 200-pool cell at 4 shards.
const MIN_HEADLINE_PROJECTION: f64 = 1.5;

/// CI gate: the committed headline parallel fraction must stay at or
/// above this — the streaming tentpole's contract for the 200-pool cell
/// (generation and event execution both off the coordinator).
const PARALLEL_FRACTION_FLOOR: f64 = 0.75;

/// CI gate: measured streaming-x2 wall must stay within this factor of
/// the serial wall on the smoke cell. Valid on any core count (on one
/// core it bounds pure coordination overhead); generous because the
/// comparison is lopsided against streaming — the serial wall excludes
/// generation (paid before t=0), the streaming wall includes it, and a
/// 1-core host adds context-switch noise on top. Observed healthy
/// ratios sit at 2.2–2.5x depending on how warm the serial reference
/// happens to run, so the ceiling leaves ~1.3x of genuine regression
/// headroom rather than gating the noise band.
const SMOKE_OVERHEAD_SLACK: f64 = 3.25;

/// CI gate: the smoke cell's parallel work fraction must stay at or
/// above this share of the committed figure — catching changes that
/// quietly move worker work back onto the coordinator.
const SMOKE_FRACTION_RATIO: f64 = 0.75;

/// CI gate: quadrupling the horizon may not grow the streaming run's
/// peak heap by more than this factor. The in-flight working set is
/// horizon-independent once the runtime distribution's steady state is
/// reached; the slack absorbs the heavy tail's slow convergence.
const MEM_FLATNESS_SLACK: f64 = 1.5;

/// Memory-flatness smoke cell: small enough that even the long horizon
/// run stays in seconds. Both measured horizons sit past the wheel's
/// slab warm-up (level-0 slot capacities ratchet toward the max-ever
/// per-minute occupancy over the first tens of thousands of minutes —
/// an extreme-value effect that converges; `--mem-probe` shows the
/// curve). Comparing 1x vs 4x from t=0 would gate the warm-up, not the
/// steady state the flatness contract is about.
const FLAT_POOLS: u16 = 20;
const FLAT_SCALE: f64 = 0.25;
const FLAT_HORIZON: u64 = 2 * 24 * 60;
/// The two compared horizons: 8 and 32 days.
const FLAT_SPAN: [u64; 2] = [4 * FLAT_HORIZON, 16 * FLAT_HORIZON];

/// Host core count, from `available_parallelism` with a `/proc/cpuinfo`
/// fallback (containers with restrictive cgroup masks can make the
/// former fail outright; the benchmark must still report something
/// honest rather than dying).
fn host_cores() -> usize {
    match std::thread::available_parallelism() {
        Ok(n) => n.get(),
        Err(_) => std::fs::read_to_string("/proc/cpuinfo")
            .map(|s| {
                s.lines()
                    .filter(|l| l.starts_with("processor"))
                    .count()
                    .max(1)
            })
            .unwrap_or(1),
    }
}

/// One timed materialized-serial round; returns (events, wall seconds).
/// Trace generation happens before the clock starts (the materialized
/// backends pay it before t=0; its cost shows up in the streaming walls
/// instead, where it belongs).
fn run_serial_round(p: &PerPoolParams, trace: &Trace) -> (u64, f64) {
    let config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    let sim = Simulator::new(&p.build_site(), trace.to_specs(), config);
    let start = Instant::now();
    let out = sim.run_to_completion();
    (out.counters.events, start.elapsed().as_secs_f64())
}

/// One timed streaming round; returns the output, wall seconds, worker
/// busy seconds and the run's peak heap growth in bytes.
fn run_streaming_round(
    p: &PerPoolParams,
    workload: &WorkloadSpec,
    shards: usize,
    pipeline: bool,
) -> (SimOutput, f64, f64, u64) {
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.backend = Backend::Sharded { shards };
    config.stream_pipeline = pipeline;
    let sim = Simulator::new(&p.build_site(), Vec::new(), config);
    take_sharded_worker_busy_nanos();
    let baseline = reset_peak();
    let start = Instant::now();
    let out = sim.run_streaming(workload, p.seed);
    let wall = start.elapsed().as_secs_f64();
    let peak = peak_since(baseline);
    let busy = take_sharded_worker_busy_nanos() as f64 * 1e-9;
    (out, wall, busy, peak)
}

struct Cell {
    pools: u16,
    scale: f64,
    jobs: u64,
    events: u64,
    serial_wall_ms: f64,
    /// (shards, wall_ms) per measured shard count, pipelining on.
    streaming_walls: Vec<(usize, f64)>,
    /// Worker busy time in the unpipelined 1-shard run: the total
    /// parallelizable work (generation + submit/complete execution).
    worker_busy_ms: f64,
    /// Unpipelined 1-shard wall minus worker busy: coordinator serial time.
    coord_ms: f64,
    /// worker_busy / wall of the unpipelined 1-shard run.
    parallel_fraction: f64,
    /// serial_wall / (coord + busy/4 + sync overhead), see module docs.
    projected_speedup_4: f64,
    /// serial_wall / streaming wall_x4 — real parallelism only when
    /// host_cores >= 4.
    measured_speedup_4: f64,
    /// Peak heap growth across the 1-shard streaming run (MiB).
    peak_run_mib: f64,
}

fn measure_cell(pools: u16, scale: f64) -> Cell {
    let p = PerPoolParams::new(pools, scale, HORIZON_MIN);
    let workload = p.build_workload();

    // Materialized serial reference.
    let trace = workload.generate(p.seed);
    let jobs = trace.len() as u64;
    let mut events = 0u64;
    let mut serial_wall = f64::INFINITY;
    for _ in 0..ROUNDS {
        let (ev, wall) = run_serial_round(&p, &trace);
        events = ev;
        serial_wall = serial_wall.min(wall);
    }
    drop(trace);

    // Work split: 1 shard, pipelining off, so coordinator and worker
    // alternate strictly and busy time decomposes the wall cleanly. The
    // fastest round's split is taken whole (the work is deterministic;
    // only the clock varies).
    let mut split_wall = f64::INFINITY;
    let mut busy = 0.0f64;
    for _ in 0..ROUNDS {
        let (out, wall, b, _) = run_streaming_round(&p, &workload, 1, false);
        assert_eq!(out.counters.events, events, "backends disagree on events");
        assert_eq!(
            out.counters.completed + out.counters.unrunnable,
            jobs,
            "streaming generated a different trace"
        );
        if wall < split_wall {
            split_wall = wall;
            busy = b;
        }
    }
    let coord = (split_wall - busy).max(0.0);
    let parallel_fraction = busy / split_wall.max(1e-9);

    // Walls with pipelining on (the production configuration).
    let mut streaming_walls = Vec::new();
    let mut wall_x1 = f64::NAN;
    let mut wall_x4 = f64::NAN;
    let mut peak_bytes = 0u64;
    for shards in SHARD_COUNTS {
        let mut best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let (out, wall, _, peak) = run_streaming_round(&p, &workload, shards, true);
            assert_eq!(out.counters.events, events, "backends disagree on events");
            if wall < best {
                best = wall;
                if shards == 1 {
                    peak_bytes = peak;
                }
            }
        }
        streaming_walls.push((shards, best * 1e3));
        if shards == 1 {
            wall_x1 = best;
        }
        if shards == 4 {
            wall_x4 = best;
        }
    }
    let sync_overhead = (wall_x4 - wall_x1).max(0.0);
    let projected_speedup_4 = serial_wall / (coord + busy / 4.0 + sync_overhead).max(1e-9);
    Cell {
        pools,
        scale,
        jobs,
        events,
        serial_wall_ms: serial_wall * 1e3,
        streaming_walls,
        worker_busy_ms: busy * 1e3,
        coord_ms: coord * 1e3,
        parallel_fraction,
        projected_speedup_4,
        measured_speedup_4: serial_wall / wall_x4.max(1e-9),
        peak_run_mib: peak_bytes as f64 / MIB,
    }
}

struct YearRow {
    horizon: u64,
    jobs: u64,
    events: u64,
    wall_ms: f64,
    peak_run_mib: f64,
}

/// One year-sweep row: a single streaming run (the year cell is too
/// long for best-of rounds, and the peak-memory column — the point of
/// the sweep — is deterministic anyway).
fn measure_year_row(horizon: u64) -> YearRow {
    let p = PerPoolParams::new(YEAR_POOLS, YEAR_SCALE, horizon);
    let workload = p.build_workload();
    let (out, wall, _, peak) = run_streaming_round(&p, &workload, 1, true);
    YearRow {
        horizon,
        jobs: out.counters.completed + out.counters.unrunnable,
        events: out.counters.events,
        wall_ms: wall * 1e3,
        peak_run_mib: peak as f64 / MIB,
    }
}

/// Pulls `"key": <number>` out of the committed JSON without a JSON
/// dependency (the file is machine-written by this binary).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The CI smoke cell: small enough for seconds, big enough that the
/// parallel fraction is representative.
fn smoke_cell() -> Cell {
    measure_cell(40, 0.25)
}

/// The memory-flatness smoke: the same small cell at the two post-warm-up
/// horizons of `FLAT_SPAN`; returns (peak_short_bytes, peak_long_bytes).
fn mem_flatness_peaks() -> (u64, u64) {
    let mut peaks = [0u64; 2];
    for (i, h) in FLAT_SPAN.into_iter().enumerate() {
        let p = PerPoolParams::new(FLAT_POOLS, FLAT_SCALE, h);
        let workload = p.build_workload();
        let (_, _, _, peak) = run_streaming_round(&p, &workload, 1, true);
        peaks[i] = peak;
    }
    (peaks[0], peaks[1])
}

fn run_check() {
    let json = std::fs::read_to_string("BENCH_sharded.json").unwrap_or_else(|e| {
        panic!(
            "cannot read BENCH_sharded.json: {e}\n\
             regenerate with: cargo run --release -p netbatch-bench --bin perf_sharded"
        )
    });
    let headline = json_number(&json, "headline_projected_speedup_4_shards")
        .expect("BENCH_sharded.json has no headline_projected_speedup_4_shards");
    assert!(
        headline >= MIN_HEADLINE_PROJECTION,
        "committed headline projection {headline:.2}x at 4 shards is below the \
         {MIN_HEADLINE_PROJECTION}x contract — regenerate BENCH_sharded.json \
         and fix the kernel before shipping"
    );
    let fraction = json_number(&json, "headline_parallel_fraction")
        .expect("BENCH_sharded.json has no headline_parallel_fraction");
    assert!(
        fraction >= PARALLEL_FRACTION_FLOOR,
        "committed headline parallel fraction {fraction:.3} is below the \
         {PARALLEL_FRACTION_FLOOR} floor — the streaming coordinator has taken \
         on serial work; regenerate BENCH_sharded.json and fix the kernel"
    );
    let want_fraction = json_number(&json, "smoke_parallel_fraction")
        .expect("BENCH_sharded.json has no smoke_parallel_fraction");

    let cell = smoke_cell();
    let serial = cell.serial_wall_ms;
    let x2 = cell
        .streaming_walls
        .iter()
        .find(|(s, _)| *s == 2)
        .map(|&(_, w)| w)
        .expect("smoke cell measured 2 shards");
    println!(
        "streaming smoke ({} pools, scale {}): serial {serial:.1} ms, x2 {x2:.1} ms, \
         parallel fraction {:.2} (committed {want_fraction:.2})",
        cell.pools, cell.scale, cell.parallel_fraction
    );
    assert!(
        x2 <= serial * SMOKE_OVERHEAD_SLACK,
        "streaming coordination overhead regressed: x2 wall {x2:.1} ms vs serial \
         {serial:.1} ms (limit {SMOKE_OVERHEAD_SLACK}x)"
    );
    assert!(
        cell.parallel_fraction >= want_fraction * SMOKE_FRACTION_RATIO,
        "parallel work fraction regressed: {:.2} vs committed {want_fraction:.2} — \
         work is moving from the workers back onto the coordinator",
        cell.parallel_fraction
    );

    let (peak_short, peak_long) = mem_flatness_peaks();
    println!(
        "memory flatness smoke ({FLAT_POOLS} pools, scale {FLAT_SCALE}): peak \
         {:.1} MiB at {} min vs {:.1} MiB at {} min",
        peak_short as f64 / MIB,
        FLAT_SPAN[0],
        peak_long as f64 / MIB,
        FLAT_SPAN[1]
    );
    let ceiling = (peak_short as f64 * MEM_FLATNESS_SLACK).max(MIB);
    assert!(
        (peak_long as f64) <= ceiling,
        "streaming peak memory grows with the horizon: {:.1} MiB at {} min vs \
         {:.1} MiB at {} min (limit {MEM_FLATNESS_SLACK}x) — something retains \
         per-job state past completion",
        peak_long as f64 / MIB,
        FLAT_SPAN[1],
        peak_short as f64 / MIB,
        FLAT_SPAN[0]
    );
    println!(
        "sharded perf smoke OK (headline: fraction {fraction:.3}, projection \
         {headline:.2}x at 4 shards on the 200-pool cell)"
    );
}

/// Hidden diagnostic: sweep the flatness cell across horizons on both
/// queue backends to localize peak-memory growth (wheel slot capacity
/// retention vs streaming-layer state).
fn mem_probe() {
    for refq in [false, true] {
        for mult in [1u64, 2, 4, 8, 16] {
            let p = PerPoolParams::new(FLAT_POOLS, FLAT_SCALE, mult * FLAT_HORIZON);
            let workload = p.build_workload();
            let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
            config.backend = Backend::Sharded { shards: 1 };
            config.use_reference_queue = refq;
            let sim = Simulator::new(&p.build_site(), Vec::new(), config);
            let baseline = reset_peak();
            let out = sim.run_streaming(&workload, p.seed);
            let peak = peak_since(baseline);
            println!(
                "refq={refq} horizon={:>6} jobs={:>7} peak={:>7.2} MiB",
                mult * FLAT_HORIZON,
                out.counters.completed + out.counters.unrunnable,
                peak as f64 / MIB
            );
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--mem-probe") {
        mem_probe();
        return;
    }
    if std::env::args().any(|a| a == "--check") {
        run_check();
        return;
    }

    let cores = host_cores();
    println!(
        "host cores: {cores}  (measured speedups at >1 shard are real only when cores ≥ shards)"
    );

    let mut cells: Vec<Cell> = Vec::new();
    println!("pool sweep (weak-scaled, scale 1.0):");
    for pools in POOL_SWEEP {
        let cell = measure_cell(pools, 1.0);
        print_cell(&cell);
        cells.push(cell);
    }
    println!("scale sweep (200 pools):");
    for scale in SCALE_SWEEP {
        let cell = measure_cell(200, scale);
        print_cell(&cell);
        cells.push(cell);
    }

    let headline = cells
        .iter()
        .find(|c| c.pools == 200 && c.scale == 1.0)
        .expect("200-pool scale-1.0 cell measured");
    let headline_projection = headline.projected_speedup_4;
    let headline_fraction = headline.parallel_fraction;
    let headline_measured = headline.measured_speedup_4;

    println!("year sweep ({YEAR_POOLS} pools, scale {YEAR_SCALE}, streaming x1):");
    let mut year_rows = Vec::new();
    for horizon in YEAR_SWEEP {
        let row = measure_year_row(horizon);
        println!(
            "  {:>7} min | {:>8} jobs {:>9} events | {:>8.0} ms | peak {:>6.1} MiB",
            row.horizon, row.jobs, row.events, row.wall_ms, row.peak_run_mib
        );
        year_rows.push(row);
    }

    println!("measuring CI smoke cell ...");
    let smoke = smoke_cell();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench_version\": 2,\n");
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str(&format!("  \"horizon_minutes\": {HORIZON_MIN},\n"));
    json.push_str(&format!(
        "  \"headline_parallel_fraction\": {headline_fraction:.3},\n"
    ));
    json.push_str(&format!(
        "  \"headline_projected_speedup_4_shards\": {headline_projection:.2},\n"
    ));
    json.push_str(&format!(
        "  \"headline_measured_speedup_4_shards\": {headline_measured:.2},\n"
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let walls: Vec<String> = c
            .streaming_walls
            .iter()
            .map(|(s, w)| format!("{{\"shards\": {s}, \"wall_ms\": {w:.1}}}"))
            .collect();
        json.push_str(&format!(
            "    {{\"pools\": {}, \"scale\": {}, \"jobs\": {}, \"events\": {}, \
             \"serial_wall_ms\": {:.1}, \"streaming\": [{}], \"worker_busy_ms\": {:.1}, \
             \"coord_ms\": {:.1}, \"parallel_fraction\": {:.3}, \
             \"projected_speedup_4_shards\": {:.2}, \"measured_speedup_4_shards\": {:.2}, \
             \"peak_run_mib\": {:.1}}}{comma}\n",
            c.pools,
            c.scale,
            c.jobs,
            c.events,
            c.serial_wall_ms,
            walls.join(", "),
            c.worker_busy_ms,
            c.coord_ms,
            c.parallel_fraction,
            c.projected_speedup_4,
            c.measured_speedup_4,
            c.peak_run_mib,
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"year_pools\": {YEAR_POOLS}, \"year_scale\": {YEAR_SCALE},\n"
    ));
    json.push_str("  \"year_sweep\": [\n");
    for (i, r) in year_rows.iter().enumerate() {
        let comma = if i + 1 == year_rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"horizon_minutes\": {}, \"jobs\": {}, \"events\": {}, \
             \"wall_ms\": {:.1}, \"peak_run_mib\": {:.1}}}{comma}\n",
            r.horizon, r.jobs, r.events, r.wall_ms, r.peak_run_mib
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"smoke_pools\": {}, \"smoke_scale\": {},\n",
        smoke.pools, smoke.scale
    ));
    json.push_str(&format!(
        "  \"smoke_serial_wall_ms\": {:.1},\n",
        smoke.serial_wall_ms
    ));
    json.push_str(&format!(
        "  \"smoke_parallel_fraction\": {:.3}\n",
        smoke.parallel_fraction
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_sharded.json", &json).expect("write BENCH_sharded.json");
    println!(
        "headline: parallel fraction {headline_fraction:.3}, projected \
         {headline_projection:.2}x (measured {headline_measured:.2}x on {cores} cores) \
         at 4 shards on the 200-pool cell -> BENCH_sharded.json"
    );
}

fn print_cell(c: &Cell) {
    let walls: Vec<String> = c
        .streaming_walls
        .iter()
        .map(|(s, w)| format!("x{s} {w:.0}ms"))
        .collect();
    println!(
        "  {:>3} pools scale {:<4} | {:>7} jobs {:>8} events | serial {:>6.0} ms | {} | \
         split {:.0}ms coord + {:.0}ms workers (f={:.2}) | x4 projected {:.2} measured {:.2} | \
         peak {:.1} MiB",
        c.pools,
        c.scale,
        c.jobs,
        c.events,
        c.serial_wall_ms,
        walls.join(" "),
        c.coord_ms,
        c.worker_busy_ms,
        c.parallel_fraction,
        c.projected_speedup_4,
        c.measured_speedup_4,
        c.peak_run_mib,
    );
}
