//! Sharded-kernel benchmark: weak-scaled pool sweep (20 → 200 pools) and
//! arrival-scale sweep (0.25 → 1.0) comparing the sharded backend against
//! the serial reference, tracked across PRs in `BENCH_sharded.json`.
//!
//! Two kinds of figures are recorded per cell:
//!
//! - **Measured walls**: serial backend vs sharded at 1/2/4 worker
//!   shards, best-of-`ROUNDS`. On a multi-core host the 4-shard wall is
//!   the real speedup; on a single-core host (CI containers included —
//!   the JSON records `host_cores`) threads only interleave, so the
//!   sharded walls there measure *coordination overhead*, not speedup.
//! - **Measured work split + Amdahl projection**: worker threads report
//!   their aggregate batch-execution busy time, so the run decomposes
//!   into coordinator-serial time and worker-parallelizable time. The
//!   `projected_speedup_4_shards` figure is
//!
//!   ```text
//!   serial_wall / (coord + worker_busy/4 + max(0, wall_x4 - wall_x1))
//!   ```
//!
//!   i.e. perfect 4-way division of the measured worker work on top of
//!   the measured coordinator time, *charged* with the full measured
//!   4-shard synchronization overhead as if it serialized. The split is
//!   measured, only the division is modelled — and the overhead term is
//!   an overestimate on real multi-core hosts.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p netbatch-bench --bin perf_sharded
//! cargo run --release -p netbatch-bench --bin perf_sharded -- --check
//! ```
//!
//! `--check` is the CI gate: it asserts the committed headline cell
//! (200 pools, scale 1.0) projects ≥ 1.5x at 4 shards, then re-measures
//! a small smoke cell and fails if the sharded backend's coordination
//! overhead or its parallel work fraction regressed against the
//! committed smoke figures.

use std::time::Instant;

use netbatch_cluster::ids::PoolId;
use netbatch_cluster::pool::PoolConfig;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{Backend, SimConfig, Simulator};
use netbatch_core::take_sharded_worker_busy_nanos;
use netbatch_workload::scenarios::{ScenarioParams, SiteSpec};
use netbatch_workload::trace::Trace;

/// Best-of rounds per (cell, backend) measurement.
const ROUNDS: usize = 3;

/// Machines per pool at scale 1.0 — sized so a submission's first-fit
/// scan and a completion's capacity cycle are real work for the workers.
const MACHINES_PER_POOL: f64 = 96.0;

/// Background arrival rate per pool per minute at scale 1.0, tuned for
/// ~85% steady-state utilization of a 96-machine 4-core pool under the
/// normal-week runtime mixture (mean job ≈ 1.35 cores × ~480 min).
const RATE_PER_POOL: f64 = 0.50;

/// Trace window (minutes): two simulated days. Long enough for the
/// utilization plateau to dominate warm-up, short enough that the full
/// sweep stays in seconds per cell.
const HORIZON_MIN: u64 = 2 * 24 * 60;

/// The weak-scaled pool sweep (machines and arrivals both ∝ pools).
const POOL_SWEEP: [u16; 4] = [20, 50, 100, 200];

/// The arrival/capacity scale sweep, run on the 200-pool site.
const SCALE_SWEEP: [f64; 3] = [0.25, 0.5, 1.0];

/// Shard counts measured per cell.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// CI gate: the committed headline projection must stay at or above
/// this — the tentpole's contract for the 200-pool cell at 4 shards.
const MIN_HEADLINE_PROJECTION: f64 = 1.5;

/// CI gate: measured sharded-x2 wall must stay within this factor of the
/// serial wall on the smoke cell. Valid on any core count (on one core it
/// bounds pure coordination overhead); generous because a 1-core host
/// adds context-switch noise on top.
const SMOKE_OVERHEAD_SLACK: f64 = 2.5;

/// CI gate: the smoke cell's parallel work fraction must stay at or
/// above this share of the committed figure — catching changes that
/// quietly move worker work back onto the coordinator.
const SMOKE_FRACTION_RATIO: f64 = 0.75;

/// A uniform `pools`-pool site: every pool `MACHINES_PER_POOL * scale`
/// identical 4-core machines. Uniformity is the point — weak scaling
/// wants per-shard work constant as pools grow, and `ScenarioParams`
/// pins its heterogeneous site to the paper's 20 pools.
fn uniform_site(pools: u16, scale: f64) -> SiteSpec {
    let n = ((MACHINES_PER_POOL * scale).round() as u32).max(1);
    SiteSpec {
        pools: (0..pools)
            .map(|p| PoolConfig::uniform(PoolId(p), n, 4, 16_384))
            .collect(),
    }
}

/// A background-only trace with arrivals proportional to `pools`
/// (weak scaling) and to `scale` (matching the site's capacity scale).
fn sweep_trace(pools: u16, scale: f64) -> Trace {
    let mut params = ScenarioParams::normal_week(scale);
    params.horizon = HORIZON_MIN;
    params.low_rate = RATE_PER_POOL * f64::from(pools);
    // No pinned burst streams: they target the paper's 20-pool layout
    // and would skew a uniform weak-scaling sweep.
    params.high_streams = 0;
    params.generate_trace()
}

/// One timed round; returns (events, wall seconds, worker busy seconds).
fn run_round(site: &SiteSpec, trace: &Trace, backend: Backend) -> (u64, f64, f64) {
    let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes);
    config.backend = backend;
    let sim = Simulator::new(site, trace.to_specs(), config);
    take_sharded_worker_busy_nanos();
    let start = Instant::now();
    let out = sim.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    let busy = take_sharded_worker_busy_nanos() as f64 * 1e-9;
    (out.counters.events, wall, busy)
}

/// Best-of-`ROUNDS` for one backend: fastest wall, with the busy time
/// taken from the fastest round (the work is deterministic; only the
/// clock varies).
fn measure(site: &SiteSpec, trace: &Trace, backend: Backend) -> (u64, f64, f64) {
    let mut best = (0u64, f64::INFINITY, 0.0f64);
    for _ in 0..ROUNDS {
        let (events, wall, busy) = run_round(site, trace, backend);
        if wall < best.1 {
            best = (events, wall, busy);
        }
    }
    best
}

struct Cell {
    pools: u16,
    scale: f64,
    jobs: u64,
    events: u64,
    serial_wall_ms: f64,
    /// (shards, wall_ms) per measured shard count.
    sharded_walls: Vec<(usize, f64)>,
    /// Worker busy time in the 1-shard run: the total parallelizable work.
    worker_busy_ms: f64,
    /// 1-shard wall minus worker busy: the coordinator's serial time.
    coord_ms: f64,
    /// worker_busy / wall_x1 — the Amdahl parallel fraction.
    parallel_fraction: f64,
    /// serial_wall / (coord + busy/4 + sync overhead), see module docs.
    projected_speedup_4: f64,
}

fn measure_cell(pools: u16, scale: f64) -> Cell {
    let site = uniform_site(pools, scale);
    let trace = sweep_trace(pools, scale);
    let jobs = trace.len() as u64;

    let (events, serial_wall, _) = measure(&site, &trace, Backend::Serial);
    let mut sharded_walls = Vec::new();
    let mut wall_x1 = f64::NAN;
    let mut busy_x1 = f64::NAN;
    let mut wall_x4 = f64::NAN;
    for shards in SHARD_COUNTS {
        let (ev, wall, busy) = measure(&site, &trace, Backend::Sharded { shards });
        assert_eq!(ev, events, "backends disagree on event count");
        sharded_walls.push((shards, wall * 1e3));
        if shards == 1 {
            wall_x1 = wall;
            busy_x1 = busy;
        }
        if shards == 4 {
            wall_x4 = wall;
        }
    }
    let coord = (wall_x1 - busy_x1).max(0.0);
    let sync_overhead = (wall_x4 - wall_x1).max(0.0);
    let projected_speedup_4 = serial_wall / (coord + busy_x1 / 4.0 + sync_overhead).max(1e-9);
    Cell {
        pools,
        scale,
        jobs,
        events,
        serial_wall_ms: serial_wall * 1e3,
        sharded_walls,
        worker_busy_ms: busy_x1 * 1e3,
        coord_ms: coord * 1e3,
        parallel_fraction: busy_x1 / wall_x1.max(1e-9),
        projected_speedup_4,
    }
}

/// Pulls `"key": <number>` out of the committed JSON without a JSON
/// dependency (the file is machine-written by this binary).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The CI smoke cell: small enough for seconds, big enough that the
/// parallel fraction is representative.
fn smoke_cell() -> Cell {
    measure_cell(40, 0.25)
}

fn run_check() {
    let json = std::fs::read_to_string("BENCH_sharded.json").unwrap_or_else(|e| {
        panic!(
            "cannot read BENCH_sharded.json: {e}\n\
             regenerate with: cargo run --release -p netbatch-bench --bin perf_sharded"
        )
    });
    let headline = json_number(&json, "headline_projected_speedup_4_shards")
        .expect("BENCH_sharded.json has no headline_projected_speedup_4_shards");
    assert!(
        headline >= MIN_HEADLINE_PROJECTION,
        "committed headline projection {headline:.2}x at 4 shards is below the \
         {MIN_HEADLINE_PROJECTION}x contract — regenerate BENCH_sharded.json \
         and fix the kernel before shipping"
    );
    let want_fraction = json_number(&json, "smoke_parallel_fraction")
        .expect("BENCH_sharded.json has no smoke_parallel_fraction");

    let cell = smoke_cell();
    let serial = cell.serial_wall_ms;
    let x2 = cell
        .sharded_walls
        .iter()
        .find(|(s, _)| *s == 2)
        .map(|&(_, w)| w)
        .expect("smoke cell measured 2 shards");
    println!(
        "sharded smoke ({} pools, scale {}): serial {serial:.1} ms, x2 {x2:.1} ms, \
         parallel fraction {:.2} (committed {want_fraction:.2})",
        cell.pools, cell.scale, cell.parallel_fraction
    );
    assert!(
        x2 <= serial * SMOKE_OVERHEAD_SLACK,
        "sharded coordination overhead regressed: x2 wall {x2:.1} ms vs serial \
         {serial:.1} ms (limit {SMOKE_OVERHEAD_SLACK}x)"
    );
    assert!(
        cell.parallel_fraction >= want_fraction * SMOKE_FRACTION_RATIO,
        "parallel work fraction regressed: {:.2} vs committed {want_fraction:.2} — \
         work is moving from the workers back onto the coordinator",
        cell.parallel_fraction
    );
    println!(
        "sharded perf smoke OK (headline projection {headline:.2}x at 4 shards on \
         the 200-pool cell)"
    );
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        run_check();
        return;
    }

    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "host cores: {host_cores}  (walls at >1 shard are real speedups only when cores ≥ shards)"
    );

    let mut cells: Vec<Cell> = Vec::new();
    println!("pool sweep (weak-scaled, scale 1.0):");
    for pools in POOL_SWEEP {
        let cell = measure_cell(pools, 1.0);
        print_cell(&cell);
        cells.push(cell);
    }
    println!("scale sweep (200 pools):");
    for scale in SCALE_SWEEP {
        if scale == 1.0 {
            continue; // already measured as the last pool-sweep cell
        }
        let cell = measure_cell(200, scale);
        print_cell(&cell);
        cells.push(cell);
    }

    let headline = cells
        .iter()
        .find(|c| c.pools == 200 && c.scale == 1.0)
        .expect("200-pool scale-1.0 cell measured");
    let headline_projection = headline.projected_speedup_4;

    println!("measuring CI smoke cell ...");
    let smoke = smoke_cell();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str(&format!("  \"horizon_minutes\": {HORIZON_MIN},\n"));
    json.push_str(&format!("  \"machines_per_pool\": {MACHINES_PER_POOL},\n"));
    json.push_str(&format!("  \"rate_per_pool\": {RATE_PER_POOL},\n"));
    json.push_str(&format!(
        "  \"headline_projected_speedup_4_shards\": {headline_projection:.2},\n"
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let walls: Vec<String> = c
            .sharded_walls
            .iter()
            .map(|(s, w)| format!("{{\"shards\": {s}, \"wall_ms\": {w:.1}}}"))
            .collect();
        json.push_str(&format!(
            "    {{\"pools\": {}, \"scale\": {}, \"jobs\": {}, \"events\": {}, \
             \"serial_wall_ms\": {:.1}, \"sharded\": [{}], \"worker_busy_ms\": {:.1}, \
             \"coord_ms\": {:.1}, \"parallel_fraction\": {:.3}, \
             \"projected_speedup_4_shards\": {:.2}}}{comma}\n",
            c.pools,
            c.scale,
            c.jobs,
            c.events,
            c.serial_wall_ms,
            walls.join(", "),
            c.worker_busy_ms,
            c.coord_ms,
            c.parallel_fraction,
            c.projected_speedup_4,
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"smoke_pools\": {}, \"smoke_scale\": {},\n",
        smoke.pools, smoke.scale
    ));
    json.push_str(&format!(
        "  \"smoke_serial_wall_ms\": {:.1},\n",
        smoke.serial_wall_ms
    ));
    json.push_str(&format!(
        "  \"smoke_parallel_fraction\": {:.3}\n",
        smoke.parallel_fraction
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_sharded.json", &json).expect("write BENCH_sharded.json");
    println!(
        "headline: {headline_projection:.2}x projected at 4 shards on the 200-pool cell \
         -> BENCH_sharded.json"
    );
}

fn print_cell(c: &Cell) {
    let walls: Vec<String> = c
        .sharded_walls
        .iter()
        .map(|(s, w)| format!("x{s} {w:.0}ms"))
        .collect();
    println!(
        "  {:>3} pools scale {:<4} | {:>7} jobs {:>8} events | serial {:>6.0} ms | {} | \
         split {:.0}ms coord + {:.0}ms workers (f={:.2}) | projected x4: {:.2}",
        c.pools,
        c.scale,
        c.jobs,
        c.events,
        c.serial_wall_ms,
        walls.join(" "),
        c.coord_ms,
        c.worker_busy_ms,
        c.parallel_fraction,
        c.projected_speedup_4,
    );
}
