//! Ablation: capping restarts per job (restart-churn control). The paper
//! notes the random wait-rescheduling scheme "does come at a cost of much
//! more frequent restart operations"; this sweep shows how much of the
//! benefit survives a cap.

use netbatch_bench::runner::{build_scenario, run_cell, scale_from_env, Load};
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!("Max-restarts ablation | high load | ResSusWaitRand | scale {scale}");
    let nores = run_cell(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    println!(
        "NoRes baseline: AvgCT(susp) {:.1}, AvgCT(all) {:.1}\n",
        nores.avg_ct_suspended, nores.avg_ct_all
    );
    println!(
        "{:<12} {:>12} {:>11} {:>9} {:>10}",
        "cap", "AvgCT (susp)", "AvgCT (all)", "AvgWCT", "restarts"
    );
    for cap in [Some(0u32), Some(1), Some(2), Some(4), Some(8), None] {
        let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitRand);
        config.max_restarts = cap;
        let r = Experiment::new(site.clone(), trace.clone(), config).run();
        let restarts = r.counters.restarts_from_suspend + r.counters.restarts_from_wait;
        println!(
            "{:<12} {:>12.1} {:>11.1} {:>9.1} {:>10}",
            cap.map_or("unbounded".to_string(), |c| c.to_string()),
            r.avg_ct_suspended,
            r.avg_ct_all,
            r.avg_wct(),
            restarts
        );
    }
}
