//! End-to-end hot-path benchmark: events/sec and allocations/event,
//! tracked across PRs.
//!
//! Runs the paper's week scenario for every strategy × load cell with a
//! counting global allocator (this binary only), measuring
//!
//! - wall-clock events/sec over `run_to_completion` (best of
//!   `ROUNDS` rounds per cell, since CI machines are noisy), and
//! - heap allocations per processed event, counted across the run only
//!   (construction and trace generation excluded) — the zero-allocation
//!   dispatch loop keeps this near zero in steady state.
//!
//! Results are written to `BENCH_hotpath.json` in the current directory,
//! next to the frozen PR-4 (binary-heap queue, allocating dispatch)
//! baseline, so the speedup is visible in review diffs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p netbatch-bench --bin perf_hotpath [-- --scale 0.25]
//! cargo run --release -p netbatch-bench --bin perf_hotpath -- --check --scale 0.02
//! cargo run --release -p netbatch-bench --bin perf_hotpath -- --refresh-smoke
//! ```
//!
//! `--check` is the CI smoke mode: it runs a reduced cell set and fails if
//! events/sec regresses more than 30% against the `smoke` section of the
//! committed `BENCH_hotpath.json`, or if allocations/event exceed the
//! recorded ceiling — catching both wall-clock and allocation regressions
//! without the cost (or noise sensitivity) of the full matrix.
//!
//! `--refresh-smoke` re-measures only the smoke section and rewrites those
//! lines in place, leaving the committed scale-0.25 matrix untouched — for
//! when a hardware/toolchain change shifts absolute wall clock with no
//! code change.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use netbatch_bench::runner::{build_scenario, Load};
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{SimConfig, Simulator};
use netbatch_workload::scenarios::SiteSpec;
use netbatch_workload::trace::Trace;

/// Counts every allocation (and reallocation) so steady-state hot-path
/// allocations are measurable, at the cost of one relaxed atomic add per
/// call — negligible against the allocations it exists to catch.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Per-size allocation histogram (index = size in 8-byte steps, capped),
/// filled only when `NETBATCH_ALLOC_HISTO` is set — identifying *what*
/// allocates on the hot path by its layout size.
static SIZE_HISTO: [AtomicU64; 129] = [const { AtomicU64::new(0) }; 129];
static HISTO_ON: AtomicU64 = AtomicU64::new(0);
/// Armed by the diagnostic branch; `run_round` turns the histogram on only
/// around `run_to_completion`, so construction noise stays out of it.
static HISTO_ARMED: AtomicU64 = AtomicU64::new(0);

static TRAP_BUCKET: AtomicU64 = AtomicU64::new(u64::MAX);
static TRAP_SKIP: AtomicU64 = AtomicU64::new(0);

fn record(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    if HISTO_ON.load(Ordering::Relaxed) != 0 {
        let bucket = (size / 8).min(128) as u64;
        SIZE_HISTO[bucket as usize].fetch_add(1, Ordering::Relaxed);
        if bucket == TRAP_BUCKET.load(Ordering::Relaxed)
            && TRAP_SKIP.fetch_sub(1, Ordering::Relaxed) == 1
        {
            panic!("trapped a {size}-byte allocation (run with RUST_BACKTRACE=1)");
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Best-of rounds per cell (matches how the PR-4 baseline was captured).
const ROUNDS: usize = 4;

/// Default scale for the committed full matrix.
const DEFAULT_SCALE: f64 = 0.25;

/// CI smoke gate: fail when events/sec drops below this fraction of the
/// committed smoke figure. Generous because wall clock on shared CI
/// machines swings; the allocation gate below is the tight one.
const SMOKE_MIN_RATIO: f64 = 0.7;

/// CI smoke gate: allocations/event must stay below the committed figure
/// times this slack. Allocation counts are deterministic per build, so a
/// small margin only absorbs allocator-internal variation across
/// toolchains.
const SMOKE_ALLOC_SLACK: f64 = 1.5;

/// The frozen PR-4 baseline: binary-heap event queue, allocating dispatch
/// loop, snapshot clone per decision. Captured best-of-4 at scale 0.25 on
/// the same methodology as this binary (construction excluded).
const BASELINE_PR4: &[(&str, &str, u64, f64)] = &[
    ("normal", "NoRes", 113_400, 446_106.0),
    ("normal", "ResSusUtil", 113_400, 760_847.0),
    ("normal", "ResSusRand", 113_400, 822_738.0),
    ("normal", "ResSusWaitUtil", 113_925, 802_018.0),
    ("normal", "ResSusWaitRand", 113_955, 786_407.0),
    ("high", "NoRes", 113_400, 672_433.0),
    ("high", "ResSusUtil", 113_400, 657_734.0),
    ("high", "ResSusRand", 113_400, 615_297.0),
    ("high", "ResSusWaitUtil", 311_182, 926_283.0),
    ("high", "ResSusWaitRand", 274_835, 498_737.0),
];

const STRATEGIES: [StrategyKind; 5] = [
    StrategyKind::NoRes,
    StrategyKind::ResSusUtil,
    StrategyKind::ResSusRand,
    StrategyKind::ResSusWaitUtil,
    StrategyKind::ResSusWaitRand,
];

struct Cell {
    load: &'static str,
    strategy: &'static str,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    allocs_per_event: f64,
}

/// One timed round: events, wall seconds, and allocations across
/// `run_to_completion` only (simulator construction and the per-round spec
/// clone happen before the counter snapshot).
fn run_round(site: &SiteSpec, trace: &Trace, strategy: StrategyKind) -> (u64, f64, u64) {
    let config = SimConfig::new(InitialKind::RoundRobin, strategy);
    let sim = Simulator::new(site, trace.to_specs(), config);
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    if HISTO_ARMED.load(Ordering::Relaxed) != 0 {
        HISTO_ON.store(1, Ordering::Relaxed);
    }
    let start = Instant::now();
    let out = sim.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    HISTO_ON.store(0, Ordering::Relaxed);
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    (out.counters.events, wall, allocs)
}

/// Best-of-`rounds` measurement of one cell. Wall clock takes the fastest
/// round; the allocation count is identical across rounds (the simulator
/// is deterministic), so any round's figure is THE figure.
fn measure_cell(
    site: &SiteSpec,
    trace: &Trace,
    load: &'static str,
    strategy: StrategyKind,
    rounds: usize,
) -> Cell {
    let mut best_wall = f64::INFINITY;
    let mut events = 0;
    let mut allocs = 0;
    for _ in 0..rounds {
        let (ev, wall, al) = run_round(site, trace, strategy);
        events = ev;
        allocs = al;
        if wall < best_wall {
            best_wall = wall;
        }
    }
    Cell {
        load,
        strategy: strategy.name(),
        wall_ms: best_wall * 1e3,
        events,
        events_per_sec: events as f64 / best_wall.max(1e-9),
        allocs_per_event: allocs as f64 / events.max(1) as f64,
    }
}

/// No strategy may cost more than 2x the per-load median *per event* —
/// the guard that caught ResSusRand rebuilding its candidate list per
/// random draw. Compared per event (not raw wall) because the
/// wait-rescheduling strategies legitimately process ~2.5x the events of
/// their siblings under high load.
fn assert_no_outlier(cells: &[Cell], load: &str) {
    let us_per_event = |c: &Cell| c.wall_ms * 1e3 / c.events.max(1) as f64;
    let mut costs: Vec<f64> = cells
        .iter()
        .filter(|c| c.load == load)
        .map(us_per_event)
        .collect();
    if costs.len() < 3 {
        return;
    }
    costs.sort_by(|a, b| a.partial_cmp(b).expect("per-event costs are finite"));
    let median = costs[costs.len() / 2];
    for c in cells.iter().filter(|c| c.load == load) {
        assert!(
            us_per_event(c) <= 2.0 * median,
            "{} at {} load is a >2x per-event outlier: {:.3} us/event vs \
             {:.3} us/event median — a strategy's decision path has regressed",
            c.strategy,
            load,
            us_per_event(c),
            median
        );
    }
}

fn baseline_for(load: &str, strategy: &str) -> Option<f64> {
    BASELINE_PR4
        .iter()
        .find(|(l, s, _, _)| *l == load && *s == strategy)
        .map(|&(_, _, _, eps)| eps)
}

/// Pulls `"key": <number>` out of the committed JSON without a JSON
/// dependency (the file is machine-written by this binary, so the format
/// is stable).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

enum Mode {
    Full,
    Check,
    RefreshSmoke,
}

fn parse_args() -> (f64, Mode) {
    let args: Vec<String> = std::env::args().collect();
    let mode = if args.iter().any(|a| a == "--check") {
        Mode::Check
    } else if args.iter().any(|a| a == "--refresh-smoke") {
        Mode::RefreshSmoke
    } else {
        Mode::Full
    };
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            let s: f64 = v
                .parse()
                .unwrap_or_else(|_| panic!("--scale must be a number, got `{v}`"));
            assert!(s > 0.0, "--scale must be positive");
            s
        })
        .unwrap_or(if matches!(mode, Mode::Full) {
            DEFAULT_SCALE
        } else {
            0.02
        });
    (scale, mode)
}

/// CI smoke: two representative cells (cheap dispatch-bound NoRes plus the
/// wait-rescheduling heavy ResSusWaitUtil) at small scale, gated against
/// the committed smoke section.
fn run_check(scale: f64) {
    let json = std::fs::read_to_string("BENCH_hotpath.json").unwrap_or_else(|e| {
        panic!(
            "cannot read BENCH_hotpath.json: {e}\n\
             regenerate with: cargo run --release -p netbatch-bench --bin perf_hotpath"
        )
    });
    let want_eps = json_number(&json, "smoke_events_per_sec")
        .expect("BENCH_hotpath.json has no smoke_events_per_sec");
    let want_ape = json_number(&json, "smoke_allocs_per_event")
        .expect("BENCH_hotpath.json has no smoke_allocs_per_event");
    let (eps, ape) = smoke_numbers(scale);
    println!(
        "perf smoke at scale {scale}: {eps:.0} ev/s (committed {want_eps:.0}), \
         {ape:.4} allocs/event (committed {want_ape:.4})"
    );
    assert!(
        eps >= want_eps * SMOKE_MIN_RATIO,
        "events/sec regressed more than 30%: {eps:.0} vs committed {want_eps:.0}"
    );
    let ceiling = (want_ape * SMOKE_ALLOC_SLACK).max(0.05);
    assert!(
        ape <= ceiling,
        "allocations/event regressed: {ape:.4} vs ceiling {ceiling:.4} — \
         something on the per-event path allocates again"
    );
    println!("perf smoke OK");
}

/// Re-measures the smoke section and rewrites only its lines in the
/// committed `BENCH_hotpath.json`, leaving the expensive scale-0.25
/// matrix untouched.
fn refresh_smoke(scale: f64) {
    let json = std::fs::read_to_string("BENCH_hotpath.json").unwrap_or_else(|e| {
        panic!(
            "cannot read BENCH_hotpath.json: {e}\n\
             generate it first with: cargo run --release -p netbatch-bench --bin perf_hotpath"
        )
    });
    let (eps, ape) = smoke_numbers(scale);
    let mut out = String::with_capacity(json.len());
    for line in json.lines() {
        if line.trim_start().starts_with("\"smoke_events_per_sec\"") {
            out.push_str(&format!("  \"smoke_events_per_sec\": {eps:.0},\n"));
        } else if line.trim_start().starts_with("\"smoke_allocs_per_event\"") {
            // Last key in the object: no trailing comma.
            out.push_str(&format!("  \"smoke_allocs_per_event\": {ape:.4}\n"));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    std::fs::write("BENCH_hotpath.json", out).expect("write BENCH_hotpath.json");
    println!("smoke refreshed: {eps:.0} ev/s, {ape:.4} allocs/event -> BENCH_hotpath.json");
}

/// The smoke measurement: aggregate events/sec (best-of-`ROUNDS` per
/// cell — the cells are milliseconds at smoke scale, so extra rounds are
/// cheap and cut the wall-clock noise the gate has to tolerate) and the
/// worst allocations/event over the reduced cell set.
fn smoke_numbers(scale: f64) -> (f64, f64) {
    let (site, trace) = build_scenario(Load::Normal, scale);
    let mut total_events = 0u64;
    let mut total_wall = 0.0f64;
    let mut worst_ape = 0.0f64;
    for strategy in [StrategyKind::NoRes, StrategyKind::ResSusWaitUtil] {
        let cell = measure_cell(&site, &trace, "normal", strategy, ROUNDS);
        total_events += cell.events;
        total_wall += cell.wall_ms / 1e3;
        worst_ape = worst_ape.max(cell.allocs_per_event);
    }
    (total_events as f64 / total_wall.max(1e-9), worst_ape)
}

fn main() {
    let (scale, mode) = parse_args();
    match mode {
        Mode::Check => {
            run_check(scale);
            return;
        }
        Mode::RefreshSmoke => {
            refresh_smoke(scale);
            return;
        }
        Mode::Full => {}
    }

    if std::env::var_os("NETBATCH_ALLOC_HISTO").is_some() {
        // Diagnostic mode: one cell, with the per-size histogram printed
        // so a hot-path allocation can be identified by its layout.
        let (site, trace) = build_scenario(Load::Normal, scale);
        let specs_warm = trace.to_specs();
        drop(specs_warm);
        if let Ok(v) = std::env::var("NETBATCH_ALLOC_TRAP") {
            let size: u64 = v.parse().expect("NETBATCH_ALLOC_TRAP must be a byte size");
            let skip: u64 = std::env::var("NETBATCH_ALLOC_TRAP_SKIP")
                .map(|s| s.parse().expect("NETBATCH_ALLOC_TRAP_SKIP must be a count"))
                .unwrap_or(1);
            TRAP_SKIP.store(skip, Ordering::Relaxed);
            TRAP_BUCKET.store((size / 8).min(128), Ordering::Relaxed);
        }
        HISTO_ARMED.store(1, Ordering::Relaxed);
        let cell = measure_cell(&site, &trace, "normal", StrategyKind::NoRes, 1);
        HISTO_ARMED.store(0, Ordering::Relaxed);
        println!(
            "NoRes normal: {} events, {:.4} allocs/event; sizes (bytes: count):",
            cell.events, cell.allocs_per_event
        );
        for (i, bucket) in SIZE_HISTO.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 1000 {
                println!("  {:>5}{}: {n}", i * 8, if i == 128 { "+" } else { "" });
            }
        }
        return;
    }

    let mut cells = Vec::new();
    for (load, label) in [(Load::Normal, "normal"), (Load::High, "high")] {
        let (site, trace) = build_scenario(load, scale);
        for strategy in STRATEGIES {
            let cell = measure_cell(&site, &trace, label, strategy, ROUNDS);
            let speedup = baseline_for(label, cell.strategy)
                .map(|base| cell.events_per_sec / base)
                .unwrap_or(f64::NAN);
            println!(
                "{label:>6} load | {:<14} {:>9.1} ms  {:>9} events  {:>12.0} ev/s  \
                 {:>8.4} allocs/ev  {speedup:>5.2}x vs PR-4",
                cell.strategy,
                cell.wall_ms,
                cell.events,
                cell.events_per_sec,
                cell.allocs_per_event,
            );
            cells.push(cell);
        }
        assert_no_outlier(&cells, label);
    }

    let min_speedup = cells
        .iter()
        .filter_map(|c| baseline_for(c.load, c.strategy).map(|b| c.events_per_sec / b))
        .fold(f64::INFINITY, f64::min);
    let max_ape = cells
        .iter()
        .map(|c| c.allocs_per_event)
        .fold(0.0f64, f64::max);

    // End-to-end speedup: total events over total wall for the whole
    // matrix, against the PR-4 walls for the same cells — the tentpole's
    // headline number (per-cell speedups vary with how generous each
    // PR-4 cell happened to be).
    let total_wall_s: f64 = cells.iter().map(|c| c.wall_ms / 1e3).sum();
    let total_events: u64 = cells.iter().map(|c| c.events).sum();
    let baseline_wall_s: f64 = cells
        .iter()
        .filter_map(|c| baseline_for(c.load, c.strategy).map(|eps| c.events as f64 / eps))
        .sum();
    let aggregate_eps = total_events as f64 / total_wall_s.max(1e-9);
    let aggregate_speedup = baseline_wall_s / total_wall_s.max(1e-9);

    // Steady-state allocations/event: the *marginal* rate between a 1x and
    // a 2x run of the same cell. First-touch warmup (index buckets, wheel
    // slots, container high-water growth) is a fixed cost that the
    // absolute per-event figure smears over the run; the marginal rate is
    // what the dispatch loop itself costs per extra event.
    let (allocs_1x, events_1x) = {
        let (site, trace) = build_scenario(Load::Normal, scale);
        let (ev, _, al) = run_round(&site, &trace, StrategyKind::NoRes);
        (al, ev)
    };
    let (allocs_2x, events_2x) = {
        let (site, trace) = build_scenario(Load::Normal, scale * 2.0);
        let (ev, _, al) = run_round(&site, &trace, StrategyKind::NoRes);
        (al, ev)
    };
    let steady_state_ape = (allocs_2x.saturating_sub(allocs_1x)) as f64
        / (events_2x.saturating_sub(events_1x)).max(1) as f64;

    println!("\nmeasuring CI smoke section at scale 0.02 ...");
    let (smoke_eps, smoke_ape) = smoke_numbers(0.02);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    json.push_str(&format!(
        "  \"aggregate_events_per_sec\": {aggregate_eps:.0},\n"
    ));
    json.push_str(&format!(
        "  \"aggregate_speedup_vs_pr4\": {aggregate_speedup:.2},\n"
    ));
    json.push_str(&format!("  \"min_speedup_vs_pr4\": {min_speedup:.2},\n"));
    json.push_str(&format!("  \"max_allocs_per_event\": {max_ape:.4},\n"));
    json.push_str(&format!(
        "  \"steady_state_allocs_per_event\": {steady_state_ape:.4},\n"
    ));
    json.push_str("  \"baseline_pr4\": [\n");
    for (i, (load, strategy, events, eps)) in BASELINE_PR4.iter().enumerate() {
        let comma = if i + 1 == BASELINE_PR4.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"load\": \"{load}\", \"strategy\": \"{strategy}\", \"events\": {events}, \"events_per_sec\": {eps:.0}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let speedup = baseline_for(c.load, c.strategy)
            .map(|b| c.events_per_sec / b)
            .unwrap_or(f64::NAN);
        json.push_str(&format!(
            "    {{\"load\": \"{}\", \"strategy\": \"{}\", \"wall_ms\": {:.1}, \"events\": {}, \
             \"events_per_sec\": {:.0}, \"allocs_per_event\": {:.4}, \"speedup_vs_pr4\": {:.2}}}{comma}\n",
            c.load, c.strategy, c.wall_ms, c.events, c.events_per_sec, c.allocs_per_event, speedup
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"smoke_scale\": 0.02,\n");
    json.push_str(&format!("  \"smoke_events_per_sec\": {smoke_eps:.0},\n"));
    json.push_str(&format!("  \"smoke_allocs_per_event\": {smoke_ape:.4}\n"));
    json.push_str("}\n");
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!(
        "end-to-end: {aggregate_eps:.0} ev/s, {aggregate_speedup:.2}x vs PR-4 \
         (per-cell min {min_speedup:.2}x) | allocs/event max {max_ape:.4}, \
         steady-state {steady_state_ape:.4} -> BENCH_hotpath.json"
    );
}
