//! Ablation (paper future work: "network delays and other rescheduling
//! associated overheads"): sweep a fixed per-restart cost and find where
//! `ResSusWaitRand`'s frequent restarts stop paying off against `NoRes`.

use netbatch_bench::runner::{build_scenario, run_cell, scale_from_env, Load};
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_sim_engine::time::SimDuration;

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!("Restart-overhead ablation | high load | scale {scale}");
    let nores = run_cell(&site, &trace, InitialKind::RoundRobin, StrategyKind::NoRes);
    println!(
        "NoRes baseline: AvgCT(all) {:.1}, AvgWCT {:.1}\n",
        nores.avg_ct_all,
        nores.avg_wct()
    );
    println!(
        "{:<10} {:>14} {:>12} {:>9} {:>10} {:>10}",
        "overhead", "strategy", "AvgCT (all)", "AvgWCT", "restarts", "wins?"
    );
    for strategy in [StrategyKind::ResSusWaitUtil, StrategyKind::ResSusWaitRand] {
        for minutes in [0u64, 5, 15, 30, 60, 120, 240] {
            let mut config = SimConfig::new(InitialKind::RoundRobin, strategy);
            config.restart_overhead = SimDuration::from_minutes(minutes);
            let r = Experiment::new(site.clone(), trace.clone(), config).run();
            let restarts = r.counters.restarts_from_suspend + r.counters.restarts_from_wait;
            println!(
                "{:<10} {:>14} {:>12.1} {:>9.1} {:>10} {:>10}",
                format!("{minutes} min"),
                strategy.name(),
                r.avg_ct_all,
                r.avg_wct(),
                restarts,
                if r.avg_wct() < nores.avg_wct() {
                    "yes"
                } else {
                    "NO"
                }
            );
        }
    }
}
