//! Reproduces the **§3.2.1 high-suspension scenario**: a trace engineered
//! for a much higher suspend rate, where the paper reports a 7% AvgCT
//! reduction over all jobs and 44% over suspended jobs for ResSusUtil.

use netbatch_bench::paper::high_suspension;
use netbatch_bench::runner::{
    print_comparison, print_reductions, reduction, run_strategies, scale_from_env,
};
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_workload::scenarios::ScenarioParams;

fn main() {
    let scale = scale_from_env();
    let params = ScenarioParams::high_suspension_week(scale);
    let site = params.build_site();
    let trace = params.generate_trace();
    println!(
        "High-suspension scenario | round-robin initial | scale {scale} | {} jobs | {} cores",
        trace.len(),
        site.total_cores()
    );
    let results = run_strategies(
        &site,
        &trace,
        InitialKind::RoundRobin,
        &StrategyKind::PAPER_SUSPEND_ONLY,
    );
    print_comparison("High-suspension scenario", &results, &[]);
    print_reductions(&results);
    let ct_all = reduction(results[0].avg_ct_all, results[1].avg_ct_all);
    let ct_susp = reduction(results[0].avg_ct_suspended, results[1].avg_ct_suspended);
    println!(
        "\npaper claims at 14% suspend rate: AvgCT(all) -{:.0}%, AvgCT(susp) -{:.0}%",
        high_suspension::CT_ALL_REDUCTION * 100.0,
        high_suspension::CT_SUSPENDED_REDUCTION * 100.0
    );
    println!(
        "measured (ResSusUtil):            AvgCT(all) -{:.0}%, AvgCT(susp) -{:.0}%",
        ct_all * 100.0,
        ct_susp * 100.0
    );
}
