//! Calibration harness: runs the normal-load week at a given scale under
//! NoRes/round-robin (plus the other paper cells on request) and prints the
//! observables the workload is tuned against.

use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_workload::analysis::TraceAnalysis;
use netbatch_workload::scenarios::ScenarioParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let which = args.get(2).map(String::as_str).unwrap_or("normal");
    let all = args.iter().any(|a| a == "--all");

    let params = match which {
        "highsus" => ScenarioParams::high_suspension_week(scale),
        _ => ScenarioParams::normal_week(scale),
    };
    let site = params.build_site();
    let site = if which == "high" { site.halved() } else { site };
    let trace = params.generate_trace();
    let analysis = TraceAnalysis::of(&trace);
    println!(
        "scale {scale} | jobs {} | high frac {:.2}% | mean runtime {:.0} | offered util {:.1}%",
        analysis.jobs,
        analysis.high_fraction() * 100.0,
        analysis.mean_runtime,
        analysis.offered_utilization(site.total_cores()) * 100.0,
    );
    println!("site cores {}", site.total_cores());

    let strategies: &[StrategyKind] = if all {
        &[
            StrategyKind::NoRes,
            StrategyKind::ResSusUtil,
            StrategyKind::ResSusRand,
            StrategyKind::ResSusWaitUtil,
            StrategyKind::ResSusWaitRand,
        ]
    } else {
        &[StrategyKind::NoRes]
    };
    println!(
        "{:<16} {:>9} {:>12} {:>10} {:>9} {:>8} {:>9} {:>8} {:>8}",
        "strategy",
        "susp%",
        "AvgCT(s)",
        "AvgCT(all)",
        "AvgST",
        "AvgWCT",
        "avgWait",
        "restS",
        "restW"
    );
    for &strategy in strategies {
        let t0 = std::time::Instant::now();
        let result = Experiment::new(
            site.clone(),
            trace.clone(),
            SimConfig::new(InitialKind::RoundRobin, strategy),
        )
        .run();
        // Diagnostics: what happened to jobs restarted from suspension?
        let sim = netbatch_core::Simulator::new(
            &site,
            trace.to_specs(),
            SimConfig::new(InitialKind::RoundRobin, strategy),
        );
        let out = sim.run_to_completion();
        let restarted: Vec<_> = out
            .jobs
            .iter()
            .filter(|j| j.restarts_from_suspend() > 0)
            .collect();
        if !restarted.is_empty() {
            let n = restarted.len() as f64;
            let wait: f64 = restarted
                .iter()
                .map(|j| j.wait_time().as_minutes_f64())
                .sum::<f64>()
                / n;
            let waste: f64 = restarted
                .iter()
                .map(|j| j.resched_waste().as_minutes_f64())
                .sum::<f64>()
                / n;
            let ct: f64 = restarted
                .iter()
                .map(|j| j.completion_time().unwrap().as_minutes_f64())
                .sum::<f64>()
                / n;
            let multi = restarted
                .iter()
                .filter(|j| j.restarts_from_suspend() > 1)
                .count();
            println!(
                "    restarted-from-suspend: n={} meanCT={ct:.0} meanWait={wait:.0} meanWaste={waste:.0} multi-restart={multi}",
                restarted.len()
            );
        }
        println!(
            "{:<16} {:>8.2}% {:>12.1} {:>10.1} {:>9.1} {:>8.1} {:>9.1} {:>8} {:>8}  ({:.1}s, {} events)",
            strategy.name(),
            result.suspend_rate * 100.0,
            result.avg_ct_suspended,
            result.avg_ct_all,
            result.avg_st,
            result.avg_wct(),
            result.avg_wait_all,
            result.counters.restarts_from_suspend,
            result.counters.restarts_from_wait,
            t0.elapsed().as_secs_f64(),
            result.counters.events,
        );
    }
}
