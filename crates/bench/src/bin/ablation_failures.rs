//! Ablation (extension): machine failures. The paper's future work
//! includes validating on the live platform, where hosts fail; this sweep
//! injects random machine outages and measures how each strategy degrades.
//! Rescheduling infrastructure turns out to double as failure recovery:
//! evicted jobs reuse exactly the restart path.

use netbatch_bench::runner::{build_scenario, scale_from_env, Load};
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{MachineFailure, SimConfig};
use netbatch_sim_engine::rng::DetRng;
use netbatch_sim_engine::time::{SimDuration, SimTime};

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::Normal, scale);
    println!("Failure-injection ablation | normal load | scale {scale}");
    println!(
        "{:<10} {:>14} {:>10} {:>12} {:>9} {:>10}",
        "failures", "strategy", "evictions", "AvgCT (all)", "AvgWCT", "unrunnable"
    );
    for n_failures in [0usize, 5, 20, 80] {
        // Deterministic failure plan: random machines, staggered over the
        // week, each down for 12 hours.
        let mut rng = DetRng::from_seed_u64(99).stream("failures");
        let failures: Vec<MachineFailure> = (0..n_failures)
            .map(|_| {
                let pool = rng.next_below(site.pools.len() as u64) as usize;
                let machine = rng.next_below(site.pools[pool].machines.len() as u64) as u32;
                MachineFailure {
                    pool: site.pools[pool].id,
                    machine: machine.into(),
                    at: SimTime::from_minutes(rng.next_below(9_000)),
                    down_for: Some(SimDuration::from_hours(12)),
                }
            })
            .collect();
        for strategy in [StrategyKind::NoRes, StrategyKind::ResSusWaitUtil] {
            let mut config = SimConfig::new(InitialKind::RoundRobin, strategy);
            config.failures = failures.clone();
            let r = Experiment::new(site.clone(), trace.clone(), config).run();
            println!(
                "{:<10} {:>14} {:>10} {:>12.1} {:>9.1} {:>10}",
                n_failures,
                strategy.name(),
                r.counters.failure_evictions,
                r.avg_ct_all,
                r.avg_wct(),
                r.counters.unrunnable
            );
        }
    }
}
