//! Chaos ablation (extension): stochastic fault injection. The paper's
//! future work includes validating on the live platform, where hosts fail;
//! this sweep drives the `FaultModel` at increasing intensities and
//! measures how the strategies degrade — and how much the hardened
//! resilience policy (retry budgets, exponential backoff, pool
//! blacklisting) claws back. Rescheduling infrastructure turns out to
//! double as failure recovery: evicted jobs reuse exactly the restart path.

use netbatch_bench::runner::{build_scenario, scale_from_env, Load};
use netbatch_cluster::ids::PoolId;
use netbatch_core::experiment::Experiment;
use netbatch_core::faults::{FaultModel, FaultPlan, ResiliencePolicy};
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{MachineFailure, SimConfig};
use netbatch_sim_engine::rng::DetRng;
use netbatch_sim_engine::time::{SimDuration, SimTime};

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::Normal, scale);
    let shape: Vec<(PoolId, u32)> = site
        .pools
        .iter()
        .map(|p| (p.id, p.machines.len() as u32))
        .collect();

    // The legacy escape hatch drew (pool, machine, at) triples with
    // replacement, so nominally-80-failure runs silently injected fewer
    // distinct outages. The plan normalization merges the duplicates;
    // report the effective count so the table is honest about intensity.
    let mut rng = DetRng::from_seed_u64(99).stream("failures");
    let legacy: Vec<MachineFailure> = (0..80)
        .map(|_| {
            let pool = rng.next_below(site.pools.len() as u64) as usize;
            let machine = rng.next_below(site.pools[pool].machines.len() as u64) as u32;
            MachineFailure {
                pool: site.pools[pool].id,
                machine: machine.into(),
                at: SimTime::from_minutes(rng.next_below(9_000)),
                down_for: Some(SimDuration::from_hours(12)),
            }
        })
        .collect();
    let effective = FaultPlan::from_failures(&legacy).len();
    println!(
        "Legacy draw: 80 nominal failures -> {effective} effective outages after dedupe/merge"
    );
    println!();

    // A week of simulated time plus one repair window of slack.
    let horizon = SimDuration::from_days(7) + SimDuration::from_hours(12);
    let mttr = SimDuration::from_hours(12);
    let tiers: [(&str, Option<FaultModel>); 4] = [
        ("none", None),
        (
            "light",
            Some(FaultModel::new(SimDuration::from_hours(168), mttr, horizon)),
        ),
        (
            "medium",
            Some(
                FaultModel::new(SimDuration::from_hours(48), mttr, horizon)
                    .with_pool_outages(1, mttr)
                    .with_flaky(0.02, 16),
            ),
        ),
        (
            "heavy",
            Some(
                FaultModel::new(SimDuration::from_hours(12), mttr, horizon)
                    .with_pool_outages(2, mttr)
                    .with_flaky(0.05, 16),
            ),
        ),
    ];

    println!("Chaos ablation: fault-intensity sweep | normal load | scale {scale}");
    println!(
        "{:<8} {:>8} {:>14} {:>9} {:>10} {:>8} {:>12} {:>9} {:>10}",
        "tier",
        "outages",
        "strategy",
        "policy",
        "evictions",
        "retries",
        "AvgCT (all)",
        "AvgWCT",
        "unrunnable"
    );
    for (tier, model) in &tiers {
        let seed = SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes).seed;
        let outages = model.as_ref().map_or(0, |m| m.generate(&shape, seed).len());
        for (strategy, resilience) in [
            (StrategyKind::NoRes, ResiliencePolicy::disabled()),
            (StrategyKind::ResSusWaitUtil, ResiliencePolicy::disabled()),
            (StrategyKind::ResSusWaitUtil, ResiliencePolicy::hardened()),
        ] {
            let mut config = SimConfig::new(InitialKind::RoundRobin, strategy);
            config.fault_model = model.clone();
            config.resilience = resilience;
            let r = Experiment::new(site.clone(), trace.clone(), config).run();
            println!(
                "{:<8} {:>8} {:>14} {:>9} {:>10} {:>8} {:>12.1} {:>9.1} {:>10}",
                tier,
                outages,
                strategy.name(),
                if resilience.enabled {
                    "hardened"
                } else {
                    "baseline"
                },
                r.counters.failure_evictions,
                r.counters.retries_scheduled,
                r.avg_ct_all,
                r.avg_wct(),
                r.counters.unrunnable
            );
        }
    }
}
