//! Wall-clock dispatch-throughput baseline, tracked across PRs.
//!
//! Runs the paper's week scenario at `NETBATCH_SCALE` (default 0.1) for
//! every strategy × load cell, measuring wall-clock time and simulator
//! events per second, and writes the results to `BENCH_dispatch.json` in
//! the current directory. Unlike the Criterion benches (relative,
//! per-machine), this file is meant to be committed so the perf trajectory
//! of the dispatch hot path is visible in review diffs.
//!
//! Usage: `cargo run --release -p netbatch-bench --bin perf_baseline`
//!
//! With `--check-invariants` every cell runs under the online invariant
//! checker instead, and the results are printed but **not** written to
//! `BENCH_dispatch.json`: the committed file always tracks the
//! observer-free hot path, and the flagged run measures the checker's
//! overhead against it (budget: <= 1.2x, see EXPERIMENTS.md).

use std::time::Instant;

use netbatch_bench::runner::{build_scenario, run_cell_opts, scale_from_env, Load, RunnerOpts};
use netbatch_core::policy::{InitialKind, StrategyKind};

struct Cell {
    load: &'static str,
    strategy: &'static str,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
}

fn main() {
    let scale = scale_from_env();
    let opts = RunnerOpts {
        check_invariants: std::env::args().any(|a| a == "--check-invariants"),
        stats: false,
        telemetry: false,
        spans: false,
    };
    let strategies = [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
    ];
    let mut cells = Vec::new();
    let total_start = Instant::now();
    for (load, label) in [(Load::Normal, "normal"), (Load::High, "high")] {
        let (site, trace) = build_scenario(load, scale);
        for strategy in strategies {
            let start = Instant::now();
            let (result, _) = run_cell_opts(&site, &trace, InitialKind::RoundRobin, strategy, opts);
            let wall = start.elapsed();
            let wall_ms = wall.as_secs_f64() * 1e3;
            let events = result.counters.events;
            let events_per_sec = events as f64 / wall.as_secs_f64().max(1e-9);
            println!(
                "{label:>6} load | {:<14} {wall_ms:>9.1} ms  {events:>9} events  {events_per_sec:>12.0} ev/s",
                strategy.name(),
            );
            cells.push(Cell {
                load: label,
                strategy: strategy.name(),
                wall_ms,
                events,
                events_per_sec,
            });
        }
    }
    let total_wall_ms = total_start.elapsed().as_secs_f64() * 1e3;
    if opts.check_invariants {
        println!(
            "\ntotal: {total_wall_ms:.1} ms at scale {scale} under the invariant checker \
             (baseline not rewritten; compare against BENCH_dispatch.json)"
        );
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"total_wall_ms\": {total_wall_ms:.1},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"load\": \"{}\", \"strategy\": \"{}\", \"wall_ms\": {:.1}, \"events\": {}, \"events_per_sec\": {:.0}}}{comma}\n",
            c.load, c.strategy, c.wall_ms, c.events, c.events_per_sec
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_dispatch.json", &json).expect("write BENCH_dispatch.json");
    println!("\ntotal: {total_wall_ms:.1} ms at scale {scale} -> BENCH_dispatch.json");
}
