//! Ablation (extension): multi-VPM topologies and inter-site rescheduling
//! (the paper's Figure 1 architecture and its §5 future work).
//!
//! The evaluation treats the site as one VPM over 20 pools. Here we split
//! the pools across 2 and 4 VPMs (sites), confine initial routing to each
//! VPM's pools, and measure how much rescheduling loses when it cannot
//! cross VPM boundaries — then re-enable inter-site rescheduling with a
//! WAN transfer surcharge and sweep it.

use netbatch_bench::runner::{build_scenario, scale_from_env, Load};
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{SimConfig, VpmTopology};
use netbatch_sim_engine::time::SimDuration;

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!("Inter-site ablation | high load | ResSusWaitUtil | scale {scale}");
    println!(
        "{:<34} {:>12} {:>11} {:>9} {:>9}",
        "topology", "AvgCT (susp)", "AvgCT (all)", "AvgWCT", "restarts"
    );
    let run = |label: &str, topology: Option<VpmTopology>| {
        let mut config = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
        config.topology = topology;
        let r = Experiment::new(site.clone(), trace.clone(), config).run();
        println!(
            "{label:<34} {:>12.0} {:>11.0} {:>9.1} {:>9}",
            r.avg_ct_suspended,
            r.avg_ct_all,
            r.avg_wct(),
            r.counters.restarts_from_suspend + r.counters.restarts_from_wait
        );
    };
    run("1 VPM x 20 pools (paper setup)", None);
    run("2 VPMs, confined", Some(VpmTopology::contiguous(20, 2)));
    run("4 VPMs, confined", Some(VpmTopology::contiguous(20, 4)));
    for overhead in [0u64, 30, 120, 480] {
        run(
            &format!("4 VPMs, inter-site (+{overhead}m WAN)"),
            Some(
                VpmTopology::contiguous(20, 4).with_inter_site(SimDuration::from_minutes(overhead)),
            ),
        );
    }
    println!("\nConfinement shrinks each job's escape set; inter-site rescheduling");
    println!("recovers the single-VPM benefit as long as the WAN surcharge stays");
    println!("below the queueing it avoids.");
}
