//! Reproduces **Table 1**: NoRes / ResSusUtil / ResSusRand under the
//! normal-load scenario with the round-robin initial scheduler.

use netbatch_bench::paper::TABLE_1;
use netbatch_bench::runner::{
    build_scenario, print_comparison, print_reductions, run_strategies, scale_from_env, Load,
};
use netbatch_core::policy::{InitialKind, StrategyKind};

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::Normal, scale);
    println!(
        "Table 1 | normal load | round-robin initial | scale {scale} | {} jobs | {} cores",
        trace.len(),
        site.total_cores()
    );
    let results = run_strategies(
        &site,
        &trace,
        InitialKind::RoundRobin,
        &StrategyKind::PAPER_SUSPEND_ONLY,
    );
    print_comparison("Table 1: performance under normal load", &results, &TABLE_1);
    print_reductions(&results);
}
