//! Runs the complete reproduction: every table and figure of the paper's
//! evaluation, printing measured-vs-paper comparisons and a final
//! shape-check summary (the qualitative claims that must hold).
//!
//! `NETBATCH_SCALE` scales the site and arrival rates (default 0.1; set
//! 1.0 for the paper-sized 248k-job week). The year-long figure runs use
//! half the table scale.
//!
//! Flags: `--scale N` overrides `NETBATCH_SCALE`; `--check-invariants`
//! runs every cell under the online invariant checker; `--stats` prints a
//! per-event-kind timing report per cell; `--markdown` appends the
//! EXPERIMENTS.md tables; `--smoke` reports shape checks without gating
//! the exit code on them (they are calibrated for scale >= 0.1, so
//! small-scale CI runs gate only on invariants, which panic on violation).

use netbatch_bench::paper::{figure2, TABLE_1, TABLE_2, TABLE_3, TABLE_4, TABLE_5};
use netbatch_bench::runner::{
    build_scenario, markdown_comparison, print_comparison, print_reductions, reduction,
    run_strategies_opts, scale_from_env, Load, RunnerOpts,
};
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_workload::scenarios::ScenarioParams;

struct ShapeCheck {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn check(name: &'static str, pass: bool, detail: String) -> ShapeCheck {
    ShapeCheck { name, pass, detail }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale = match argv.iter().position(|a| a == "--scale") {
        Some(i) => {
            let v = argv.get(i + 1).expect("--scale needs a value");
            let scale: f64 = v
                .parse()
                .unwrap_or_else(|_| panic!("--scale must be a number, got `{v}`"));
            assert!(scale > 0.0, "--scale must be positive");
            scale
        }
        None => scale_from_env(),
    };
    let opts = RunnerOpts {
        check_invariants: argv.iter().any(|a| a == "--check-invariants"),
        stats: argv.iter().any(|a| a == "--stats"),
        telemetry: false,
        spans: false,
    };
    let smoke = argv.iter().any(|a| a == "--smoke");
    let t0 = std::time::Instant::now();
    println!(
        "NetBatch dynamic-rescheduling reproduction | scale {scale}{}",
        if opts.check_invariants {
            " | invariant-checked"
        } else {
            ""
        }
    );
    let mut checks: Vec<ShapeCheck> = Vec::new();
    let mut markdown = String::new();

    // ---- Tables 1-5 ----
    let (normal_site, trace) = build_scenario(Load::Normal, scale);
    let high_site = normal_site.halved();

    let t1 = run_strategies_opts(
        &normal_site,
        &trace,
        InitialKind::RoundRobin,
        &StrategyKind::PAPER_SUSPEND_ONLY,
        opts,
    );
    print_comparison("Table 1: normal load, round-robin initial", &t1, &TABLE_1);
    print_reductions(&t1);
    markdown.push_str("\n### Table 1 (normal load, round-robin initial)\n\n");
    markdown.push_str(&markdown_comparison(&t1, &TABLE_1));

    let t2 = run_strategies_opts(
        &high_site,
        &trace,
        InitialKind::RoundRobin,
        &StrategyKind::PAPER_SUSPEND_ONLY,
        opts,
    );
    print_comparison("Table 2: high load, round-robin initial", &t2, &TABLE_2);
    print_reductions(&t2);
    markdown.push_str("\n### Table 2 (high load, round-robin initial)\n\n");
    markdown.push_str(&markdown_comparison(&t2, &TABLE_2));

    let t3 = run_strategies_opts(
        &high_site,
        &trace,
        InitialKind::UtilizationBased,
        &StrategyKind::PAPER_SUSPEND_ONLY,
        opts,
    );
    print_comparison(
        "Table 3: high load, utilization-based initial",
        &t3,
        &TABLE_3,
    );
    print_reductions(&t3);
    markdown.push_str("\n### Table 3 (high load, utilization-based initial)\n\n");
    markdown.push_str(&markdown_comparison(&t3, &TABLE_3));

    let t4 = run_strategies_opts(
        &high_site,
        &trace,
        InitialKind::RoundRobin,
        &StrategyKind::PAPER_WITH_WAIT,
        opts,
    );
    print_comparison(
        "Table 4: wait rescheduling, round-robin initial",
        &t4,
        &TABLE_4,
    );
    print_reductions(&t4);
    markdown.push_str("\n### Table 4 (wait rescheduling, round-robin initial)\n\n");
    markdown.push_str(&markdown_comparison(&t4, &TABLE_4));

    let t5 = run_strategies_opts(
        &high_site,
        &trace,
        InitialKind::UtilizationBased,
        &StrategyKind::PAPER_WITH_WAIT,
        opts,
    );
    print_comparison(
        "Table 5: wait rescheduling, utilization-based initial",
        &t5,
        &TABLE_5,
    );
    print_reductions(&t5);
    markdown.push_str("\n### Table 5 (wait rescheduling, utilization-based initial)\n\n");
    markdown.push_str(&markdown_comparison(&t5, &TABLE_5));

    // ---- High-suspension scenario ----
    let hs_params = ScenarioParams::high_suspension_week(scale);
    let hs = run_strategies_opts(
        &hs_params.build_site(),
        &hs_params.generate_trace(),
        InitialKind::RoundRobin,
        &[StrategyKind::NoRes, StrategyKind::ResSusUtil],
        opts,
    );
    print_comparison("High-suspension scenario (§3.2.1)", &hs, &[]);
    print_reductions(&hs);

    // ---- Figure 2 / Figure 4 (year trace) ----
    let year_params = ScenarioParams::year(scale * 0.5);
    let mut year_config =
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes).with_sampling();
    year_config.check_invariants = opts.check_invariants;
    let year = Experiment::new(
        year_params.build_site(),
        year_params.generate_trace(),
        year_config,
    )
    .run();
    let cdf = year.suspension_cdf();
    let median = cdf.median().unwrap_or(0.0);
    let mean = cdf.mean();
    let tail = 1.0 - cdf.at(figure2::TAIL_THRESHOLD_MIN);
    println!("\n== Figure 2: suspension-time distribution (year trace) ==");
    println!("                    measured     paper");
    println!(
        "median            {median:>9.0} {:>9.0}",
        figure2::MEDIAN_MIN
    );
    println!("mean              {mean:>9.0} {:>9.0}", figure2::MEAN_MIN);
    println!(
        "frac > 1100 min   {:>8.1}% {:>8.1}%",
        tail * 100.0,
        figure2::FRACTION_ABOVE_1100 * 100.0
    );
    // Figure 4 covers the submission year; exclude the post-horizon drain.
    let in_horizon: Vec<f64> = year
        .utilization_series
        .samples()
        .iter()
        .filter(|&&(t, _)| t.as_minutes() < year_params.horizon)
        .map(|&(_, u)| u)
        .collect();
    let mean_util = in_horizon.iter().sum::<f64>() / in_horizon.len().max(1) as f64;
    println!("\n== Figure 4: utilization / suspension over the year ==");
    println!("mean utilization {mean_util:.1}% (paper: ~40%, typically 20-60%)");
    println!(
        "peak suspended jobs {:.0}, mean {:.1}",
        year.suspended_series.max().unwrap_or(0.0),
        year.suspended_series.mean()
    );

    // ---- Shape checks ----
    let nores1 = &t1[0];
    let util1 = &t1[1];
    let rand1 = &t1[2];
    checks.push(check(
        "T1: ResSusUtil cuts AvgCT(susp) vs NoRes (paper: -50%)",
        util1.avg_ct_suspended < nores1.avg_ct_suspended * 0.85,
        format!(
            "{:.0} -> {:.0} ({:+.0}%)",
            nores1.avg_ct_suspended,
            util1.avg_ct_suspended,
            -reduction(nores1.avg_ct_suspended, util1.avg_ct_suspended) * 100.0
        ),
    ));
    checks.push(check(
        "T1: ResSusUtil cuts AvgWCT vs NoRes (paper: -33%)",
        util1.avg_wct() < nores1.avg_wct() * 0.8,
        format!("{:.1} -> {:.1}", nores1.avg_wct(), util1.avg_wct()),
    ));
    checks.push(check(
        "T1: rescheduling raises the suspend rate",
        util1.suspend_rate > nores1.suspend_rate,
        format!(
            "{:.2}% -> {:.2}%",
            nores1.suspend_rate * 100.0,
            util1.suspend_rate * 100.0
        ),
    ));
    checks.push(check(
        "T1: ResSusRand is worse than ResSusUtil (poor pool choice hurts)",
        rand1.avg_wct() > util1.avg_wct(),
        format!("WCT {:.1} vs {:.1}", rand1.avg_wct(), util1.avg_wct()),
    ));
    let nores2 = &t2[0];
    let util2 = &t2[1];
    let rand2 = &t2[2];
    checks.push(check(
        "T2: high load roughly doubles NoRes AvgCT(all) vs normal",
        nores2.avg_ct_all > nores1.avg_ct_all * 1.5,
        format!("{:.0} -> {:.0}", nores1.avg_ct_all, nores2.avg_ct_all),
    ));
    checks.push(check(
        "T2: rescheduling benefit grows under high load (paper: -75%)",
        reduction(nores2.avg_ct_suspended, util2.avg_ct_suspended)
            > reduction(nores1.avg_ct_suspended, util1.avg_ct_suspended),
        format!(
            "normal {:+.0}%, high {:+.0}%",
            -reduction(nores1.avg_ct_suspended, util1.avg_ct_suspended) * 100.0,
            -reduction(nores2.avg_ct_suspended, util2.avg_ct_suspended) * 100.0
        ),
    ));
    checks.push(check(
        "T2: ResSusRand backfires vs NoRes (worst overall: WCT and AvgCT-all)",
        rand2.avg_wct() > nores2.avg_wct() && rand2.avg_ct_all > nores2.avg_ct_all,
        format!(
            "WCT {:.0} vs {:.0}, CT(all) {:.0} vs {:.0}",
            rand2.avg_wct(),
            nores2.avg_wct(),
            rand2.avg_ct_all,
            nores2.avg_ct_all
        ),
    ));
    let nores3 = &t3[0];
    let util3 = &t3[1];
    checks.push(check(
        "T3: ResSusUtil still cuts AvgCT(susp) under util-based initial (paper: -75%)",
        util3.avg_ct_suspended < nores3.avg_ct_suspended * 0.9,
        format!(
            "CT(s) {:.0} -> {:.0} ({:+.0}%)",
            nores3.avg_ct_suspended,
            util3.avg_ct_suspended,
            -reduction(nores3.avg_ct_suspended, util3.avg_ct_suspended) * 100.0
        ),
    ));
    let wait_util4 = &t4[1];
    let wait_rand4 = &t4[2];
    checks.push(check(
        "T4: wait rescheduling beats suspend-only on AvgCT(all)",
        wait_util4.avg_ct_all < util2.avg_ct_all,
        format!("{:.0} vs {:.0}", wait_util4.avg_ct_all, util2.avg_ct_all),
    ));
    checks.push(check(
        "T4: random performs close to utilization-based with wait resched",
        wait_rand4.avg_ct_suspended < 1.35 * wait_util4.avg_ct_suspended,
        format!(
            "{:.0} vs {:.0}",
            wait_rand4.avg_ct_suspended, wait_util4.avg_ct_suspended
        ),
    ));
    checks.push(check(
        "T4: ResSusWaitRand fixes the random backfire seen in T2",
        wait_rand4.avg_ct_suspended < rand2.avg_ct_suspended,
        format!(
            "{:.0} vs {:.0}",
            wait_rand4.avg_ct_suspended, rand2.avg_ct_suspended
        ),
    ));
    checks.push(check(
        "T4: random wait-resched costs far more restarts (paper's caveat)",
        t4[2].counters.restarts_from_wait > 2 * t4[1].counters.restarts_from_wait,
        format!(
            "{} vs {}",
            t4[2].counters.restarts_from_wait, t4[1].counters.restarts_from_wait
        ),
    ));
    let wait_util5 = &t5[1];
    let wait_rand5 = &t5[2];
    checks.push(check(
        "T5: both wait strategies beat NoRes under util-based initial",
        wait_util5.avg_wct() < t5[0].avg_wct() && wait_rand5.avg_wct() < t5[0].avg_wct(),
        format!(
            "WCT {:.1} / {:.1} vs {:.1}",
            wait_util5.avg_wct(),
            wait_rand5.avg_wct(),
            t5[0].avg_wct()
        ),
    ));
    checks.push(check(
        "HS: high-suspension scenario has a much higher suspend rate",
        hs[0].suspend_rate > 2.0 * nores1.suspend_rate,
        format!(
            "{:.1}% vs {:.2}%",
            hs[0].suspend_rate * 100.0,
            nores1.suspend_rate * 100.0
        ),
    ));
    checks.push(check(
        "HS: rescheduling strongly cuts AvgCT(susp) (paper: -44%)",
        reduction(hs[0].avg_ct_suspended, hs[1].avg_ct_suspended) > 0.3,
        format!(
            "{:+.0}%",
            -reduction(hs[0].avg_ct_suspended, hs[1].avg_ct_suspended) * 100.0
        ),
    ));
    checks.push(check(
        "F2: suspension times are heavy-tailed (median well below mean)",
        median < mean && tail > 0.05,
        format!(
            "median {median:.0}, mean {mean:.0}, tail {:.0}%",
            tail * 100.0
        ),
    ));
    checks.push(check(
        "F4: mean utilization in the paper's typical band",
        (20.0..=60.0).contains(&mean_util),
        format!("{mean_util:.1}%"),
    ));

    println!("\n== known deviations from the paper (see EXPERIMENTS.md) ==");
    println!(
        "D1: ResSusRand's backfire appears on AvgWCT/AvgCT(all) but its AvgCT(susp) \n    did not exceed NoRes's ({:.0} vs {:.0}); in the paper it did (6485 vs 5846).",
        rand2.avg_ct_suspended, nores2.avg_ct_suspended
    );
    println!(
        "D2: the utilization-based initial scheduler LOWERS the NoRes suspend rate here \n    ({:.2}% vs {:.2}% under RR); the paper reports a small increase (1.26% -> 1.50%).\n    A perfectly balanced site rarely fills any single pool, so host-level preemption \n    has fewer opportunities in our packing model.",
        nores3.suspend_rate * 100.0,
        nores2.suspend_rate * 100.0
    );
    println!(
        "D3: under util-based initial, ResSusUtil's AvgWCT is {:.0} vs NoRes {:.0} \n    (paper: 408 vs 457, an 11% cut).",
        util3.avg_wct(),
        nores3.avg_wct()
    );

    println!("\n== shape checks (the paper's qualitative claims) ==");
    let mut passed = 0;
    for c in &checks {
        println!(
            "[{}] {} — {}",
            if c.pass { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        );
        if c.pass {
            passed += 1;
        }
    }
    println!(
        "\n{passed}/{} shape checks passed | total wall time {:.1}s",
        checks.len(),
        t0.elapsed().as_secs_f64()
    );

    if argv.iter().any(|a| a == "--markdown") {
        println!("\n---- markdown for EXPERIMENTS.md ----\n{markdown}");
    }
    if passed < checks.len() {
        if smoke {
            println!("(smoke mode: shape checks reported but not gating the exit code)");
        } else {
            std::process::exit(1);
        }
    }
}
