//! Reproduces **Table 5**: combined rescheduling with the
//! utilization-based initial scheduler under high load.

use netbatch_bench::paper::TABLE_5;
use netbatch_bench::runner::{
    build_scenario, print_comparison, print_reductions, run_strategies, scale_from_env, Load,
};
use netbatch_core::policy::{InitialKind, StrategyKind};

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!(
        "Table 5 | high load | utilization-based initial | wait threshold 30m | scale {scale} | {} jobs",
        trace.len()
    );
    let results = run_strategies(
        &site,
        &trace,
        InitialKind::UtilizationBased,
        &StrategyKind::PAPER_WITH_WAIT,
    );
    print_comparison(
        "Table 5: rescheduling waiting jobs (utilization-based initial)",
        &results,
        &TABLE_5,
    );
    print_reductions(&results);
}
