//! Reproduces **Figure 4**: suspended-job count and utilization sampled
//! every minute over the year trace, aggregated to 100-minute averages.
//! Prints a downsampled rendering and writes the full series to
//! `target/fig4_timeline.csv`.

use std::io::Write;

use netbatch_bench::paper::figure4;
use netbatch_bench::runner::scale_from_env;
use netbatch_core::experiment::Experiment;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_sim_engine::time::SimDuration;
use netbatch_workload::scenarios::ScenarioParams;

/// The year trace runs at half the table scale by default.
const YEAR_SCALE_FACTOR: f64 = 0.5;

/// Figure 4's aggregation interval.
const BUCKET: SimDuration = SimDuration::from_minutes(100);

fn main() {
    let scale = scale_from_env() * YEAR_SCALE_FACTOR;
    let params = ScenarioParams::year(scale);
    let site = params.build_site();
    let trace = params.generate_trace();
    println!(
        "Figure 4 | year trace | NoRes | per-minute sampling, 100-min aggregation | scale {scale:.3} | {} jobs",
        trace.len()
    );
    let result = Experiment::new(
        site,
        trace,
        SimConfig::new(InitialKind::RoundRobin, StrategyKind::NoRes).with_sampling(),
    )
    .run();

    let susp = result.suspended_series.aggregate(BUCKET);
    let util = result.utilization_series.aggregate(BUCKET);
    // CSV for plotting.
    let path = "target/fig4_timeline.csv";
    let mut file = std::fs::File::create(path).expect("create csv");
    writeln!(file, "minute,suspended_jobs,utilization_pct").unwrap();
    for ((t, s), (_, u)) in susp.iter().zip(&util) {
        writeln!(file, "{},{s:.1},{u:.2}", t.as_minutes()).unwrap();
    }
    println!("full series written to {path} ({} buckets)", susp.len());

    // Terminal rendering, downsampled to ~60 rows.
    let step = (susp.len() / 60).max(1);
    let max_susp = susp.iter().map(|&(_, s)| s).fold(1.0, f64::max);
    println!("\n  minute | util% | suspended (bar scaled to max {max_susp:.0})");
    for i in (0..susp.len()).step_by(step) {
        let (t, s) = susp[i];
        let (_, u) = util[i];
        let bar = "#".repeat(((s / max_susp) * 40.0).round() as usize);
        println!("{:>8} | {u:>5.1} | {s:>7.0} {bar}", t.as_minutes());
    }

    // Figure 4 covers the submission year; exclude the post-horizon drain
    // (where heavy-tail jobs finish on an otherwise empty site).
    let in_horizon: Vec<f64> = result
        .utilization_series
        .samples()
        .iter()
        .filter(|&&(t, _)| t.as_minutes() < params.horizon)
        .map(|&(_, u)| u)
        .collect();
    let mean_util = in_horizon.iter().sum::<f64>() / in_horizon.len().max(1) as f64;
    let (lo, hi) = figure4::TYPICAL_UTILIZATION_BAND_PCT;
    let in_band = in_horizon
        .iter()
        .filter(|&&u| (lo..=hi).contains(&u))
        .count() as f64
        / in_horizon.len().max(1) as f64;
    println!(
        "\nmean utilization: {mean_util:.1}% (paper: around {:.0}%)",
        figure4::MEAN_UTILIZATION_PCT
    );
    println!(
        "time in the paper's typical {lo:.0}-{hi:.0}% band: {:.0}%",
        in_band * 100.0
    );
    println!(
        "peak suspended jobs: {:.0} | mean suspended: {:.1}",
        result.suspended_series.max().unwrap_or(0.0),
        result.suspended_series.mean()
    );
}
