//! Reproduces **Table 3**: suspended-job rescheduling composed with the
//! utilization-based initial scheduler (high-load scenario, the regime the
//! paper reports because it "reflects more closer to the current Intel
//! environments").

use netbatch_bench::paper::TABLE_3;
use netbatch_bench::runner::{
    build_scenario, print_comparison, print_reductions, run_strategies, scale_from_env, Load,
};
use netbatch_core::policy::{InitialKind, StrategyKind};

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!(
        "Table 3 | high load | utilization-based initial | scale {scale} | {} jobs | {} cores",
        trace.len(),
        site.total_cores()
    );
    let results = run_strategies(
        &site,
        &trace,
        InitialKind::UtilizationBased,
        &StrategyKind::PAPER_SUSPEND_ONLY,
    );
    print_comparison(
        "Table 3: utilization-based initial scheduling",
        &results,
        &TABLE_3,
    );
    print_reductions(&results);
}
