//! Ablation: the shortest-queue pool selector (`ResSusQueue`), the natural
//! third metric suggested by the paper's diagnosis that random selection
//! fails by "choosing a pool that already has a lot of waiting jobs".

use netbatch_bench::runner::{
    build_scenario, print_reductions, run_strategies, scale_from_env, Load,
};
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_metrics::table::Table;

fn main() {
    let scale = scale_from_env();
    for (label, load) in [("normal load", Load::Normal), ("high load", Load::High)] {
        let (site, trace) = build_scenario(load, scale);
        println!("\nQueue-policy ablation | {label} | scale {scale}");
        let results = run_strategies(
            &site,
            &trace,
            InitialKind::RoundRobin,
            &[
                StrategyKind::NoRes,
                StrategyKind::ResSusUtil,
                StrategyKind::ResSusQueue,
                StrategyKind::ResSusRand,
            ],
        );
        let mut table = Table::new([
            "strategy",
            "Suspend rate",
            "AvgCT (susp)",
            "AvgCT (all)",
            "AvgST",
            "AvgWCT",
        ]);
        for r in &results {
            table.row(r.paper_row());
        }
        print!("{table}");
        print_reductions(&results);
    }
}
