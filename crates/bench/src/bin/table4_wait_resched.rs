//! Reproduces **Table 4**: combined suspended + waiting rescheduling
//! (30-minute threshold) with the round-robin initial scheduler under
//! high load.

use netbatch_bench::paper::TABLE_4;
use netbatch_bench::runner::{
    build_scenario, print_comparison, print_reductions, run_strategies, scale_from_env, Load,
};
use netbatch_core::policy::{InitialKind, StrategyKind};

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!(
        "Table 4 | high load | round-robin initial | wait threshold 30m | scale {scale} | {} jobs",
        trace.len()
    );
    let results = run_strategies(
        &site,
        &trace,
        InitialKind::RoundRobin,
        &StrategyKind::PAPER_WITH_WAIT,
    );
    print_comparison(
        "Table 4: rescheduling waiting jobs (round-robin initial)",
        &results,
        &TABLE_4,
    );
    print_reductions(&results);
    // The §3.3 caveat: the random scheme's simplicity costs restarts.
    for r in &results {
        println!(
            "{:<16} restarts: {} from suspension, {} from wait queues",
            r.strategy.name(),
            r.counters.restarts_from_suspend,
            r.counters.restarts_from_wait
        );
    }
}
