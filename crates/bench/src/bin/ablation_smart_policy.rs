//! Ablation (extension): the multi-metric "smart" policy the paper's §5
//! future work sketches — combining utilization, queue length and a
//! predicted-wait signal — compared against the published strategies, plus
//! a weight sweep showing each signal's marginal value.

use netbatch_bench::runner::{
    build_scenario, print_reductions, run_strategies, scale_from_env, Load,
};
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::SimConfig;
use netbatch_metrics::table::Table;

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!("Smart-policy ablation | high load | scale {scale}");
    let results = run_strategies(
        &site,
        &trace,
        InitialKind::RoundRobin,
        &[
            StrategyKind::NoRes,
            StrategyKind::ResSusWaitUtil,
            StrategyKind::ResSusWaitRand,
            StrategyKind::ResSusWaitSmart,
        ],
    );
    let mut table = Table::new([
        "strategy",
        "Suspend rate",
        "AvgCT (susp)",
        "AvgCT (all)",
        "AvgST",
        "AvgWCT",
    ]);
    for r in &results {
        table.row(r.paper_row());
    }
    print!("{table}");
    print_reductions(&results);

    // Marginal value of each signal: zero one weight at a time.
    println!("\nweight sweep (w_util, w_queue, w_wait):");
    use netbatch_core::policy::{ResSusWaitSmart, SmartWeights};
    for (label, w) in [
        (
            "all signals (1,2,1)",
            SmartWeights {
                w_util: 1.0,
                w_queue: 2.0,
                w_wait: 1.0,
            },
        ),
        (
            "utilization only",
            SmartWeights {
                w_util: 1.0,
                w_queue: 0.0,
                w_wait: 0.0,
            },
        ),
        (
            "queue length only",
            SmartWeights {
                w_util: 0.0,
                w_queue: 1.0,
                w_wait: 0.0,
            },
        ),
        (
            "predicted wait only",
            SmartWeights {
                w_util: 0.0,
                w_queue: 0.0,
                w_wait: 1.0,
            },
        ),
    ] {
        // Run through the simulator with a custom-weight policy by using
        // the Experiment API against a hand-built config: StrategyKind
        // carries no weights, so run the policy directly.
        let result = {
            let mut cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitSmart);
            cfg.seed = 1;
            let sim = netbatch_core::Simulator::with_policy(
                &site,
                trace.to_specs(),
                cfg,
                Box::new(ResSusWaitSmart::new().with_weights(w)),
            );
            let out = sim.run_to_completion();
            netbatch_core::experiment::ExperimentResult::from_output(
                InitialKind::RoundRobin,
                StrategyKind::ResSusWaitSmart,
                out,
            )
        };
        println!(
            "{label:<22} AvgCT(susp) {:>7.0} | AvgCT(all) {:>6.0} | AvgWCT {:>6.1}",
            result.avg_ct_suspended,
            result.avg_ct_all,
            result.avg_wct()
        );
    }
}
