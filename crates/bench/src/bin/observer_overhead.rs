//! Telemetry-overhead baseline, tracked across PRs.
//!
//! Runs the paper's normal-load week at `NETBATCH_SCALE` (default 0.25
//! here — overhead ratios need runs long enough to swamp timer noise)
//! per strategy — observer-free, with the [`Telemetry`] observer
//! attached, with the [`SpanRecorder`] attached, and under the online
//! invariant checker — and writes the wall-clock ratios to
//! `BENCH_observer.json` in the current directory. The committed file
//! makes the observability tax visible in review diffs; the budget for
//! telemetry is <= 1.2x the observer-free run and for spans <= 1.25x
//! (see DESIGN.md). When every observer is off the emit path
//! short-circuits on an empty observer list, so disabled spans are
//! provably zero-cost — the baseline variant *is* that configuration.
//!
//! Each variant takes the minimum wall clock over eight rounds (after a
//! warm-up run), with the variants interleaved within every round — the
//! minimum discards scheduler and cache noise, and the interleaving
//! spreads clock-speed drift evenly across variants, so the ratios
//! reflect the code, not the machine's mood.
//!
//! Usage: `cargo run --release -p netbatch-bench --bin observer_overhead`
//!
//! [`Telemetry`]: netbatch_core::Telemetry
//! [`SpanRecorder`]: netbatch_core::SpanRecorder

use std::time::Instant;

use netbatch_bench::runner::{build_scenario, run_cell_opts, scale_from_env, Load, RunnerOpts};
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_workload::scenarios::SiteSpec;
use netbatch_workload::trace::Trace;

struct Cell {
    strategy: &'static str,
    baseline_ms: f64,
    telemetry_ms: f64,
    spans_ms: f64,
    checker_ms: f64,
    events: u64,
}

impl Cell {
    fn telemetry_ratio(&self) -> f64 {
        self.telemetry_ms / self.baseline_ms.max(1e-9)
    }

    fn spans_ratio(&self) -> f64 {
        self.spans_ms / self.baseline_ms.max(1e-9)
    }
}

fn wall_ms(site: &SiteSpec, trace: &Trace, strategy: StrategyKind, opts: RunnerOpts) -> (f64, u64) {
    let start = Instant::now();
    let (result, _) = run_cell_opts(site, trace, InitialKind::RoundRobin, strategy, opts);
    (start.elapsed().as_secs_f64() * 1e3, result.counters.events)
}

fn main() {
    let scale = match std::env::var("NETBATCH_SCALE") {
        Ok(_) => scale_from_env(),
        Err(_) => 0.25,
    };
    let strategies = [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusWaitUtil,
    ];
    let (site, trace) = build_scenario(Load::Normal, scale);
    let off = RunnerOpts::default();
    let tel = RunnerOpts {
        telemetry: true,
        ..off
    };
    let spn = RunnerOpts { spans: true, ..off };
    let chk = RunnerOpts {
        check_invariants: true,
        ..off
    };
    let mut cells = Vec::new();
    for strategy in strategies {
        let (mut baseline_ms, mut telemetry_ms, mut spans_ms, mut checker_ms) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut events = 0;
        wall_ms(&site, &trace, strategy, off); // warm-up: page/cache touch
        for _ in 0..8 {
            let (wall, ev) = wall_ms(&site, &trace, strategy, off);
            baseline_ms = baseline_ms.min(wall);
            events = ev;
            let (wall, _) = wall_ms(&site, &trace, strategy, tel);
            telemetry_ms = telemetry_ms.min(wall);
            let (wall, _) = wall_ms(&site, &trace, strategy, spn);
            spans_ms = spans_ms.min(wall);
            let (wall, _) = wall_ms(&site, &trace, strategy, chk);
            checker_ms = checker_ms.min(wall);
        }
        let cell = Cell {
            strategy: strategy.name(),
            baseline_ms,
            telemetry_ms,
            spans_ms,
            checker_ms,
            events,
        };
        println!(
            "{:<14} baseline {baseline_ms:>8.1} ms | telemetry {telemetry_ms:>8.1} ms ({:.2}x) \
             | spans {spans_ms:>8.1} ms ({:.2}x) | checker {checker_ms:>8.1} ms ({:.2}x) \
             | {events} events",
            cell.strategy,
            cell.telemetry_ratio(),
            cell.spans_ratio(),
            checker_ms / baseline_ms.max(1e-9),
        );
        cells.push(cell);
    }
    let worst = cells
        .iter()
        .map(Cell::telemetry_ratio)
        .fold(0.0_f64, f64::max);
    let worst_spans = cells.iter().map(Cell::spans_ratio).fold(0.0_f64, f64::max);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str("  \"telemetry_budget\": 1.2,\n");
    json.push_str("  \"spans_budget\": 1.25,\n");
    json.push_str(&format!("  \"worst_telemetry_ratio\": {worst:.3},\n"));
    json.push_str(&format!("  \"worst_spans_ratio\": {worst_spans:.3},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"baseline_ms\": {:.1}, \"telemetry_ms\": {:.1}, \
             \"telemetry_ratio\": {:.3}, \"spans_ms\": {:.1}, \"spans_ratio\": {:.3}, \
             \"checker_ms\": {:.1}, \"events\": {}}}{comma}\n",
            c.strategy,
            c.baseline_ms,
            c.telemetry_ms,
            c.telemetry_ratio(),
            c.spans_ms,
            c.spans_ratio(),
            c.checker_ms,
            c.events
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_observer.json", &json).expect("write BENCH_observer.json");
    println!(
        "\nworst telemetry ratio {worst:.2}x (budget 1.2x), worst spans ratio {worst_spans:.2}x \
         (budget 1.25x) -> BENCH_observer.json"
    );
    let mut breached = false;
    if worst > 1.2 {
        eprintln!("warning: telemetry overhead exceeds the 1.2x budget");
        breached = true;
    }
    if worst_spans > 1.25 {
        eprintln!("warning: span-recording overhead exceeds the 1.25x budget");
        breached = true;
    }
    if breached {
        std::process::exit(1);
    }
}
