//! Reproduces **Figure 3**: the decomposition of average wasted completion
//! time into wait / suspend / rescheduling-waste components for the three
//! normal-load strategies.

use netbatch_bench::paper::figure3;
use netbatch_bench::runner::{build_scenario, run_strategies, scale_from_env, Load};
use netbatch_core::policy::{InitialKind, StrategyKind};

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::Normal, scale);
    println!(
        "Figure 3 | normal load | round-robin initial | scale {scale} | {} jobs",
        trace.len()
    );
    let results = run_strategies(
        &site,
        &trace,
        InitialKind::RoundRobin,
        &StrategyKind::PAPER_SUSPEND_ONLY,
    );
    println!("\naverage wasted completion time per job (minutes):");
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>8}   stacked bar (1 char = 2 min)",
        "strategy", "wait", "suspend", "resched", "total"
    );
    for r in &results {
        let (w, s, x) = (
            r.waste.avg_wait(),
            r.waste.avg_suspend(),
            r.waste.avg_resched(),
        );
        let bar = format!(
            "{}{}{}",
            "W".repeat((w / 2.0).round() as usize),
            "S".repeat((s / 2.0).round() as usize),
            "R".repeat((x / 2.0).round() as usize)
        );
        println!(
            "{:<14} {w:>8.1} {s:>9.1} {x:>9.1} {:>8.1}   {bar}",
            r.strategy.name(),
            r.avg_wct()
        );
    }
    println!("\npaper (approximate, read off the bar chart):");
    for (name, w, s, x) in figure3::COMPONENTS {
        println!("{name:<14} {w:>8.1} {s:>9.1} {x:>9.1} {:>8.1}", w + s + x);
    }
}
