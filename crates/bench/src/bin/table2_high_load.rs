//! Reproduces **Table 2**: the same strategies under the high-load
//! scenario (every machine's cores halved, trace unchanged).

use netbatch_bench::paper::TABLE_2;
use netbatch_bench::runner::{
    build_scenario, print_comparison, print_reductions, run_strategies, scale_from_env, Load,
};
use netbatch_core::policy::{InitialKind, StrategyKind};

fn main() {
    let scale = scale_from_env();
    let (site, trace) = build_scenario(Load::High, scale);
    println!(
        "Table 2 | high load (cores halved) | round-robin initial | scale {scale} | {} jobs | {} cores",
        trace.len(),
        site.total_cores()
    );
    let results = run_strategies(
        &site,
        &trace,
        InitialKind::RoundRobin,
        &StrategyKind::PAPER_SUSPEND_ONLY,
    );
    print_comparison("Table 2: performance under high load", &results, &TABLE_2);
    print_reductions(&results);
}
