//! # netbatch-bench
//!
//! The benchmark harness reproducing every table and figure of the paper's
//! evaluation, plus the ablations DESIGN.md §6 calls out.
//!
//! Each experiment has a binary (`cargo run --release -p netbatch-bench
//! --bin <name>`):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_normal_load` | Table 1 |
//! | `table2_high_load` | Table 2 |
//! | `table2b_high_suspension` | §3.2.1 high-suspension claims |
//! | `table3_util_initial` | Table 3 |
//! | `table4_wait_resched` | Table 4 |
//! | `table5_wait_util_initial` | Table 5 |
//! | `fig2_suspension_cdf` | Figure 2 |
//! | `fig3_waste_breakdown` | Figure 3 |
//! | `fig4_suspension_timeline` | Figure 4 |
//! | `ablation_staleness` | stale-utilization extension |
//! | `ablation_overhead` | restart-overhead extension |
//! | `ablation_max_restarts` | restart-cap extension |
//! | `ablation_queue_policy` | shortest-queue selector extension |
//! | `repro_all` | everything above in sequence |
//!
//! The `NETBATCH_SCALE` environment variable scales site capacity and
//! arrival rates together (default 0.1; 1.0 = the paper's full 248k-job
//! week).

pub mod paper;
pub mod runner;
