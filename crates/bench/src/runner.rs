//! Shared experiment-running machinery for the harness binaries.
//!
//! Every table binary does the same thing: build a scenario, run one
//! experiment per strategy (in parallel — runs are independent), and print
//! measured rows interleaved with the paper's published rows. The scale
//! factor comes from `NETBATCH_SCALE` (default 0.1 = a 10% replica of the
//! paper's site and arrival rates, which preserves utilization and policy
//! behaviour; use 1.0 for the full 20x-larger runs).

use netbatch_core::experiment::ExperimentResult;
use netbatch_core::observer::StatsProbe;
use netbatch_core::policy::{InitialKind, StrategyKind};
use netbatch_core::simulator::{SimConfig, Simulator};
use netbatch_metrics::table::{fmt_minutes, fmt_percent, Table};
use netbatch_workload::scenarios::{ScenarioParams, SiteSpec};
use netbatch_workload::trace::Trace;

use crate::paper::PaperRow;

/// Default scale when `NETBATCH_SCALE` is unset.
pub const DEFAULT_SCALE: f64 = 0.1;

/// Reads the experiment scale from the environment.
///
/// # Panics
///
/// Panics if `NETBATCH_SCALE` is set but not a positive number.
pub fn scale_from_env() -> f64 {
    match std::env::var("NETBATCH_SCALE") {
        Ok(v) => {
            let scale: f64 = v
                .parse()
                .unwrap_or_else(|_| panic!("NETBATCH_SCALE must be a number, got `{v}`"));
            assert!(scale > 0.0, "NETBATCH_SCALE must be positive");
            scale
        }
        Err(_) => DEFAULT_SCALE,
    }
}

/// Which load regime a table runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Load {
    /// The paper's normal-load week.
    Normal,
    /// The paper's high-load transform: every machine's cores halved.
    High,
}

/// Builds the (site, trace) pair for a load regime at the given scale.
pub fn build_scenario(load: Load, scale: f64) -> (SiteSpec, Trace) {
    let params = ScenarioParams::normal_week(scale);
    let site = match load {
        Load::Normal => params.build_site(),
        Load::High => params.build_site().halved(),
    };
    (site, params.generate_trace())
}

/// Observer options for a harness run.
///
/// The default (all off) keeps the hot path observer-free; the harness
/// binaries flip these from `--check-invariants` / `--stats` flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerOpts {
    /// Run every cell under the online [`netbatch_core::InvariantChecker`]
    /// (panics, with event history, on the first violated invariant).
    pub check_invariants: bool,
    /// Attach a [`StatsProbe`] per cell and print its per-event-kind
    /// report after the strategies of a table finish.
    pub stats: bool,
    /// Attach a [`netbatch_core::Telemetry`] observer per cell (spans,
    /// per-pool series, exposition). Used by the observer-overhead bench.
    pub telemetry: bool,
    /// Attach a [`netbatch_core::SpanRecorder`] per cell (causal span
    /// trees + decision audit). Used by the observer-overhead bench.
    pub spans: bool,
}

/// Runs one experiment cell.
pub fn run_cell(
    site: &SiteSpec,
    trace: &Trace,
    initial: InitialKind,
    strategy: StrategyKind,
) -> ExperimentResult {
    run_cell_opts(site, trace, initial, strategy, RunnerOpts::default()).0
}

/// Runs one experiment cell under the given observer options.
///
/// Returns the experiment result plus the [`StatsProbe`] report when
/// `opts.stats` is set (`None` otherwise).
pub fn run_cell_opts(
    site: &SiteSpec,
    trace: &Trace,
    initial: InitialKind,
    strategy: StrategyKind,
    opts: RunnerOpts,
) -> (ExperimentResult, Option<String>) {
    let mut config = SimConfig::new(initial, strategy);
    config.check_invariants = opts.check_invariants;
    config.telemetry = opts.telemetry;
    config.spans = opts.spans;
    let mut sim = Simulator::new(site, trace.to_specs(), config);
    if opts.stats {
        sim.attach_observer(Box::new(StatsProbe::new()));
    }
    let mut output = sim.run_to_completion();
    let observers = std::mem::take(&mut output.observers);
    let result = ExperimentResult::from_output(initial, strategy, output);
    let report = observers.iter().find_map(|o| {
        o.as_any()
            .downcast_ref::<StatsProbe>()
            .map(|probe| format!("-- {} --\n{}", strategy.name(), probe.report()))
    });
    (result, report)
}

/// Runs a list of strategies over the same scenario, in parallel (one
/// thread per strategy — the runs share nothing).
pub fn run_strategies(
    site: &SiteSpec,
    trace: &Trace,
    initial: InitialKind,
    strategies: &[StrategyKind],
) -> Vec<ExperimentResult> {
    run_strategies_opts(site, trace, initial, strategies, RunnerOpts::default())
}

/// Runs a list of strategies in parallel under the given observer
/// options. Stats reports (if requested) are printed after all cells
/// finish, in strategy order, so parallel runs never interleave output.
pub fn run_strategies_opts(
    site: &SiteSpec,
    trace: &Trace,
    initial: InitialKind,
    strategies: &[StrategyKind],
    opts: RunnerOpts,
) -> Vec<ExperimentResult> {
    let cells: Vec<(ExperimentResult, Option<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = strategies
            .iter()
            .map(|&strategy| {
                scope.spawn(move || run_cell_opts(site, trace, initial, strategy, opts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    });
    cells
        .into_iter()
        .map(|(result, report)| {
            if let Some(report) = report {
                print!("{report}");
            }
            result
        })
        .collect()
}

/// Prints a measured-vs-paper comparison table.
///
/// For each strategy the measured row is followed by the paper's published
/// row (marked `(paper)`), so factors and orderings are visible at a
/// glance.
pub fn print_comparison(title: &str, results: &[ExperimentResult], paper: &[PaperRow]) {
    println!("\n== {title} ==");
    let mut table = Table::new([
        "strategy",
        "Suspend rate",
        "AvgCT (susp)",
        "AvgCT (all)",
        "AvgST",
        "AvgWCT",
    ]);
    for r in results {
        table.row(r.paper_row());
        if let Some(p) = paper.iter().find(|p| p.strategy == r.strategy) {
            table.row([
                format!("  {} (paper)", p.strategy.name()),
                fmt_percent(p.suspend_rate),
                fmt_minutes(p.avg_ct_suspended),
                fmt_minutes(p.avg_ct_all),
                fmt_minutes(p.avg_st),
                fmt_minutes(p.avg_wct),
            ]);
        }
    }
    print!("{table}");
}

/// Prints the reduction-vs-baseline summary the paper quotes in prose
/// (AvgCT over suspended jobs and AvgWCT, relative to the first result,
/// which must be the NoRes baseline).
pub fn print_reductions(results: &[ExperimentResult]) {
    let Some(baseline) = results.first() else {
        return;
    };
    assert_eq!(
        baseline.strategy,
        StrategyKind::NoRes,
        "reductions are computed against the NoRes baseline"
    );
    for r in &results[1..] {
        let ct = reduction(baseline.avg_ct_suspended, r.avg_ct_suspended);
        let wct = reduction(baseline.avg_wct(), r.avg_wct());
        let ct_all = reduction(baseline.avg_ct_all, r.avg_ct_all);
        println!(
            "{:<16} AvgCT(susp) {:+.0}% | AvgCT(all) {:+.0}% | AvgWCT {:+.0}% vs NoRes",
            r.strategy.name(),
            -ct * 100.0,
            -ct_all * 100.0,
            -wct * 100.0,
        );
    }
}

/// Relative reduction from `from` to `to` (positive = improvement).
pub fn reduction(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (from - to) / from
    }
}

/// Markdown rendering of a comparison, appended to stdout for
/// EXPERIMENTS.md.
pub fn markdown_comparison(results: &[ExperimentResult], paper: &[PaperRow]) -> String {
    let mut table = Table::new([
        "strategy",
        "Suspend rate",
        "AvgCT (susp)",
        "AvgCT (all)",
        "AvgST",
        "AvgWCT",
    ]);
    for r in results {
        table.row(r.paper_row());
        if let Some(p) = paper.iter().find(|p| p.strategy == r.strategy) {
            table.row([
                format!("*{} (paper)*", p.strategy.name()),
                fmt_percent(p.suspend_rate),
                fmt_minutes(p.avg_ct_suspended),
                fmt_minutes(p.avg_ct_all),
                fmt_minutes(p.avg_st),
                fmt_minutes(p.avg_wct),
            ]);
        }
    }
    table.render_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_at_small_scale() {
        let (site, trace) = build_scenario(Load::Normal, 0.01);
        assert_eq!(site.pools.len(), 20);
        assert!(trace.len() > 100);
        let (high_site, _) = build_scenario(Load::High, 0.01);
        assert!(high_site.total_cores() < site.total_cores());
    }

    #[test]
    fn parallel_runs_match_serial_runs() {
        let (site, trace) = build_scenario(Load::Normal, 0.01);
        let strategies = [StrategyKind::NoRes, StrategyKind::ResSusUtil];
        let parallel = run_strategies(&site, &trace, InitialKind::RoundRobin, &strategies);
        for (r, &strategy) in parallel.iter().zip(&strategies) {
            let serial = run_cell(&site, &trace, InitialKind::RoundRobin, strategy);
            assert_eq!(r.suspend_rate, serial.suspend_rate);
            assert_eq!(r.avg_ct_all, serial.avg_ct_all);
        }
    }

    #[test]
    fn opts_cell_checks_invariants_and_reports_stats() {
        let (site, trace) = build_scenario(Load::Normal, 0.01);
        let opts = RunnerOpts {
            check_invariants: true,
            stats: true,
            telemetry: false,
            spans: false,
        };
        let (result, report) = run_cell_opts(
            &site,
            &trace,
            InitialKind::RoundRobin,
            StrategyKind::ResSusUtil,
            opts,
        );
        // Same numbers as the observer-free path: observers are read-only.
        let plain = run_cell(
            &site,
            &trace,
            InitialKind::RoundRobin,
            StrategyKind::ResSusUtil,
        );
        assert_eq!(result.avg_ct_all, plain.avg_ct_all);
        assert_eq!(result.suspend_rate, plain.suspend_rate);
        let report = report.expect("stats report requested");
        assert!(report.contains("ResSusUtil"));
        assert!(report.contains("submit"));
    }

    #[test]
    fn reduction_math() {
        assert!((reduction(100.0, 50.0) - 0.5).abs() < 1e-12);
        assert!((reduction(100.0, 125.0) + 0.25).abs() < 1e-12);
        assert_eq!(reduction(0.0, 10.0), 0.0);
    }

    #[test]
    fn markdown_contains_paper_rows() {
        let (site, trace) = build_scenario(Load::Normal, 0.01);
        let results = run_strategies(
            &site,
            &trace,
            InitialKind::RoundRobin,
            &[StrategyKind::NoRes],
        );
        let md = markdown_comparison(&results, &crate::paper::TABLE_1);
        assert!(md.contains("NoRes (paper)"));
        assert!(md.contains("2498.7"));
    }
}
