//! The streaming simulation backend: shard-local lazy workload
//! generation under minute-epoch barriers, with coordinator offload and
//! epoch pipelining.
//!
//! # Why a third backend
//!
//! Both existing backends materialize every [`netbatch_cluster::job::JobSpec`]
//! before t=0, so a year-scale 200-pool run holds tens of millions of
//! specs and records in memory, and generation itself sits in the serial
//! section of the sharded kernel's Amdahl split (DESIGN.md §12). Here each
//! worker owns a [`TraceStream`] filtered to its own pools' streams and
//! pulls arrivals epoch by epoch, so:
//!
//! * peak memory is O(in-flight jobs): a job exists from the epoch it is
//!   generated (two minutes of lookahead) until its completion is
//!   processed, after which its record is dropped — unless observers are
//!   attached, in which case records are retained for [`SimOutput::jobs`];
//! * generation runs inside the workers' parallel section, leaving the
//!   coordinator a pure merge loop;
//! * the coordinator no longer owns an event queue at all — each worker
//!   runs a per-pool [`EventQueue`] for completion bookings, which also
//!   removes the cross-shard effect replay the sharded backend needs.
//!
//! # The epoch protocol
//!
//! Workers report, per epoch, the minutes their lookahead buffers hold
//! (`(pool, minute, record-count)`) and the earliest booking in their
//! local queues. The coordinator's entire serial section is: pick the
//! lowest known minute, hand out dense job-id bases for every pool
//! submitting at that minute (ascending pool order, so ids match the
//! materialized trace exactly — see
//! [`WorkloadSpec::validate_pool_major`]), broadcast the epoch to every
//! worker, and fold the results back in. With no observers attached the
//! coordinator may keep up to two epochs in flight (the barrier is
//! double-buffered): epoch `N+1` is pre-dispatched while `N`'s results
//! are still outstanding whenever `N+1` is the next known minute and no
//! sample tick lands at or before it. Pre-dispatch is sound because the
//! two-minute-deep lookahead means every submission minute is known one
//! epoch early, completions need no coordinator data at all, and every
//! worker receives every epoch.
//!
//! # Canonical order
//!
//! The streaming backend defines its own canonical within-minute order —
//! sample tick first (pools quiescent), then per pool ascending: buffered
//! submissions, then due completions in booking order. This order is
//! *shard-count independent* (per-pool queues and per-pool emission
//! merging make the merged sequence identical for 1 or N workers, wheel
//! or reference heap, pipelining on or off — the conformance suite
//! asserts golden traces byte-identical across all of them). It is *not*
//! the serial backend's global event-id order: cross-pool completion
//! interleaving within a minute differs. Per-pool event sequences are
//! identical, so job records and run counters match a materialized serial
//! run exactly when sampling is off; with sampling on, series values at
//! minutes where a tick coincides with events may differ (the serial
//! sampler pops mid-minute).
//!
//! # Supported configuration
//!
//! Exactly the sharded fast class, enforced rather than degraded:
//! `NoRes` + round-robin + zero staleness + no topology, faults,
//! lifecycle or resilience — plus the streaming-specific contract that
//! every stream is pinned to one pool in non-decreasing order. Observers
//! must not index `ctx.jobs` (the run keeps it empty until drain);
//! [`TraceRecorder`](crate::observer::TraceRecorder) and
//! [`StatsProbe`](crate::observer::StatsProbe) qualify, the invariant
//! checker, telemetry and span observers do not and their config switches
//! are rejected.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;

use netbatch_cluster::ids::{JobId, PoolId};
use netbatch_cluster::job::{JobPhase, JobRecord};
use netbatch_cluster::pool::{PhysicalPool, PoolAction, SubmitKind};
use netbatch_sim_engine::epoch::merge_sorted_runs;
use netbatch_sim_engine::queue::{EventId, EventQueue};
use netbatch_sim_engine::time::{SimDuration, SimTime};
use netbatch_workload::trace::TraceRecord;
use netbatch_workload::{TraceStream, WorkloadSpec};

use crate::observer::{ObsCtx, ObsEvent};
use crate::provenance::{COORD_MERGE, PHASE_COMPLETE, PHASE_GENERATE, PHASE_SUBMIT};
use crate::simulator::{SimOutput, Simulator};

/// Lookahead depth in generated-but-unsubmitted minutes per pool. Two is
/// the minimum that lets the coordinator pre-dispatch epoch `N+1` before
/// `N`'s results return: consuming a minute refills the buffer in the
/// same epoch, so every submission minute is reported at least one epoch
/// before it is due.
const LOOKAHEAD: usize = 2;

/// Maximum epochs in flight when pipelining (no observers attached).
const PIPELINE_DEPTH: usize = 2;

/// Raw view into the simulator's pool storage, shipped to workers for
/// the duration of the in-flight epochs.
///
/// # Safety
///
/// Same contract as the sharded backend's arena, minus the job half
/// (streaming workers own their jobs outright): pools are partitioned by
/// `pool_id % shards`, a worker only touches pools it owns, and the
/// coordinator touches `sim.pools` only while no epoch is in flight
/// (sampling and observer replay both require a quiescent barrier).
#[derive(Clone, Copy)]
struct PoolArena {
    pools: *mut PhysicalPool,
    len: usize,
}

// SAFETY: see the struct-level contract — disjoint pool ownership,
// quiescent coordinator, per-element reference derivation.
unsafe impl Send for PoolArena {}

impl PoolArena {
    fn of(sim: &mut Simulator) -> Self {
        PoolArena {
            pools: sim.pools.as_mut_ptr(),
            len: sim.pools.len(),
        }
    }

    /// # Safety
    /// Caller must own `id` under the shard partition and hold no other
    /// live reference to this pool.
    #[allow(clippy::mut_from_ref)]
    unsafe fn pool(&self, id: PoolId) -> &mut PhysicalPool {
        debug_assert!(id.as_usize() < self.len);
        &mut *self.pools.add(id.as_usize())
    }
}

/// One epoch's work order, broadcast to every worker.
struct FlushMsg {
    epoch: SimTime,
    /// Dense job-id base per pool submitting this epoch, ascending pool
    /// order. Pools absent from the list have no buffered minute due.
    bases: Vec<(u16, u64)>,
    arena: PoolArena,
}

/// What a worker hands back after each epoch (and once at priming).
struct EpochResult {
    shard: usize,
    /// `None` for the priming report sent before any epoch runs.
    epoch: Option<SimTime>,
    /// Buffered observer events keyed by pool id (ascending within the
    /// run; pools are worker-disjoint, so a k-way merge by pool restores
    /// the canonical order).
    emissions: Vec<(u32, ObsEvent)>,
    completed: u64,
    suspensions: u64,
    unrunnable: u64,
    /// Events executed this epoch (submissions incl. unrunnable ones,
    /// plus delivered completions).
    executed: u64,
    /// Post-epoch lookahead state: every buffered `(pool, minute,
    /// record-count)`, the coordinator's source of job-id bases.
    pending: Vec<(u16, SimTime, u32)>,
    /// Earliest completion booking across this worker's pool queues.
    next_local: Option<SimTime>,
    /// Per-phase `(items, nanos)` self-profile (submit/complete/generate);
    /// zeros when profiling is off.
    profile: [(u64, u64); 3],
}

/// One pool's streaming state inside a worker.
struct PoolLane<'a> {
    pool: PoolId,
    stream: TraceStream<'a>,
    /// Generated-but-unsubmitted minutes, oldest first, at most
    /// [`LOOKAHEAD`] deep.
    ahead: VecDeque<(u64, Vec<TraceRecord>)>,
    /// Completion bookings for jobs running in this pool. Per-pool (not
    /// per-shard) so delivery order is independent of the shard count.
    queue: EventQueue<JobId>,
}

/// Per-thread streaming executor: generates its pools' arrivals, runs
/// the same fast-class transitions as the sharded worker, and applies
/// queue effects immediately against its own per-pool queues.
struct StreamWorker<'a> {
    shard: usize,
    lanes: Vec<PoolLane<'a>>,
    /// Jobs currently in flight (submitted and not yet completed); the
    /// O(in-flight) working set that replaces the dense `sim.jobs` vec.
    jobs: HashMap<JobId, JobRecord>,
    /// Completed (and unrunnable) records, kept only when `retain`.
    finished: Vec<JobRecord>,
    retain: bool,
    collect: bool,
    profile: bool,
    actions: Vec<PoolAction>,
    emissions: Vec<(u32, ObsEvent)>,
    completed: u64,
    suspensions: u64,
    unrunnable: u64,
    executed: u64,
    profile_nanos: [(u64, u64); 3],
    /// Emission key of the pool currently being processed.
    cur_pool: u32,
}

impl<'a> StreamWorker<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shard: usize,
        shards: usize,
        spec: &'a WorkloadSpec,
        seed: u64,
        pinned: &[u16],
        pool_count: u16,
        reference_queue: bool,
        retain: bool,
        collect: bool,
        profile: bool,
    ) -> Self {
        let lanes = (shard..pool_count as usize)
            .step_by(shards)
            .map(|p| PoolLane {
                pool: PoolId(p as u16),
                stream: TraceStream::filtered(spec, seed, |i| pinned[i] as usize == p),
                ahead: VecDeque::new(),
                queue: if reference_queue {
                    EventQueue::with_reference_heap()
                } else {
                    EventQueue::new()
                },
            })
            .collect();
        StreamWorker {
            shard,
            lanes,
            jobs: HashMap::new(),
            finished: Vec::new(),
            retain,
            collect,
            profile,
            actions: Vec::new(),
            emissions: Vec::new(),
            completed: 0,
            suspensions: 0,
            unrunnable: 0,
            executed: 0,
            profile_nanos: [(0, 0); 3],
            cur_pool: 0,
        }
    }

    fn emit(&mut self, event: ObsEvent) {
        if self.collect {
            self.emissions.push((self.cur_pool, event));
        }
    }

    /// Tops up one lane's lookahead to [`LOOKAHEAD`] minutes. This is
    /// where generation cost is paid — inside the worker's epoch, off the
    /// coordinator's serial section.
    fn refill(&mut self, li: usize) {
        let t0 = self.profile.then(std::time::Instant::now);
        let mut generated = 0u64;
        let lane = &mut self.lanes[li];
        while lane.ahead.len() < LOOKAHEAD {
            let Some(m) = lane.stream.peek_minute() else {
                break;
            };
            let mut records = Vec::new();
            generated += lane.stream.drain_minute(m, &mut records) as u64;
            lane.ahead.push_back((m, records));
        }
        if let Some(t0) = t0 {
            let cell = &mut self.profile_nanos[PHASE_GENERATE];
            cell.0 += generated;
            cell.1 += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Fills every lane's lookahead before the first epoch, so the
    /// priming report carries the workload's first minutes.
    fn prime(&mut self) {
        for li in 0..self.lanes.len() {
            self.refill(li);
        }
    }

    /// Executes one epoch: per owned pool ascending, deliver buffered
    /// submissions, then pop due completions, then refill the lookahead.
    fn run_epoch(&mut self, epoch: SimTime, bases: &[(u16, u64)], arena: &PoolArena) {
        let minute = epoch.as_minutes();
        for li in 0..self.lanes.len() {
            let pool = self.lanes[li].pool;
            self.cur_pool = pool.as_usize() as u32;
            if self.lanes[li].ahead.front().map(|&(m, _)| m) == Some(minute) {
                let (_, records) = self.lanes[li].ahead.pop_front().expect("front checked");
                let base = bases
                    .iter()
                    .find(|&&(p, _)| p as usize == pool.as_usize())
                    .map(|&(_, b)| b)
                    .expect("coordinator assigns a base to every reported minute");
                let t0 = self.profile.then(std::time::Instant::now);
                let n = records.len() as u64;
                for (k, record) in records.into_iter().enumerate() {
                    self.run_submit(li, JobId(base + k as u64), record, epoch, arena);
                }
                if let Some(t0) = t0 {
                    let cell = &mut self.profile_nanos[PHASE_SUBMIT];
                    cell.0 += n;
                    cell.1 += t0.elapsed().as_nanos() as u64;
                }
                self.refill(li);
            }
            let t0 = self.profile.then(std::time::Instant::now);
            let mut popped = 0u64;
            while self.lanes[li].queue.peek_time() == Some(epoch) {
                let (_, id, job) = self.lanes[li].queue.pop_with_id().expect("time peeked");
                self.run_complete(li, job, id, epoch, arena);
                popped += 1;
            }
            if let Some(t0) = t0 {
                let cell = &mut self.profile_nanos[PHASE_COMPLETE];
                cell.0 += popped;
                cell.1 += t0.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Mirror of the sharded worker's submit path, with the record
    /// instantiated here (the spec never existed before this call) and
    /// ineligibility handled in place of the serial give-up.
    fn run_submit(
        &mut self,
        li: usize,
        id: JobId,
        record: TraceRecord,
        now: SimTime,
        arena: &PoolArena,
    ) {
        self.executed += 1;
        self.emit(ObsEvent::Kernel { kind: "submit" });
        let mut job = JobRecord::new(record.to_spec(id));
        job.submit(now).expect("streamed submissions fire once");
        self.emit(ObsEvent::Submit { job: id });
        let pool = self.lanes[li].pool;
        let resources = job.spec().resources;
        // SAFETY: `pool` is owned by this worker (PoolArena contract).
        let pool_ref = unsafe { arena.pool(pool) };
        if !pool_ref.is_eligible(resources) {
            // The serial give-up (unhardened): the job's only candidate
            // pool can never run it. The record parks in Submitted phase.
            self.unrunnable += 1;
            self.emit(ObsEvent::Unrunnable { job: id });
            if self.retain {
                self.finished.push(job);
            }
            return;
        }
        let outcome = pool_ref.submit_into(now, job.spec(), &mut self.actions);
        match outcome {
            SubmitKind::Dispatched => {
                self.emit(ObsEvent::PoolChosen { job: id, pool });
                self.jobs.insert(id, job);
                self.apply_batch(li, pool, now);
            }
            SubmitKind::Queued => {
                self.emit(ObsEvent::PoolChosen { job: id, pool });
                job.enqueue(now, pool).expect("job routed while at VPM");
                self.emit(ObsEvent::Enqueue { job: id, pool });
                self.jobs.insert(id, job);
            }
            SubmitKind::Ineligible => unreachable!("eligibility pre-checked"),
        }
        self.actions.clear();
    }

    /// Mirror of the sharded worker's complete path. No staleness check
    /// is needed: suspensions cancel their booking in the same call, so a
    /// superseded completion never survives in the queue to be delivered.
    fn run_complete(
        &mut self,
        li: usize,
        job: JobId,
        delivered: EventId,
        now: SimTime,
        arena: &PoolArena,
    ) {
        self.executed += 1;
        self.emit(ObsEvent::Kernel { kind: "complete" });
        let rec = self
            .jobs
            .get_mut(&job)
            .expect("delivered completion for a tracked job");
        debug_assert_eq!(
            rec.completion_event,
            Some(delivered),
            "immediate cancellation leaves no stale deliveries"
        );
        let JobPhase::Running { pool, machine } = rec.phase() else {
            unreachable!("live completion for non-running job");
        };
        rec.completion_event = None;
        rec.complete(now).expect("phase checked running");
        self.completed += 1;
        self.emit(ObsEvent::Complete { job, pool, machine });
        debug_assert_eq!(
            pool, self.lanes[li].pool,
            "jobs never leave their pinned pool"
        );
        // SAFETY: `pool` is owned by this worker.
        let was_running = unsafe { arena.pool(pool) }.release_into(now, job, &mut self.actions);
        assert!(was_running, "running job releases");
        let done = self.jobs.remove(&job).expect("presence checked");
        if self.retain {
            self.finished.push(done);
        }
        self.apply_batch(li, pool, now);
    }

    /// Mirror of the sharded worker's action drain, with queue effects
    /// applied immediately against the lane's own queue instead of being
    /// deferred to a barrier replay.
    fn apply_batch(&mut self, li: usize, pool: PoolId, now: SimTime) {
        if !self.actions.is_empty() {
            self.emit(ObsEvent::BatchStart { pool });
        }
        let actions = std::mem::take(&mut self.actions);
        for &action in &actions {
            match action {
                PoolAction::Started { job, machine, wall } => {
                    let ev = self.lanes[li].queue.schedule(now + wall, job);
                    let rec = self.jobs.get_mut(&job).expect("pool starts tracked jobs");
                    let from_queue = matches!(rec.phase(), JobPhase::Waiting { .. });
                    rec.start(now, pool, machine, wall)
                        .expect("pool starts only routed jobs");
                    rec.completion_event = Some(ev);
                    self.emit(ObsEvent::Dispatch {
                        job,
                        pool,
                        machine,
                        wall,
                        from_queue,
                    });
                }
                PoolAction::Suspended { job, machine } => {
                    let ev = self
                        .jobs
                        .get_mut(&job)
                        .expect("pool suspends tracked jobs")
                        .completion_event
                        .take()
                        .expect("running job has a booked completion");
                    let live = self.lanes[li].queue.cancel(ev);
                    assert!(live, "completion bookings lie strictly ahead of the epoch");
                    self.jobs
                        .get_mut(&job)
                        .expect("presence checked")
                        .suspend(now)
                        .expect("pool suspends only running jobs");
                    self.suspensions += 1;
                    self.emit(ObsEvent::Suspend { job, pool, machine });
                }
                PoolAction::Resumed { job, machine } => {
                    let rec = self.jobs.get_mut(&job).expect("pool resumes tracked jobs");
                    rec.resume(now).expect("pool resumes only suspended jobs");
                    let wall = rec.remaining_wall();
                    let ev = self.lanes[li].queue.schedule(now + wall, job);
                    self.jobs
                        .get_mut(&job)
                        .expect("presence checked")
                        .completion_event = Some(ev);
                    self.emit(ObsEvent::Resume { job, pool, machine });
                }
            }
        }
        self.actions = actions;
        self.actions.clear();
    }

    /// Packages the epoch's buffered progress plus the post-epoch
    /// lookahead/queue summary the coordinator schedules from.
    fn epoch_result(&mut self, epoch: Option<SimTime>) -> EpochResult {
        let mut pending = Vec::new();
        let mut next_local: Option<SimTime> = None;
        for lane in &mut self.lanes {
            for (m, records) in &lane.ahead {
                pending.push((
                    lane.pool.as_usize() as u16,
                    SimTime::from_minutes(*m),
                    records.len() as u32,
                ));
            }
            if let Some(t) = lane.queue.peek_time() {
                next_local = Some(next_local.map_or(t, |n| n.min(t)));
            }
        }
        EpochResult {
            shard: self.shard,
            epoch,
            emissions: std::mem::take(&mut self.emissions),
            completed: std::mem::take(&mut self.completed),
            suspensions: std::mem::take(&mut self.suspensions),
            unrunnable: std::mem::take(&mut self.unrunnable),
            executed: std::mem::take(&mut self.executed),
            pending,
            next_local,
            profile: std::mem::take(&mut self.profile_nanos),
        }
    }
}

/// Rejects every configuration the streaming kernel does not model.
/// Panics (rather than silently degrading like the sharded backend) so a
/// run outside the fast class is never mistaken for a streaming one.
fn validate(sim: &mut Simulator, workload: &WorkloadSpec) {
    assert!(
        sim.jobs.is_empty(),
        "streaming runs generate their own jobs; construct the Simulator with an empty spec list"
    );
    assert!(
        sim.policy.is_no_res(),
        "streaming backend supports only the NoRes fast class"
    );
    assert!(
        sim.initial.as_round_robin_mut().is_some(),
        "streaming backend requires round-robin initial scheduling"
    );
    assert!(
        sim.config.view_staleness.is_zero(),
        "streaming backend requires zero view staleness"
    );
    assert!(
        sim.config.topology.is_none(),
        "streaming backend does not model VPM topologies"
    );
    assert!(
        sim.config.failures.is_empty() && sim.config.fault_model.is_none(),
        "streaming backend does not model machine faults"
    );
    assert!(
        sim.config.lifecycle.is_none() && sim.config.drains.is_empty(),
        "streaming backend does not model machine lifecycle"
    );
    assert!(
        !sim.config.resilience.enabled,
        "streaming backend does not model scheduler resilience"
    );
    assert!(
        !sim.config.check_invariants && !sim.config.telemetry && !sim.config.spans,
        "built-in dense-id observers cannot run on the streaming backend \
         (ctx.jobs stays empty until drain)"
    );
    if let Err(err) = workload.validate_pool_major(sim.pool_count) {
        panic!("streaming workload contract violated: {err}");
    }
}

/// Entry point from [`Simulator::run_streaming`].
pub(crate) fn run_streaming(
    mut sim: Simulator,
    workload: &WorkloadSpec,
    seed: u64,
    shards: usize,
) -> SimOutput {
    validate(&mut sim, workload);
    let pool_count = sim.pool_count as usize;
    let pinned: Vec<u16> = workload
        .streams
        .iter()
        .map(|s| s.pinned_pool().expect("validated pool-major"))
        .collect();
    // Finished records are retained only for observer runs; benchmark
    // runs drop them at completion, which is what keeps memory flat.
    let retain = !sim.observers.is_empty();
    let collect = retain;
    // Observer replay reads pool state at the barrier, so pipelining
    // (workers mutating pools while the coordinator replays) is only
    // sound without observers.
    let pipeline = sim.config.stream_pipeline && !collect;
    let profile_on = sim.profile.is_some();
    if let Some(profile) = sim.profile.as_mut() {
        profile.init_shards(shards);
    }
    let reference_queue = sim.config.use_reference_queue;
    let spec_ref = workload;
    let pinned_ref = &pinned;

    std::thread::scope(|scope| {
        let (result_tx, result_rx) = mpsc::channel::<EpochResult>();
        let mut work_txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<FlushMsg>();
            work_txs.push(tx);
            let results = result_tx.clone();
            handles.push(scope.spawn(move || {
                let mut worker = StreamWorker::new(
                    shard,
                    shards,
                    spec_ref,
                    seed,
                    pinned_ref,
                    pool_count as u16,
                    reference_queue,
                    retain,
                    collect,
                    profile_on,
                );
                let t0 = std::time::Instant::now();
                worker.prime();
                let primed = worker.epoch_result(None);
                crate::sharded::add_worker_busy_nanos(t0.elapsed().as_nanos() as u64);
                if results.send(primed).is_err() {
                    return (worker.jobs, worker.finished);
                }
                while let Ok(msg) = rx.recv() {
                    let t0 = std::time::Instant::now();
                    worker.run_epoch(msg.epoch, &msg.bases, &msg.arena);
                    let result = worker.epoch_result(Some(msg.epoch));
                    crate::sharded::add_worker_busy_nanos(t0.elapsed().as_nanos() as u64);
                    if results.send(result).is_err() {
                        break;
                    }
                }
                (worker.jobs, worker.finished)
            }));
        }
        drop(result_tx);

        // Scheduling state: per-pool pending minutes (each ≤ LOOKAHEAD
        // deep), per-shard earliest local booking, both wholesale-replaced
        // from each report after filtering out minutes already dispatched
        // (a pre-dispatched epoch's own minute would otherwise re-trigger
        // it and stall the pipeline).
        let mut pend: Vec<VecDeque<(SimTime, u32)>> = vec![VecDeque::new(); pool_count];
        let mut next_local: Vec<Option<SimTime>> = vec![None; shards];
        let mut inflight: VecDeque<SimTime> = VecDeque::new();
        let mut stash: Vec<EpochResult> = Vec::new();
        let mut last_dispatched: Option<SimTime> = None;
        let mut next_job_id: u64 = 0;
        let mut events: u64 = 0;
        let mut end_time = SimTime::ZERO;
        let mut bases: Vec<(u16, u64)> = Vec::new();

        macro_rules! apply_report {
            ($r:expr) => {{
                let r = $r;
                sim.counters.completed += r.completed;
                sim.counters.suspensions += r.suspensions;
                sim.counters.unrunnable += r.unrunnable;
                for p in (r.shard..pool_count).step_by(shards) {
                    pend[p].clear();
                }
                for &(p, m, n) in &r.pending {
                    if last_dispatched.map_or(true, |l| m > l) {
                        pend[p as usize].push_back((m, n));
                    }
                }
                next_local[r.shard] = r
                    .next_local
                    .filter(|&m| last_dispatched.map_or(true, |l| m > l));
                if let Some(profile) = sim.profile.as_mut() {
                    for (phase, &(items, nanos)) in r.profile.iter().enumerate() {
                        profile.record_shard(r.shard, phase, nanos, items);
                    }
                }
                r
            }};
        }

        macro_rules! dispatch {
            ($e:expr) => {{
                let e: SimTime = $e;
                bases.clear();
                for p in 0..pool_count {
                    if pend[p].front().map(|&(m, _)| m) == Some(e) {
                        let (_, n) = pend[p].pop_front().expect("front checked");
                        bases.push((p as u16, next_job_id));
                        next_job_id += u64::from(n);
                    }
                }
                let arena = PoolArena::of(&mut sim);
                for tx in &work_txs {
                    tx.send(FlushMsg {
                        epoch: e,
                        bases: bases.clone(),
                        arena,
                    })
                    .expect("worker alive while coordinator runs");
                }
                inflight.push_back(e);
                last_dispatched = Some(e);
                // The dispatched minute is now the workers' problem; a
                // next_local entry at it must not re-trigger dispatch.
                for nl in next_local.iter_mut() {
                    if *nl == Some(e) {
                        *nl = None;
                    }
                }
            }};
        }

        for _ in 0..shards {
            let r = result_rx.recv().expect("worker panicked while priming");
            debug_assert!(r.epoch.is_none(), "first report is the priming one");
            apply_report!(&r);
        }

        loop {
            let next_known: Option<SimTime> = pend
                .iter()
                .filter_map(|d| d.front().map(|&(m, _)| m))
                .chain(next_local.iter().flatten().copied())
                .min();
            let next_sample = sim.peek_sample_tick();
            if inflight.is_empty() {
                let Some(e) = next_known else {
                    // Drained. Mirror the serial run's trailing tick: the
                    // first tick at which the sampler observes completion.
                    if let Some(t) = next_sample {
                        sim.record_sample(t);
                        sim.consume_sample_tick();
                        events += 1;
                        end_time = end_time.max(t);
                    }
                    break;
                };
                if let Some(s) = next_sample {
                    if s <= e {
                        // Quiescent barrier: safe to read pool state.
                        sim.record_sample(s);
                        sim.consume_sample_tick();
                        events += 1;
                        end_time = s;
                        continue;
                    }
                }
                dispatch!(e);
            } else {
                let succ =
                    last_dispatched.expect("inflight implies a dispatch") + SimDuration::MINUTE;
                let may_pipeline = pipeline
                    && inflight.len() < PIPELINE_DEPTH
                    && next_known == Some(succ)
                    && next_sample.is_none_or(|s| s > succ);
                if may_pipeline {
                    dispatch!(succ);
                    continue;
                }
                // Barrier: fold in the oldest in-flight epoch.
                let e = inflight.pop_front().expect("nonempty checked");
                let mut results: Vec<EpochResult> = Vec::with_capacity(shards);
                let mut i = 0;
                while i < stash.len() {
                    if stash[i].epoch == Some(e) {
                        results.push(stash.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                while results.len() < shards {
                    let r = result_rx.recv().expect("worker panicked during epoch");
                    if r.epoch == Some(e) {
                        results.push(r);
                    } else {
                        stash.push(r);
                    }
                }
                let t0 = profile_on.then(std::time::Instant::now);
                results.sort_by_key(|r| r.shard);
                let mut executed = 0u64;
                let mut emission_runs: Vec<Vec<(u32, ObsEvent)>> = Vec::new();
                for r in results {
                    let r = apply_report!(r);
                    executed += r.executed;
                    if collect {
                        emission_runs.push(r.emissions);
                    }
                }
                events += executed;
                if executed > 0 {
                    // A dispatched epoch can come up empty when the
                    // booking that announced it was cancelled since; the
                    // serial clock would not have moved either.
                    end_time = e;
                }
                if collect {
                    debug_assert!(inflight.is_empty(), "replay requires quiescent workers");
                    let emissions = merge_sorted_runs(emission_runs, |run| run.0);
                    let ctx = ObsCtx {
                        pools: &sim.pools,
                        jobs: &sim.jobs,
                        shadows: &sim.shadows,
                    };
                    for obs in &mut sim.observers {
                        for (_, event) in &emissions {
                            obs.on_replayed_event(e, event, &ctx);
                        }
                        obs.on_settle(e, &ctx);
                    }
                }
                if let Some(t0) = t0 {
                    let nanos = t0.elapsed().as_nanos() as u64;
                    if let Some(profile) = sim.profile.as_mut() {
                        profile.record_coord_phase(COORD_MERGE, nanos, 1);
                    }
                }
            }
        }

        drop(work_txs);
        let mut finished: Vec<JobRecord> = Vec::new();
        for handle in handles {
            let (jobs, mut fin) = handle.join().expect("worker thread panicked");
            assert!(jobs.is_empty(), "a drained run leaves no in-flight jobs");
            finished.append(&mut fin);
        }
        if retain {
            finished.sort_by_key(JobRecord::id);
            debug_assert_eq!(
                finished.len() as u64,
                next_job_id,
                "observer runs retain every generated job"
            );
            sim.jobs = finished;
        }
        sim.total_jobs = next_job_id;
        sim.finish_run(end_time, events)
    })
}
