//! Stochastic fault injection and the resilience policy the simulator
//! hardens itself with.
//!
//! The paper's future work is validating dynamic rescheduling on the live
//! platform — where hosts fail. This module turns the ad-hoc
//! [`MachineFailure`] escape hatch into a first-class fault subsystem:
//!
//! * [`FaultModel`] — deterministically generates a [`FaultPlan`] from the
//!   run's [`DetRng`]: per-machine exponential MTBF/MTTR outages,
//!   correlated pool-wide outages (a pool losing network connectivity to
//!   the virtual pool manager takes every machine in it down at once), and
//!   *flapping* machines whose failure/repair clocks run a configurable
//!   factor faster;
//! * [`FaultPlan`] — a validated outage schedule. Overlapping or touching
//!   intervals for the same machine are merged, so a later outage can
//!   never be cut short by an earlier outage's up-event (the seeding bug
//!   the ad-hoc path had);
//! * [`ResiliencePolicy`] — the scheduler-hardening knobs: per-job retry
//!   budgets with exponential backoff before re-dispatch after a failure
//!   eviction, and pool blacklisting that excludes recently-failed pools
//!   from `ResSus*` target selection for a cooldown window.

use netbatch_cluster::ids::{MachineId, PoolId};
use netbatch_sim_engine::rng::DetRng;
use netbatch_sim_engine::time::{SimDuration, SimTime};

use crate::simulator::MachineFailure;

/// One validated machine outage interval: down at `from`, back up at
/// `until` (`None` = never repaired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineOutage {
    /// The pool containing the machine.
    pub pool: PoolId,
    /// The machine that goes down.
    pub machine: MachineId,
    /// When the outage starts.
    pub from: SimTime,
    /// When the machine comes back; `None` = permanent failure.
    pub until: Option<SimTime>,
}

impl MachineOutage {
    fn key(&self) -> (u16, u32, u64) {
        (
            self.pool.as_u16(),
            self.machine.as_u32(),
            self.from.as_minutes(),
        )
    }

    /// True if `other` starts before (or exactly when) this outage ends —
    /// i.e. seeding both independently would let this outage's up-event
    /// resurrect the machine inside `other`.
    fn absorbs(&self, other: &MachineOutage) -> bool {
        match self.until {
            None => true,
            Some(until) => other.from <= until,
        }
    }
}

/// A validated, non-overlapping outage schedule, sorted by
/// `(pool, machine, start)`.
///
/// Construction normalizes the raw intervals per machine: overlapping or
/// touching outages merge into one (taking the later repair time; a
/// permanent outage swallows everything after it). This is what makes the
/// `MachineDown`/`MachineUp` event pairs the simulator seeds safe — every
/// up-event belongs to exactly one down-event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    outages: Vec<MachineOutage>,
}

impl FaultPlan {
    /// Normalizes a raw outage list into a plan.
    pub fn new(mut raw: Vec<MachineOutage>) -> Self {
        raw.sort_by_key(MachineOutage::key);
        let mut outages: Vec<MachineOutage> = Vec::with_capacity(raw.len());
        for o in raw {
            match outages.last_mut() {
                Some(last)
                    if last.pool == o.pool && last.machine == o.machine && last.absorbs(&o) =>
                {
                    last.until = match (last.until, o.until) {
                        (None, _) | (_, None) => None,
                        (Some(a), Some(b)) => Some(a.max(b)),
                    };
                }
                _ => outages.push(o),
            }
        }
        FaultPlan { outages }
    }

    /// Normalizes the ad-hoc [`MachineFailure`] escape hatch into a plan.
    pub fn from_failures(failures: &[MachineFailure]) -> Self {
        FaultPlan::new(
            failures
                .iter()
                .map(|f| MachineOutage {
                    pool: f.pool,
                    machine: f.machine,
                    from: f.at,
                    until: f.down_for.map(|d| f.at + d),
                })
                .collect(),
        )
    }

    /// Merges two plans into one normalized schedule.
    pub fn merge(self, other: FaultPlan) -> Self {
        let mut raw = self.outages;
        raw.extend(other.outages);
        FaultPlan::new(raw)
    }

    /// The validated outage intervals.
    pub fn outages(&self) -> &[MachineOutage] {
        &self.outages
    }

    /// Number of distinct outages after merging (the *effective* failure
    /// count — duplicate draws collapse here rather than silently
    /// shrinking a sweep's intensity).
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// The stable cause id of the outage covering `(pool, machine)` at
    /// instant `at`: its index in this normalized plan. Normalization
    /// sorts by `(pool, machine, start)` and merges overlaps, so the
    /// index is deterministic for a given run configuration — the id the
    /// provenance layer stamps on `MachineDown` fault audits.
    pub fn outage_id(&self, pool: PoolId, machine: MachineId, at: SimTime) -> Option<u32> {
        self.outages
            .iter()
            .position(|o| {
                o.pool == pool
                    && o.machine == machine
                    && o.from <= at
                    && o.until.is_none_or(|until| at < until)
            })
            .map(|i| i as u32)
    }

    /// Drops every outage starting at or after `horizon`.
    ///
    /// The generator never emits such intervals, but merged ad-hoc
    /// schedules (and lifecycle stagger arithmetic) can land a window
    /// exactly on the horizon end; seeding it would emit a `MachineDown`
    /// whose entire outage lies outside the modelled window — and, for a
    /// permanent interval, a dangling down-event with no matching
    /// `MachineUp` for the invariant checker's alternation rule to pair.
    pub fn clamp_to(mut self, horizon: SimDuration) -> Self {
        self.outages
            .retain(|o| o.from.as_minutes() < horizon.as_minutes());
        self
    }
}

/// A stochastic fault model, deterministic given a seed.
///
/// Every machine alternates exponentially distributed up intervals (mean
/// [`FaultModel::mtbf`]) and down intervals (mean [`FaultModel::mttr`])
/// over the generation horizon. A configurable fraction of machines
/// *flaps*: their failure and repair clocks run [`FaultModel::flaky_accel`]
/// times faster, producing many short outages. On top, whole-pool outages
/// model a pool dropping off the VPM's network: every machine in the
/// chosen pool goes down for one exponentially distributed interval.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Mean time between failures per machine.
    pub mtbf: SimDuration,
    /// Mean time to repair per outage.
    pub mttr: SimDuration,
    /// Generation window: no outage starts at or after this horizon.
    pub horizon: SimDuration,
    /// Number of correlated whole-pool outages to inject.
    pub pool_outages: u32,
    /// Mean duration of a whole-pool outage.
    pub pool_outage_mttr: SimDuration,
    /// Fraction of machines (in `[0, 1]`) whose clocks flap.
    pub flaky_fraction: f64,
    /// How many times faster a flapping machine's MTBF/MTTR clocks run.
    pub flaky_accel: u32,
}

impl FaultModel {
    /// A plain MTBF/MTTR model with no correlated outages or flapping.
    pub fn new(mtbf: SimDuration, mttr: SimDuration, horizon: SimDuration) -> Self {
        FaultModel {
            mtbf,
            mttr,
            horizon,
            pool_outages: 0,
            pool_outage_mttr: SimDuration::from_hours(4),
            flaky_fraction: 0.0,
            flaky_accel: 16,
        }
    }

    /// Adds `n` correlated whole-pool outages of mean duration `mttr`.
    pub fn with_pool_outages(mut self, n: u32, mttr: SimDuration) -> Self {
        self.pool_outages = n;
        self.pool_outage_mttr = mttr;
        self
    }

    /// Makes `fraction` of the machines flap with `accel`-times-faster
    /// failure/repair clocks.
    pub fn with_flaky(mut self, fraction: f64, accel: u32) -> Self {
        self.flaky_fraction = fraction.clamp(0.0, 1.0);
        self.flaky_accel = accel.max(1);
        self
    }

    /// Generates the outage schedule for a site described as
    /// `(pool id, machine count)` pairs. Deterministic: the same seed and
    /// site shape always produce the same plan, independent of any other
    /// randomness in the run (the generator draws from its own named
    /// [`DetRng`] substreams).
    pub fn generate(&self, pools: &[(PoolId, u32)], seed: u64) -> FaultPlan {
        let rng = DetRng::from_seed_u64(seed);
        let horizon = self.horizon.as_minutes();
        let mut raw = Vec::new();
        let mut global = 0u64;
        for &(pool, machines) in pools {
            for m in 0..machines {
                let mut r = rng.stream_indexed("fault-machine", global);
                global += 1;
                let flaky = self.flaky_fraction > 0.0 && r.next_f64() < self.flaky_fraction;
                let accel = if flaky {
                    u64::from(self.flaky_accel)
                } else {
                    1
                };
                let mtbf = (self.mtbf.as_minutes() / accel).max(1);
                let mttr = (self.mttr.as_minutes() / accel).max(1);
                let mut t = 0u64;
                loop {
                    t = t.saturating_add(exp_minutes(&mut r, mtbf));
                    if t >= horizon {
                        break;
                    }
                    let down = exp_minutes(&mut r, mttr);
                    raw.push(MachineOutage {
                        pool,
                        machine: MachineId(m),
                        from: SimTime::from_minutes(t),
                        until: Some(SimTime::from_minutes(t.saturating_add(down))),
                    });
                    t = t.saturating_add(down);
                }
            }
        }
        if self.pool_outages > 0 && !pools.is_empty() {
            let mut r = rng.stream("fault-pool");
            for _ in 0..self.pool_outages {
                let (pool, machines) = pools[r.next_below(pools.len() as u64) as usize];
                let from = r.next_below(horizon.max(1));
                let down = exp_minutes(&mut r, self.pool_outage_mttr.as_minutes().max(1));
                for m in 0..machines {
                    raw.push(MachineOutage {
                        pool,
                        machine: MachineId(m),
                        from: SimTime::from_minutes(from),
                        until: Some(SimTime::from_minutes(from.saturating_add(down))),
                    });
                }
            }
        }
        FaultPlan::new(raw)
    }
}

/// One exponential draw with the given mean, rounded up to whole minutes
/// (minimum 1, so outages and up-intervals always advance time).
fn exp_minutes(rng: &mut DetRng, mean_minutes: u64) -> u64 {
    let u = rng.next_f64();
    let draw = -(1.0 - u).ln() * mean_minutes as f64;
    // Cap a single draw at 64 mean lengths: keeps the arithmetic far from
    // overflow without visibly truncating the distribution (P < 2e-28).
    draw.min(mean_minutes as f64 * 64.0).ceil().max(1.0) as u64
}

/// Why a machine enters a lifecycle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    /// A scheduled maintenance window: drain, kill at the deadline,
    /// restore at the window end.
    Maintenance,
    /// One step of a rolling-update wave sweeping the pool in machine-id
    /// order; semantically a maintenance window, but bounded so at most a
    /// configured fraction of each pool is offline at once.
    RollingUpdate,
    /// An operator cordon: the machine accepts no new work but is never
    /// killed — residents run (and may resume) to completion.
    Cordoned,
}

impl LifecycleKind {
    /// Stable label for traces and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            LifecycleKind::Maintenance => "maintenance",
            LifecycleKind::RollingUpdate => "rolling_update",
            LifecycleKind::Cordoned => "cordoned",
        }
    }
}

/// One validated lifecycle window for a machine.
///
/// The machine transitions Up → Draining at `drain_from`; if the window
/// carries a kill deadline (`down_from`), the machine goes Down there and
/// is restored at `until`; either way the drain ends (the machine
/// re-opens for placement) only at `until`, via an explicit drain-end
/// event — a fault repair inside the window never re-opens it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleWindow {
    /// The pool containing the machine.
    pub pool: PoolId,
    /// The machine the window applies to.
    pub machine: MachineId,
    /// Why the window exists (labelling only; semantics are carried by
    /// `down_from`).
    pub kind: LifecycleKind,
    /// When the machine stops accepting new work.
    pub drain_from: SimTime,
    /// When the machine is killed (the drain deadline); `None` = cordon,
    /// no kill.
    pub down_from: Option<SimTime>,
    /// When the window ends: the machine is restored (if killed) and
    /// re-opens for placement.
    pub until: SimTime,
}

impl LifecycleWindow {
    fn key(&self) -> (u16, u32, u64) {
        (
            self.pool.as_u16(),
            self.machine.as_u32(),
            self.drain_from.as_minutes(),
        )
    }

    /// The deadline evacuation races against: the kill instant for
    /// maintenance windows, the window end for cordons.
    pub fn deadline(&self) -> SimTime {
        self.down_from.unwrap_or(self.until)
    }
}

/// A validated machine-lifecycle schedule plus per-machine health scores,
/// mirroring [`FaultPlan`]'s normalization: windows are sorted by
/// `(pool, machine, drain_from)` and overlapping windows for the same
/// machine merge into one (earliest drain, earliest kill, latest end), so
/// the drain-start/drain-end event pairs the simulator seeds alternate
/// cleanly and at most one window is in force per machine at a time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LifecyclePlan {
    windows: Vec<LifecycleWindow>,
    /// Per-machine probe-derived health in per-mille, sorted by
    /// `(pool, machine)`. Machines absent from the list are fully healthy.
    health: Vec<(PoolId, MachineId, u32)>,
}

impl LifecyclePlan {
    /// Normalizes raw windows and health scores into a plan. Degenerate
    /// windows (`until <= drain_from`) are dropped.
    pub fn new(mut raw: Vec<LifecycleWindow>, mut health: Vec<(PoolId, MachineId, u32)>) -> Self {
        raw.retain(|w| w.drain_from < w.until);
        raw.sort_by_key(LifecycleWindow::key);
        let mut windows: Vec<LifecycleWindow> = Vec::with_capacity(raw.len());
        for w in raw {
            match windows.last_mut() {
                Some(last)
                    if last.pool == w.pool
                        && last.machine == w.machine
                        && w.drain_from <= last.until =>
                {
                    // Overlapping windows merge: the machine drains at the
                    // earlier start, dies at the earlier kill (a cordon
                    // overlapping a maintenance window inherits its kill),
                    // and re-opens at the later end.
                    last.down_from = match (last.down_from, w.down_from) {
                        (None, d) | (d, None) => d,
                        (Some(a), Some(b)) => Some(a.min(b)),
                    };
                    last.until = last.until.max(w.until);
                    if last.down_from.is_some() && last.kind == LifecycleKind::Cordoned {
                        last.kind = w.kind;
                    }
                }
                _ => windows.push(w),
            }
        }
        health.sort_by_key(|&(p, m, _)| (p.as_u16(), m.as_u32()));
        health.dedup_by_key(|&mut (p, m, _)| (p, m));
        LifecyclePlan { windows, health }
    }

    /// The validated lifecycle windows.
    pub fn windows(&self) -> &[LifecycleWindow] {
        &self.windows
    }

    /// Per-machine health scores in per-mille, sorted by `(pool, machine)`.
    pub fn health_scores(&self) -> &[(PoolId, MachineId, u32)] {
        &self.health
    }

    /// Number of windows after merging.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when the plan schedules nothing and scores nothing — the
    /// lifecycle-off fast path (no events seeded, byte-identical traces).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.health.is_empty()
    }

    /// The stable cause id of the window holding `(pool, machine)` in a
    /// drain at instant `at`: its index in this normalized plan (the
    /// lifecycle analogue of [`FaultPlan::outage_id`], stamped on
    /// evacuation audits).
    pub fn window_id(&self, pool: PoolId, machine: MachineId, at: SimTime) -> Option<u32> {
        self.windows
            .iter()
            .position(|w| {
                w.pool == pool && w.machine == machine && w.drain_from <= at && at < w.until
            })
            .map(|i| i as u32)
    }

    /// The kill intervals of this plan as machine outages, for merging
    /// into the run's [`FaultPlan`] — a stochastic fault overlapping a
    /// maintenance kill must collapse into one down/up pair, exactly like
    /// overlapping stochastic outages do.
    pub fn kill_outages(&self) -> Vec<MachineOutage> {
        self.windows
            .iter()
            .filter_map(|w| {
                w.down_from.map(|from| MachineOutage {
                    pool: w.pool,
                    machine: w.machine,
                    from,
                    until: Some(w.until),
                })
            })
            .collect()
    }

    /// Drops every window whose drain starts at or after `horizon`
    /// (the lifecycle analogue of [`FaultPlan::clamp_to`]).
    pub fn clamp_to(mut self, horizon: SimDuration) -> Self {
        self.windows
            .retain(|w| w.drain_from.as_minutes() < horizon.as_minutes());
        self
    }
}

/// A scheduled (not stochastic) machine-lifecycle model, deterministic
/// given a seed and site shape.
///
/// Three window sources, all clamped to the horizon:
///
/// * **maintenance** — every machine gets a periodic maintenance window,
///   staggered across the period in machine order so a pool never loses
///   all machines to maintenance at once;
/// * **rolling updates** — waves sweep each pool in machine-id order in
///   batches of at most `rolling_fraction` of the pool, each batch offline
///   for `rolling_duration`;
/// * **cordons** — machines whose probe-derived health falls below
///   `cordon_below_milli` are cordoned (no kill) for `cordon_duration`
///   starting a quarter of the way into the horizon, when the probes have
///   had time to accumulate.
///
/// Every kill is preceded by a `drain_lead`-long drain. Health scores are
/// probe-style: each machine answers [`LifecycleModel::probe_count`]
/// deterministic probes from its own [`DetRng`] substream; flaky machines
/// (re-derived from the *same* `fault-machine` substream draws the
/// [`FaultModel`] uses, so the two models agree on which machines flap)
/// fail probes at an accelerated rate, giving them visibly lower health.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleModel {
    /// Generation window: no window drains at or after this horizon.
    pub horizon: SimDuration,
    /// How long before a scheduled kill the machine starts draining.
    pub drain_lead: SimDuration,
    /// Period of per-machine maintenance windows; `ZERO` disables them.
    pub maintenance_every: SimDuration,
    /// Length of one maintenance outage (kill to restore).
    pub maintenance_duration: SimDuration,
    /// Number of rolling-update waves over the horizon; 0 disables them.
    pub rolling_waves: u32,
    /// Upper bound on the fraction of a pool offline per wave batch.
    pub rolling_fraction: f64,
    /// How long each wave batch stays down.
    pub rolling_duration: SimDuration,
    /// Cordon machines whose health (per-mille) falls below this; 0
    /// disables cordons.
    pub cordon_below_milli: u32,
    /// How long a cordon lasts.
    pub cordon_duration: SimDuration,
    /// Deterministic probes per machine backing the health score.
    pub probe_count: u32,
    /// Base probe failure probability for a healthy machine.
    pub probe_fail: f64,
    /// Flaky-machine knobs mirrored from the run's [`FaultModel`] so
    /// health correlates with flapping; zero fraction = uncorrelated.
    pub flaky_fraction: f64,
    /// Probe-failure acceleration for flaky machines.
    pub flaky_accel: u32,
}

impl LifecycleModel {
    /// An inert model over `horizon`: no windows, uniform default probes.
    pub fn new(horizon: SimDuration) -> Self {
        LifecycleModel {
            horizon,
            drain_lead: SimDuration::from_minutes(60),
            maintenance_every: SimDuration::ZERO,
            maintenance_duration: SimDuration::from_hours(2),
            rolling_waves: 0,
            rolling_fraction: 0.25,
            rolling_duration: SimDuration::from_hours(1),
            cordon_below_milli: 0,
            cordon_duration: SimDuration::from_hours(24),
            probe_count: 16,
            probe_fail: 0.03,
            flaky_fraction: 0.0,
            flaky_accel: 16,
        }
    }

    /// The default chaos-harness model: 48-hour maintenance cadence
    /// (2-hour windows), one rolling-update wave taking at most a quarter
    /// of each pool per batch, cordons below 0.5 health, 60-minute drain
    /// lead.
    pub fn standard(horizon: SimDuration) -> Self {
        LifecycleModel::new(horizon)
            .with_maintenance(SimDuration::from_hours(48), SimDuration::from_hours(2))
            .with_rolling(1, 0.25, SimDuration::from_hours(1))
            .with_cordon(500, SimDuration::from_hours(24))
    }

    /// Sets the drain lead before every scheduled kill.
    pub fn with_drain_lead(mut self, lead: SimDuration) -> Self {
        self.drain_lead = lead;
        self
    }

    /// Enables periodic maintenance windows.
    pub fn with_maintenance(mut self, every: SimDuration, duration: SimDuration) -> Self {
        self.maintenance_every = every;
        self.maintenance_duration = duration;
        self
    }

    /// Enables `waves` rolling-update waves with the given batch fraction
    /// and per-batch downtime.
    pub fn with_rolling(mut self, waves: u32, fraction: f64, duration: SimDuration) -> Self {
        self.rolling_waves = waves;
        self.rolling_fraction = fraction.clamp(0.0, 1.0);
        self.rolling_duration = duration;
        self
    }

    /// Cordons machines below `below_milli` health for `duration`.
    pub fn with_cordon(mut self, below_milli: u32, duration: SimDuration) -> Self {
        self.cordon_below_milli = below_milli.min(1000);
        self.cordon_duration = duration;
        self
    }

    /// Correlates probe failures with the fault model's flaky machines.
    pub fn with_flaky(mut self, fraction: f64, accel: u32) -> Self {
        self.flaky_fraction = fraction.clamp(0.0, 1.0);
        self.flaky_accel = accel.max(1);
        self
    }

    /// Rejects configurations that would panic or hang plan generation:
    /// non-positive horizons and durations, NaN or out-of-range fractions.
    pub fn validate(&self) -> Result<(), String> {
        if self.horizon.as_minutes() == 0 {
            return Err("lifecycle horizon must be positive".into());
        }
        if self.maintenance_every.as_minutes() > 0 && self.maintenance_duration.as_minutes() == 0 {
            return Err("lifecycle maintenance duration must be positive".into());
        }
        if self.rolling_waves > 0 {
            if self.rolling_fraction.is_nan()
                || self.rolling_fraction <= 0.0
                || self.rolling_fraction > 1.0
            {
                return Err(format!(
                    "lifecycle rolling fraction must be in (0, 1], got {}",
                    self.rolling_fraction
                ));
            }
            if self.rolling_duration.as_minutes() == 0 {
                return Err("lifecycle rolling duration must be positive".into());
            }
        }
        if self.cordon_below_milli > 0 && self.cordon_duration.as_minutes() == 0 {
            return Err("lifecycle cordon duration must be positive".into());
        }
        if self.probe_count == 0 {
            return Err("lifecycle probe count must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.probe_fail) || self.probe_fail.is_nan() {
            return Err(format!(
                "lifecycle probe failure rate must be in [0, 1], got {}",
                self.probe_fail
            ));
        }
        if !(0.0..=1.0).contains(&self.flaky_fraction) || self.flaky_fraction.is_nan() {
            return Err(format!(
                "lifecycle flaky fraction must be in [0, 1], got {}",
                self.flaky_fraction
            ));
        }
        Ok(())
    }

    /// Generates the lifecycle plan for a site described as
    /// `(pool id, machine count)` pairs. Deterministic: the same seed and
    /// site shape always produce the same plan, independent of any other
    /// randomness in the run.
    pub fn generate(&self, pools: &[(PoolId, u32)], seed: u64) -> LifecyclePlan {
        let rng = DetRng::from_seed_u64(seed);
        let horizon = self.horizon.as_minutes();
        let lead = self.drain_lead.as_minutes();
        let mut raw = Vec::new();

        // Probe-derived health, flaky-correlated: re-draw the fault
        // model's per-machine flaky coin from the same substream so both
        // models agree on which machines flap.
        let mut health = Vec::new();
        let mut global = 0u64;
        for &(pool, machines) in pools {
            for m in 0..machines {
                let flaky = self.flaky_fraction > 0.0 && {
                    let mut f = rng.stream_indexed("fault-machine", global);
                    f.next_f64() < self.flaky_fraction
                };
                let mut r = rng.stream_indexed("lifecycle-probe", global);
                global += 1;
                let p = if flaky {
                    (self.probe_fail * f64::from(self.flaky_accel)).min(0.75)
                } else {
                    self.probe_fail
                };
                let passed = (0..self.probe_count).filter(|_| r.next_f64() >= p).count();
                let milli = (passed as u64 * 1000 / u64::from(self.probe_count)) as u32;
                health.push((pool, MachineId(m), milli));
            }
        }

        // Scheduled maintenance, staggered across the period in machine
        // order so a pool never loses everything at once.
        let every = self.maintenance_every.as_minutes();
        if every > 0 {
            for &(pool, machines) in pools {
                for m in 0..machines {
                    let stagger =
                        every.saturating_mul(u64::from(m) + 1) / (u64::from(machines) + 1);
                    let mut k = 0u64;
                    loop {
                        let down = every.saturating_mul(k).saturating_add(stagger);
                        if down >= horizon {
                            break;
                        }
                        raw.push(LifecycleWindow {
                            pool,
                            machine: MachineId(m),
                            kind: LifecycleKind::Maintenance,
                            drain_from: SimTime::from_minutes(down.saturating_sub(lead)),
                            down_from: Some(SimTime::from_minutes(down)),
                            until: SimTime::from_minutes(
                                down.saturating_add(self.maintenance_duration.as_minutes().max(1)),
                            ),
                        });
                        k += 1;
                    }
                }
            }
        }

        // Rolling-update waves: evenly spaced over the horizon, sweeping
        // each pool in machine-id order in batches of at most
        // `rolling_fraction` of the pool.
        if self.rolling_waves > 0 && self.rolling_fraction > 0.0 {
            let step = self.rolling_duration.as_minutes().max(1);
            for w in 0..u64::from(self.rolling_waves) {
                let base = horizon.saturating_mul(w + 1) / (u64::from(self.rolling_waves) + 1);
                for &(pool, machines) in pools {
                    let batch =
                        ((f64::from(machines) * self.rolling_fraction).ceil() as u32).max(1);
                    for m in 0..machines {
                        let group = u64::from(m / batch);
                        let down = base.saturating_add(group.saturating_mul(step));
                        if down >= horizon {
                            continue;
                        }
                        raw.push(LifecycleWindow {
                            pool,
                            machine: MachineId(m),
                            kind: LifecycleKind::RollingUpdate,
                            drain_from: SimTime::from_minutes(down.saturating_sub(lead)),
                            down_from: Some(SimTime::from_minutes(down)),
                            until: SimTime::from_minutes(down.saturating_add(step)),
                        });
                    }
                }
            }
        }

        // Cordons: machines whose probes read below the threshold are
        // cordoned once the probes have had time to accumulate.
        if self.cordon_below_milli > 0 {
            let from = horizon / 4;
            for &(pool, machine, milli) in &health {
                if milli < self.cordon_below_milli && from < horizon {
                    raw.push(LifecycleWindow {
                        pool,
                        machine,
                        kind: LifecycleKind::Cordoned,
                        drain_from: SimTime::from_minutes(from),
                        down_from: None,
                        until: SimTime::from_minutes(
                            from.saturating_add(self.cordon_duration.as_minutes().max(1)),
                        ),
                    });
                }
            }
        }

        LifecyclePlan::new(raw, health).clamp_to(self.horizon)
    }
}

/// Scheduler-hardening knobs for fault-prone runs.
///
/// Disabled (the default) reproduces the seed behaviour exactly: evicted
/// jobs re-route through the VPM immediately, unboundedly, and policies
/// see every eligible pool. Enabled, the simulator applies:
///
/// * **retry budget + exponential backoff** — a job evicted by a failure
///   waits `backoff_base * 2^(attempt-1)` (capped at `backoff_cap`)
///   before re-dispatch, and gives up (reported unrunnable) after
///   `retry_budget` failure-driven retries;
/// * **pool blacklisting** — a pool that just lost a machine is excluded
///   from `ResSus*` rescheduling target selection for
///   `blacklist_cooldown`;
/// * **graceful degradation** — when every capable pool is fully down,
///   a retried job parks at the VPM for another backoff interval instead
///   of queueing on a dead pool or bouncing as unrunnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Master switch; `false` is bit-for-bit the unhardened behaviour.
    pub enabled: bool,
    /// Maximum failure-driven re-dispatches per job before it gives up.
    pub retry_budget: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Ceiling on the backoff delay.
    pub backoff_cap: SimDuration,
    /// How long a pool stays excluded from rescheduling targets after a
    /// machine failure in it.
    pub blacklist_cooldown: SimDuration,
    /// Proactively evacuate draining machines: when a drain with a kill
    /// deadline starts, jobs that cannot finish before the deadline (and
    /// all suspended residents) are rescheduled immediately instead of
    /// waiting for the kill. Off in both [`ResiliencePolicy::disabled`]
    /// and [`ResiliencePolicy::hardened`]; enabled via
    /// [`ResiliencePolicy::with_evacuation`] (the `--health-aware` CLI
    /// flag).
    pub evacuate_draining: bool,
}

impl ResiliencePolicy {
    /// The unhardened scheduler (seed behaviour).
    pub fn disabled() -> Self {
        ResiliencePolicy {
            enabled: false,
            retry_budget: 0,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
            blacklist_cooldown: SimDuration::ZERO,
            evacuate_draining: false,
        }
    }

    /// The hardened defaults used by the chaos harness: budget 8,
    /// backoff 2 min doubling to a 64-minute cap, 60-minute blacklist.
    pub fn hardened() -> Self {
        ResiliencePolicy {
            enabled: true,
            retry_budget: 8,
            backoff_base: SimDuration::from_minutes(2),
            backoff_cap: SimDuration::from_minutes(64),
            blacklist_cooldown: SimDuration::from_minutes(60),
            evacuate_draining: false,
        }
    }

    /// Turns on proactive evacuation of draining machines.
    pub fn with_evacuation(mut self) -> Self {
        self.evacuate_draining = true;
        self
    }

    /// The backoff delay before re-dispatch attempt `attempt` (1-based):
    /// `backoff_base * 2^(attempt-1)`, capped at `backoff_cap`, never
    /// zero (a zero delay would re-dispatch inside the eviction event).
    pub fn backoff_delay(&self, attempt: u32) -> SimDuration {
        let base = self.backoff_base.as_minutes().max(1);
        let cap = self.backoff_cap.as_minutes().max(base);
        let factor = 1u64 << attempt.saturating_sub(1).min(32);
        SimDuration::from_minutes(base.saturating_mul(factor).min(cap))
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outage(m: u32, from: u64, until: Option<u64>) -> MachineOutage {
        MachineOutage {
            pool: PoolId(0),
            machine: MachineId(m),
            from: SimTime::from_minutes(from),
            until: until.map(SimTime::from_minutes),
        }
    }

    #[test]
    fn overlapping_outages_merge_to_latest_repair() {
        // [10, 110) and [50, 60): the naive seeding would resurrect the
        // machine at 60; the plan merges to one [10, 110) interval.
        let plan = FaultPlan::new(vec![outage(0, 10, Some(110)), outage(0, 50, Some(60))]);
        assert_eq!(plan.outages(), &[outage(0, 10, Some(110))]);
        // Touching intervals merge too (up and down at the same minute
        // would race otherwise).
        let plan = FaultPlan::new(vec![outage(0, 10, Some(50)), outage(0, 50, Some(80))]);
        assert_eq!(plan.outages(), &[outage(0, 10, Some(80))]);
    }

    #[test]
    fn permanent_outage_swallows_later_intervals() {
        let plan = FaultPlan::new(vec![
            outage(0, 30, None),
            outage(0, 100, Some(120)),
            outage(1, 100, Some(120)),
        ]);
        assert_eq!(
            plan.outages(),
            &[outage(0, 30, None), outage(1, 100, Some(120))]
        );
    }

    #[test]
    fn disjoint_outages_stay_separate() {
        let plan = FaultPlan::new(vec![outage(0, 80, Some(90)), outage(0, 10, Some(20))]);
        assert_eq!(
            plan.outages(),
            &[outage(0, 10, Some(20)), outage(0, 80, Some(90))]
        );
    }

    #[test]
    fn from_failures_dedupes_identical_draws() {
        let f = MachineFailure {
            pool: PoolId(2),
            machine: MachineId(1),
            at: SimTime::from_minutes(100),
            down_for: Some(SimDuration::from_hours(12)),
        };
        let plan = FaultPlan::from_failures(&[f, f, f]);
        assert_eq!(plan.len(), 1, "duplicate (pool, machine, at) draws merge");
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let model = FaultModel::new(
            SimDuration::from_hours(24),
            SimDuration::from_hours(6),
            SimDuration::from_hours(24 * 7),
        )
        .with_pool_outages(2, SimDuration::from_hours(4))
        .with_flaky(0.25, 16);
        let pools = [(PoolId(0), 8u32), (PoolId(1), 4), (PoolId(2), 4)];
        let a = model.generate(&pools, 42);
        let b = model.generate(&pools, 42);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty(), "a week at 24h MTBF must produce outages");
        let horizon = SimDuration::from_hours(24 * 7).as_minutes();
        for o in a.outages() {
            assert!(
                o.from.as_minutes() < horizon,
                "outages start inside the horizon"
            );
            assert!(o.until.is_some(), "generated outages always repair");
        }
        let c = model.generate(&pools, 43);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn pool_outage_covers_every_machine() {
        let model = FaultModel::new(
            SimDuration::from_hours(1_000_000), // no per-machine outages
            SimDuration::from_hours(1),
            SimDuration::from_hours(24),
        )
        .with_pool_outages(1, SimDuration::from_hours(2));
        let pools = [(PoolId(0), 5u32), (PoolId(1), 3)];
        let plan = model.generate(&pools, 7);
        // One pool fully down: all its machines share the same interval.
        let hit: Vec<_> = plan.outages().iter().collect();
        assert!(hit.len() == 5 || hit.len() == 3, "one whole pool affected");
        let first = hit[0];
        assert!(hit
            .iter()
            .all(|o| o.pool == first.pool && o.from == first.from && o.until == first.until));
    }

    #[test]
    fn flaky_machines_fail_more_often() {
        let horizon = SimDuration::from_hours(24 * 7);
        let calm = FaultModel::new(
            SimDuration::from_hours(48),
            SimDuration::from_hours(2),
            horizon,
        );
        let flaky = calm.clone().with_flaky(1.0, 16);
        let pools = [(PoolId(0), 16u32)];
        let calm_n = calm.generate(&pools, 5).len();
        let flaky_n = flaky.generate(&pools, 5).len();
        assert!(
            flaky_n > calm_n * 4,
            "flapping ({flaky_n}) must dominate calm ({calm_n})"
        );
    }

    #[test]
    fn clamp_drops_outages_at_or_past_horizon() {
        // An interval starting exactly at the horizon end must be dropped,
        // not seeded: a permanent one would emit a dangling MachineDown
        // with no matching MachineUp for the checker's alternation rule.
        let horizon = SimDuration::from_minutes(100);
        let plan = FaultPlan::new(vec![
            outage(0, 99, Some(150)), // starts inside: kept (repair may overrun)
            outage(1, 100, None),     // starts exactly at horizon: dropped
            outage(2, 140, Some(160)),
        ])
        .clamp_to(horizon);
        assert_eq!(plan.outages(), &[outage(0, 99, Some(150))]);
    }

    fn window(m: u32, drain: u64, down: Option<u64>, until: u64) -> LifecycleWindow {
        LifecycleWindow {
            pool: PoolId(0),
            machine: MachineId(m),
            kind: if down.is_some() {
                LifecycleKind::Maintenance
            } else {
                LifecycleKind::Cordoned
            },
            drain_from: SimTime::from_minutes(drain),
            down_from: down.map(SimTime::from_minutes),
            until: SimTime::from_minutes(until),
        }
    }

    #[test]
    fn overlapping_lifecycle_windows_merge() {
        // A cordon overlapping a maintenance window inherits the kill and
        // the later end; seeding both independently would let the first
        // drain-end re-open a machine still inside the second window.
        let plan = LifecyclePlan::new(
            vec![window(0, 10, None, 60), window(0, 40, Some(80), 120)],
            vec![],
        );
        assert_eq!(plan.windows(), &[window(0, 10, Some(80), 120)]);
        assert_eq!(plan.windows()[0].kind, LifecycleKind::Maintenance);
        // Disjoint windows for the same machine stay separate.
        let plan = LifecyclePlan::new(
            vec![window(1, 200, Some(210), 230), window(1, 10, Some(20), 40)],
            vec![],
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.windows()[0].drain_from.as_minutes(), 10);
    }

    #[test]
    fn lifecycle_kill_outages_feed_the_fault_plan() {
        let plan = LifecyclePlan::new(
            vec![window(0, 10, Some(30), 60), window(1, 5, None, 50)],
            vec![],
        );
        let kills = plan.kill_outages();
        assert_eq!(kills, vec![outage(0, 30, Some(60))], "cordons never kill");
    }

    #[test]
    fn lifecycle_generation_is_deterministic_and_bounded() {
        let horizon = SimDuration::from_hours(24 * 7);
        let model = LifecycleModel::standard(horizon).with_flaky(0.25, 16);
        model.validate().expect("standard model validates");
        let pools = [(PoolId(0), 8u32), (PoolId(1), 4), (PoolId(2), 4)];
        let a = model.generate(&pools, 42);
        let b = model.generate(&pools, 42);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty());
        assert_eq!(a.health_scores().len(), 16, "every machine gets a score");
        for w in a.windows() {
            assert!(w.drain_from.as_minutes() < horizon.as_minutes());
            assert!(w.drain_from < w.until);
            if let Some(down) = w.down_from {
                assert!(w.drain_from <= down && down < w.until);
            }
        }
        let c = model.generate(&pools, 43);
        assert_ne!(
            a.health_scores(),
            c.health_scores(),
            "different seed, different probes"
        );
    }

    #[test]
    fn rolling_wave_bounds_offline_fraction() {
        let horizon = SimDuration::from_hours(24);
        let model = LifecycleModel::new(horizon)
            .with_rolling(1, 0.25, SimDuration::from_hours(1))
            .with_drain_lead(SimDuration::ZERO);
        let pools = [(PoolId(0), 8u32)];
        let plan = model.generate(&pools, 1);
        assert_eq!(plan.len(), 8, "every machine gets exactly one window");
        // At any minute, at most ceil(8 * 0.25) = 2 machines are down.
        for t in 0..horizon.as_minutes() {
            let down = plan
                .windows()
                .iter()
                .filter(|w| {
                    w.down_from.is_some_and(|d| d.as_minutes() <= t) && t < w.until.as_minutes()
                })
                .count();
            assert!(down <= 2, "minute {t}: {down} machines down, cap is 2");
        }
    }

    #[test]
    fn flaky_machines_probe_lower_health_and_get_cordoned() {
        let horizon = SimDuration::from_hours(24 * 7);
        let calm = LifecycleModel::new(horizon).with_cordon(500, SimDuration::from_hours(24));
        let flaky = calm.clone().with_flaky(1.0, 16);
        let pools = [(PoolId(0), 16u32)];
        let calm_plan = calm.generate(&pools, 5);
        let flaky_plan = flaky.generate(&pools, 5);
        let avg = |p: &LifecyclePlan| {
            p.health_scores()
                .iter()
                .map(|&(_, _, h)| u64::from(h))
                .sum::<u64>()
                / p.health_scores().len() as u64
        };
        assert!(
            avg(&flaky_plan) + 200 < avg(&calm_plan),
            "flaky probes ({}) must read well below calm ({})",
            avg(&flaky_plan),
            avg(&calm_plan)
        );
        assert!(calm_plan.windows().is_empty(), "healthy site: no cordons");
        assert!(
            !flaky_plan.windows().is_empty(),
            "flaky site: low-health machines get cordoned"
        );
        assert!(flaky_plan
            .windows()
            .iter()
            .all(|w| w.kind == LifecycleKind::Cordoned && w.down_from.is_none()));
    }

    #[test]
    fn lifecycle_validation_rejects_bad_knobs() {
        let horizon = SimDuration::from_hours(24);
        assert!(LifecycleModel::new(SimDuration::ZERO).validate().is_err());
        let mut m = LifecycleModel::new(horizon).with_rolling(1, 0.5, SimDuration::from_hours(1));
        m.rolling_fraction = f64::NAN;
        assert!(m.validate().is_err(), "NaN fraction rejected");
        m.rolling_fraction = -0.5;
        assert!(m.validate().is_err(), "negative fraction rejected");
        m.rolling_fraction = 0.5;
        m.rolling_duration = SimDuration::ZERO;
        assert!(m.validate().is_err(), "zero rolling duration rejected");
        let mut m = LifecycleModel::new(horizon);
        m.probe_fail = 1.5;
        assert!(m.validate().is_err(), "probe failure rate > 1 rejected");
        assert!(LifecycleModel::standard(horizon).validate().is_ok());
    }

    #[test]
    fn cause_ids_are_stable_plan_indices() {
        let plan = FaultPlan::new(vec![
            outage(0, 80, Some(90)),
            outage(0, 10, Some(20)),
            outage(1, 30, None),
        ]);
        // Sorted order: (m0, 10), (m0, 80), (m1, 30).
        let at = SimTime::from_minutes;
        assert_eq!(plan.outage_id(PoolId(0), MachineId(0), at(10)), Some(0));
        assert_eq!(plan.outage_id(PoolId(0), MachineId(0), at(85)), Some(1));
        assert_eq!(
            plan.outage_id(PoolId(0), MachineId(1), at(9999)),
            Some(2),
            "permanent outage covers forever"
        );
        assert_eq!(
            plan.outage_id(PoolId(0), MachineId(0), at(20)),
            None,
            "repair instant is outside the outage"
        );

        let plan = LifecyclePlan::new(
            vec![window(1, 200, Some(210), 230), window(1, 10, Some(20), 40)],
            vec![],
        );
        assert_eq!(plan.window_id(PoolId(0), MachineId(1), at(10)), Some(0));
        assert_eq!(plan.window_id(PoolId(0), MachineId(1), at(229)), Some(1));
        assert_eq!(plan.window_id(PoolId(0), MachineId(1), at(40)), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = ResiliencePolicy::hardened();
        assert_eq!(p.backoff_delay(1).as_minutes(), 2);
        assert_eq!(p.backoff_delay(2).as_minutes(), 4);
        assert_eq!(p.backoff_delay(5).as_minutes(), 32);
        assert_eq!(p.backoff_delay(6).as_minutes(), 64);
        assert_eq!(p.backoff_delay(7).as_minutes(), 64, "capped");
        assert_eq!(p.backoff_delay(60).as_minutes(), 64, "no shift overflow");
    }
}
