//! Stochastic fault injection and the resilience policy the simulator
//! hardens itself with.
//!
//! The paper's future work is validating dynamic rescheduling on the live
//! platform — where hosts fail. This module turns the ad-hoc
//! [`MachineFailure`] escape hatch into a first-class fault subsystem:
//!
//! * [`FaultModel`] — deterministically generates a [`FaultPlan`] from the
//!   run's [`DetRng`]: per-machine exponential MTBF/MTTR outages,
//!   correlated pool-wide outages (a pool losing network connectivity to
//!   the virtual pool manager takes every machine in it down at once), and
//!   *flapping* machines whose failure/repair clocks run a configurable
//!   factor faster;
//! * [`FaultPlan`] — a validated outage schedule. Overlapping or touching
//!   intervals for the same machine are merged, so a later outage can
//!   never be cut short by an earlier outage's up-event (the seeding bug
//!   the ad-hoc path had);
//! * [`ResiliencePolicy`] — the scheduler-hardening knobs: per-job retry
//!   budgets with exponential backoff before re-dispatch after a failure
//!   eviction, and pool blacklisting that excludes recently-failed pools
//!   from `ResSus*` target selection for a cooldown window.

use netbatch_cluster::ids::{MachineId, PoolId};
use netbatch_sim_engine::rng::DetRng;
use netbatch_sim_engine::time::{SimDuration, SimTime};

use crate::simulator::MachineFailure;

/// One validated machine outage interval: down at `from`, back up at
/// `until` (`None` = never repaired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineOutage {
    /// The pool containing the machine.
    pub pool: PoolId,
    /// The machine that goes down.
    pub machine: MachineId,
    /// When the outage starts.
    pub from: SimTime,
    /// When the machine comes back; `None` = permanent failure.
    pub until: Option<SimTime>,
}

impl MachineOutage {
    fn key(&self) -> (u16, u32, u64) {
        (
            self.pool.as_u16(),
            self.machine.as_u32(),
            self.from.as_minutes(),
        )
    }

    /// True if `other` starts before (or exactly when) this outage ends —
    /// i.e. seeding both independently would let this outage's up-event
    /// resurrect the machine inside `other`.
    fn absorbs(&self, other: &MachineOutage) -> bool {
        match self.until {
            None => true,
            Some(until) => other.from <= until,
        }
    }
}

/// A validated, non-overlapping outage schedule, sorted by
/// `(pool, machine, start)`.
///
/// Construction normalizes the raw intervals per machine: overlapping or
/// touching outages merge into one (taking the later repair time; a
/// permanent outage swallows everything after it). This is what makes the
/// `MachineDown`/`MachineUp` event pairs the simulator seeds safe — every
/// up-event belongs to exactly one down-event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    outages: Vec<MachineOutage>,
}

impl FaultPlan {
    /// Normalizes a raw outage list into a plan.
    pub fn new(mut raw: Vec<MachineOutage>) -> Self {
        raw.sort_by_key(MachineOutage::key);
        let mut outages: Vec<MachineOutage> = Vec::with_capacity(raw.len());
        for o in raw {
            match outages.last_mut() {
                Some(last)
                    if last.pool == o.pool && last.machine == o.machine && last.absorbs(&o) =>
                {
                    last.until = match (last.until, o.until) {
                        (None, _) | (_, None) => None,
                        (Some(a), Some(b)) => Some(a.max(b)),
                    };
                }
                _ => outages.push(o),
            }
        }
        FaultPlan { outages }
    }

    /// Normalizes the ad-hoc [`MachineFailure`] escape hatch into a plan.
    pub fn from_failures(failures: &[MachineFailure]) -> Self {
        FaultPlan::new(
            failures
                .iter()
                .map(|f| MachineOutage {
                    pool: f.pool,
                    machine: f.machine,
                    from: f.at,
                    until: f.down_for.map(|d| f.at + d),
                })
                .collect(),
        )
    }

    /// Merges two plans into one normalized schedule.
    pub fn merge(self, other: FaultPlan) -> Self {
        let mut raw = self.outages;
        raw.extend(other.outages);
        FaultPlan::new(raw)
    }

    /// The validated outage intervals.
    pub fn outages(&self) -> &[MachineOutage] {
        &self.outages
    }

    /// Number of distinct outages after merging (the *effective* failure
    /// count — duplicate draws collapse here rather than silently
    /// shrinking a sweep's intensity).
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }
}

/// A stochastic fault model, deterministic given a seed.
///
/// Every machine alternates exponentially distributed up intervals (mean
/// [`FaultModel::mtbf`]) and down intervals (mean [`FaultModel::mttr`])
/// over the generation horizon. A configurable fraction of machines
/// *flaps*: their failure and repair clocks run [`FaultModel::flaky_accel`]
/// times faster, producing many short outages. On top, whole-pool outages
/// model a pool dropping off the VPM's network: every machine in the
/// chosen pool goes down for one exponentially distributed interval.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Mean time between failures per machine.
    pub mtbf: SimDuration,
    /// Mean time to repair per outage.
    pub mttr: SimDuration,
    /// Generation window: no outage starts at or after this horizon.
    pub horizon: SimDuration,
    /// Number of correlated whole-pool outages to inject.
    pub pool_outages: u32,
    /// Mean duration of a whole-pool outage.
    pub pool_outage_mttr: SimDuration,
    /// Fraction of machines (in `[0, 1]`) whose clocks flap.
    pub flaky_fraction: f64,
    /// How many times faster a flapping machine's MTBF/MTTR clocks run.
    pub flaky_accel: u32,
}

impl FaultModel {
    /// A plain MTBF/MTTR model with no correlated outages or flapping.
    pub fn new(mtbf: SimDuration, mttr: SimDuration, horizon: SimDuration) -> Self {
        FaultModel {
            mtbf,
            mttr,
            horizon,
            pool_outages: 0,
            pool_outage_mttr: SimDuration::from_hours(4),
            flaky_fraction: 0.0,
            flaky_accel: 16,
        }
    }

    /// Adds `n` correlated whole-pool outages of mean duration `mttr`.
    pub fn with_pool_outages(mut self, n: u32, mttr: SimDuration) -> Self {
        self.pool_outages = n;
        self.pool_outage_mttr = mttr;
        self
    }

    /// Makes `fraction` of the machines flap with `accel`-times-faster
    /// failure/repair clocks.
    pub fn with_flaky(mut self, fraction: f64, accel: u32) -> Self {
        self.flaky_fraction = fraction.clamp(0.0, 1.0);
        self.flaky_accel = accel.max(1);
        self
    }

    /// Generates the outage schedule for a site described as
    /// `(pool id, machine count)` pairs. Deterministic: the same seed and
    /// site shape always produce the same plan, independent of any other
    /// randomness in the run (the generator draws from its own named
    /// [`DetRng`] substreams).
    pub fn generate(&self, pools: &[(PoolId, u32)], seed: u64) -> FaultPlan {
        let rng = DetRng::from_seed_u64(seed);
        let horizon = self.horizon.as_minutes();
        let mut raw = Vec::new();
        let mut global = 0u64;
        for &(pool, machines) in pools {
            for m in 0..machines {
                let mut r = rng.stream_indexed("fault-machine", global);
                global += 1;
                let flaky = self.flaky_fraction > 0.0 && r.next_f64() < self.flaky_fraction;
                let accel = if flaky {
                    u64::from(self.flaky_accel)
                } else {
                    1
                };
                let mtbf = (self.mtbf.as_minutes() / accel).max(1);
                let mttr = (self.mttr.as_minutes() / accel).max(1);
                let mut t = 0u64;
                loop {
                    t = t.saturating_add(exp_minutes(&mut r, mtbf));
                    if t >= horizon {
                        break;
                    }
                    let down = exp_minutes(&mut r, mttr);
                    raw.push(MachineOutage {
                        pool,
                        machine: MachineId(m),
                        from: SimTime::from_minutes(t),
                        until: Some(SimTime::from_minutes(t.saturating_add(down))),
                    });
                    t = t.saturating_add(down);
                }
            }
        }
        if self.pool_outages > 0 && !pools.is_empty() {
            let mut r = rng.stream("fault-pool");
            for _ in 0..self.pool_outages {
                let (pool, machines) = pools[r.next_below(pools.len() as u64) as usize];
                let from = r.next_below(horizon.max(1));
                let down = exp_minutes(&mut r, self.pool_outage_mttr.as_minutes().max(1));
                for m in 0..machines {
                    raw.push(MachineOutage {
                        pool,
                        machine: MachineId(m),
                        from: SimTime::from_minutes(from),
                        until: Some(SimTime::from_minutes(from.saturating_add(down))),
                    });
                }
            }
        }
        FaultPlan::new(raw)
    }
}

/// One exponential draw with the given mean, rounded up to whole minutes
/// (minimum 1, so outages and up-intervals always advance time).
fn exp_minutes(rng: &mut DetRng, mean_minutes: u64) -> u64 {
    let u = rng.next_f64();
    let draw = -(1.0 - u).ln() * mean_minutes as f64;
    // Cap a single draw at 64 mean lengths: keeps the arithmetic far from
    // overflow without visibly truncating the distribution (P < 2e-28).
    draw.min(mean_minutes as f64 * 64.0).ceil().max(1.0) as u64
}

/// Scheduler-hardening knobs for fault-prone runs.
///
/// Disabled (the default) reproduces the seed behaviour exactly: evicted
/// jobs re-route through the VPM immediately, unboundedly, and policies
/// see every eligible pool. Enabled, the simulator applies:
///
/// * **retry budget + exponential backoff** — a job evicted by a failure
///   waits `backoff_base * 2^(attempt-1)` (capped at `backoff_cap`)
///   before re-dispatch, and gives up (reported unrunnable) after
///   `retry_budget` failure-driven retries;
/// * **pool blacklisting** — a pool that just lost a machine is excluded
///   from `ResSus*` rescheduling target selection for
///   `blacklist_cooldown`;
/// * **graceful degradation** — when every capable pool is fully down,
///   a retried job parks at the VPM for another backoff interval instead
///   of queueing on a dead pool or bouncing as unrunnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Master switch; `false` is bit-for-bit the unhardened behaviour.
    pub enabled: bool,
    /// Maximum failure-driven re-dispatches per job before it gives up.
    pub retry_budget: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Ceiling on the backoff delay.
    pub backoff_cap: SimDuration,
    /// How long a pool stays excluded from rescheduling targets after a
    /// machine failure in it.
    pub blacklist_cooldown: SimDuration,
}

impl ResiliencePolicy {
    /// The unhardened scheduler (seed behaviour).
    pub fn disabled() -> Self {
        ResiliencePolicy {
            enabled: false,
            retry_budget: 0,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
            blacklist_cooldown: SimDuration::ZERO,
        }
    }

    /// The hardened defaults used by the chaos harness: budget 8,
    /// backoff 2 min doubling to a 64-minute cap, 60-minute blacklist.
    pub fn hardened() -> Self {
        ResiliencePolicy {
            enabled: true,
            retry_budget: 8,
            backoff_base: SimDuration::from_minutes(2),
            backoff_cap: SimDuration::from_minutes(64),
            blacklist_cooldown: SimDuration::from_minutes(60),
        }
    }

    /// The backoff delay before re-dispatch attempt `attempt` (1-based):
    /// `backoff_base * 2^(attempt-1)`, capped at `backoff_cap`, never
    /// zero (a zero delay would re-dispatch inside the eviction event).
    pub fn backoff_delay(&self, attempt: u32) -> SimDuration {
        let base = self.backoff_base.as_minutes().max(1);
        let cap = self.backoff_cap.as_minutes().max(base);
        let factor = 1u64 << attempt.saturating_sub(1).min(32);
        SimDuration::from_minutes(base.saturating_mul(factor).min(cap))
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outage(m: u32, from: u64, until: Option<u64>) -> MachineOutage {
        MachineOutage {
            pool: PoolId(0),
            machine: MachineId(m),
            from: SimTime::from_minutes(from),
            until: until.map(SimTime::from_minutes),
        }
    }

    #[test]
    fn overlapping_outages_merge_to_latest_repair() {
        // [10, 110) and [50, 60): the naive seeding would resurrect the
        // machine at 60; the plan merges to one [10, 110) interval.
        let plan = FaultPlan::new(vec![outage(0, 10, Some(110)), outage(0, 50, Some(60))]);
        assert_eq!(plan.outages(), &[outage(0, 10, Some(110))]);
        // Touching intervals merge too (up and down at the same minute
        // would race otherwise).
        let plan = FaultPlan::new(vec![outage(0, 10, Some(50)), outage(0, 50, Some(80))]);
        assert_eq!(plan.outages(), &[outage(0, 10, Some(80))]);
    }

    #[test]
    fn permanent_outage_swallows_later_intervals() {
        let plan = FaultPlan::new(vec![
            outage(0, 30, None),
            outage(0, 100, Some(120)),
            outage(1, 100, Some(120)),
        ]);
        assert_eq!(
            plan.outages(),
            &[outage(0, 30, None), outage(1, 100, Some(120))]
        );
    }

    #[test]
    fn disjoint_outages_stay_separate() {
        let plan = FaultPlan::new(vec![outage(0, 80, Some(90)), outage(0, 10, Some(20))]);
        assert_eq!(
            plan.outages(),
            &[outage(0, 10, Some(20)), outage(0, 80, Some(90))]
        );
    }

    #[test]
    fn from_failures_dedupes_identical_draws() {
        let f = MachineFailure {
            pool: PoolId(2),
            machine: MachineId(1),
            at: SimTime::from_minutes(100),
            down_for: Some(SimDuration::from_hours(12)),
        };
        let plan = FaultPlan::from_failures(&[f, f, f]);
        assert_eq!(plan.len(), 1, "duplicate (pool, machine, at) draws merge");
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let model = FaultModel::new(
            SimDuration::from_hours(24),
            SimDuration::from_hours(6),
            SimDuration::from_hours(24 * 7),
        )
        .with_pool_outages(2, SimDuration::from_hours(4))
        .with_flaky(0.25, 16);
        let pools = [(PoolId(0), 8u32), (PoolId(1), 4), (PoolId(2), 4)];
        let a = model.generate(&pools, 42);
        let b = model.generate(&pools, 42);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty(), "a week at 24h MTBF must produce outages");
        let horizon = SimDuration::from_hours(24 * 7).as_minutes();
        for o in a.outages() {
            assert!(
                o.from.as_minutes() < horizon,
                "outages start inside the horizon"
            );
            assert!(o.until.is_some(), "generated outages always repair");
        }
        let c = model.generate(&pools, 43);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn pool_outage_covers_every_machine() {
        let model = FaultModel::new(
            SimDuration::from_hours(1_000_000), // no per-machine outages
            SimDuration::from_hours(1),
            SimDuration::from_hours(24),
        )
        .with_pool_outages(1, SimDuration::from_hours(2));
        let pools = [(PoolId(0), 5u32), (PoolId(1), 3)];
        let plan = model.generate(&pools, 7);
        // One pool fully down: all its machines share the same interval.
        let hit: Vec<_> = plan.outages().iter().collect();
        assert!(hit.len() == 5 || hit.len() == 3, "one whole pool affected");
        let first = hit[0];
        assert!(hit
            .iter()
            .all(|o| o.pool == first.pool && o.from == first.from && o.until == first.until));
    }

    #[test]
    fn flaky_machines_fail_more_often() {
        let horizon = SimDuration::from_hours(24 * 7);
        let calm = FaultModel::new(
            SimDuration::from_hours(48),
            SimDuration::from_hours(2),
            horizon,
        );
        let flaky = calm.clone().with_flaky(1.0, 16);
        let pools = [(PoolId(0), 16u32)];
        let calm_n = calm.generate(&pools, 5).len();
        let flaky_n = flaky.generate(&pools, 5).len();
        assert!(
            flaky_n > calm_n * 4,
            "flapping ({flaky_n}) must dominate calm ({calm_n})"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = ResiliencePolicy::hardened();
        assert_eq!(p.backoff_delay(1).as_minutes(), 2);
        assert_eq!(p.backoff_delay(2).as_minutes(), 4);
        assert_eq!(p.backoff_delay(5).as_minutes(), 32);
        assert_eq!(p.backoff_delay(6).as_minutes(), 64);
        assert_eq!(p.backoff_delay(7).as_minutes(), 64, "capped");
        assert_eq!(p.backoff_delay(60).as_minutes(), 64, "no shift overflow");
    }
}
