//! Live run telemetry: a metrics registry, job-lifecycle spans, per-pool
//! time series and Prometheus-style exposition.
//!
//! The paper's entire argument rests on time-resolved observability —
//! Figure 2's suspension CDF, Figure 4's suspension/utilization timeline
//! and the Tables are all *measurements of a running cluster*. This
//! module turns the [`SimObserver`] seam into that measurement plane:
//! [`Telemetry`] is an observer that, riding the same event stream the
//! trace recorder and invariant checker consume, maintains
//!
//! * **event counters** per transition kind (deterministic, sim-domain);
//! * **job-lifecycle spans** — queued→dispatched, suspended→resumed,
//!   submitted→completed intervals matched in O(1) against per-job state
//!   and aggregated into per-phase [`SpanCollector`] latency histograms
//!   (time-in-queue, time-suspended, restart-wasted-work), both globally
//!   and per pool;
//! * a **per-pool time-series sampler** (utilization, queue depth, down
//!   machines, suspended jobs) driven by the existing per-minute sample
//!   tick, feeding [`TimeSeries`];
//! * a **Table-1-shape summary** (suspend rate, AvgCT, AvgST, AvgWCT)
//!   accumulated online at job completion, so the paper's headline
//!   numbers come straight from telemetry without re-scanning traces.
//!
//! Everything renders three ways: [`Telemetry::render_prom`] writes the
//! Prometheus text exposition (`netbatch simulate --metrics-out`),
//! [`Telemetry::render_markdown`] the single-run report behind
//! `netbatch report`, and the `*_csv` methods the plottable series
//! (Figure 2 CDF, Figure 4 timeline, per-pool stats).
//!
//! Like every observer, telemetry costs nothing when not attached: the
//! simulator's emit path returns before building the event when the
//! observer list is empty. [`Registry`] additionally supports an
//! explicit disabled mode for embedding in code that cannot rely on
//! that seam.
//!
//! Determinism: all state is sim-domain (counts, sim-minutes, series);
//! no wall clock is read anywhere in this module, so the `Debug`
//! rendering — and the full exposition — is byte-identical across
//! same-seed runs.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use netbatch_cluster::ids::{JobId, PoolId};
use netbatch_cluster::snapshot::PoolSnapshot;
use netbatch_metrics::cdf::Cdf;
use netbatch_metrics::export::{MetricKind, PromWriter};
use netbatch_metrics::histogram::LogHistogram;
use netbatch_metrics::spans::SpanCollector;
use netbatch_metrics::summary::OnlineStats;
use netbatch_metrics::table::{fmt_minutes, fmt_percent, Table};
use netbatch_metrics::timeseries::TimeSeries;
use netbatch_sim_engine::time::{SimDuration, SimTime};

use crate::observer::{ObsCtx, ObsEvent, PhaseTag, ReschedKind, SimObserver};

/// Span phase: time spent in a pool wait queue.
pub const PHASE_QUEUE_WAIT: &str = "queue_wait";
/// Span phase: time spent suspended on a machine.
pub const PHASE_SUSPENDED: &str = "suspended";
/// Span phase: submission-to-completion latency.
pub const PHASE_COMPLETION: &str = "completion";
/// Span phase: execution progress discarded by a restart.
pub const PHASE_RESTART_WASTE: &str = "restart_waste";
/// Span phase: booked failure-retry backoff delays.
pub const PHASE_RETRY_BACKOFF: &str = "retry_backoff";

/// Figure 4 aggregates the per-minute samples into 100-minute buckets.
pub const TIMELINE_BUCKET: SimDuration = SimDuration::from_minutes(100);

/// Labels of the counted event kinds, in [`event_index`] order. Kernel
/// and batch markers are filtered out before counting.
const EVENT_KINDS: [&str; 26] = [
    "submit",
    "pool_chosen",
    "unrunnable",
    "dispatch",
    "enqueue",
    "suspend",
    "resume",
    "restart_from_suspend",
    "restart_from_wait",
    "migrate",
    "failure_evict",
    "wait_timeout",
    "duplicate",
    "proxy_finish",
    "complete",
    "machine_down",
    "machine_up",
    "retry_backoff",
    "blacklist",
    "sample",
    "machine_draining",
    "machine_undrained",
    "evacuation",
    "policy_audit",
    "evac_audit",
    "fault_audit",
];

/// The [`EVENT_KINDS`] slot for a counted event. Counting through a
/// fixed array instead of a label-keyed map keeps the per-event cost to
/// one indexed add — this runs on every observed transition.
fn event_index(event: &ObsEvent) -> usize {
    match event {
        ObsEvent::Submit { .. } => 0,
        ObsEvent::PoolChosen { .. } => 1,
        ObsEvent::Unrunnable { .. } => 2,
        ObsEvent::Dispatch { .. } => 3,
        ObsEvent::Enqueue { .. } => 4,
        ObsEvent::Suspend { .. } => 5,
        ObsEvent::Resume { .. } => 6,
        ObsEvent::Reschedule { kind, .. } => match kind {
            ReschedKind::RestartFromSuspend => 7,
            ReschedKind::RestartFromWait => 8,
            ReschedKind::Migrate => 9,
            ReschedKind::FailureEvict => 10,
            ReschedKind::Evacuation => 22,
        },
        ObsEvent::WaitTimeout { .. } => 11,
        ObsEvent::DuplicateLaunched { .. } => 12,
        ObsEvent::ProxyFinish { .. } => 13,
        ObsEvent::Complete { .. } => 14,
        ObsEvent::MachineDown { .. } => 15,
        ObsEvent::MachineUp { .. } => 16,
        ObsEvent::RetryScheduled { .. } => 17,
        ObsEvent::PoolBlacklisted { .. } => 18,
        ObsEvent::Sample => 19,
        ObsEvent::MachineDraining { .. } => 20,
        ObsEvent::MachineUndrained { .. } => 21,
        ObsEvent::PolicyAudit { .. } => 23,
        ObsEvent::EvacAudit { .. } => 24,
        ObsEvent::FaultAudit { .. } => 25,
        ObsEvent::Kernel { .. } | ObsEvent::BatchStart { .. } => {
            unreachable!("markers are filtered before counting")
        }
    }
}

type LabelSet = Vec<(String, String)>;

/// A general-purpose metrics registry: counters, gauges and
/// [`LogHistogram`]-backed histograms, keyed by metric name and label
/// set, with deterministic (BTreeMap-ordered) rendering to the
/// Prometheus text format.
///
/// Recording into a disabled registry ([`Registry::disabled`]) is a
/// no-op that performs no allocation — the zero-cost-when-disabled
/// contract for call sites that cannot gate on an observer seam.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    enabled: bool,
    families: BTreeMap<&'static str, (&'static str, MetricKind)>,
    counters: BTreeMap<(&'static str, LabelSet), u64>,
    gauges: BTreeMap<(&'static str, LabelSet), f64>,
    histograms: BTreeMap<(&'static str, LabelSet), LogHistogram>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            enabled: true,
            families: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// A disabled registry: every recording call returns immediately.
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            ..Registry::new()
        }
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Declares a metric family's help text and type. Recording methods
    /// auto-declare undocumented families, so this is optional but makes
    /// the exposition self-describing.
    pub fn declare(&mut self, name: &'static str, help: &'static str, kind: MetricKind) {
        if !self.enabled {
            return;
        }
        self.families.entry(name).or_insert((help, kind));
    }

    fn key(name: &'static str, labels: &[(&str, &str)]) -> (&'static str, LabelSet) {
        (
            name,
            labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        )
    }

    /// Adds `by` to a counter.
    pub fn inc(&mut self, name: &'static str, labels: &[(&str, &str)], by: u64) {
        if !self.enabled {
            return;
        }
        self.declare(name, "(undocumented)", MetricKind::Counter);
        *self.counters.entry(Self::key(name, labels)).or_insert(0) += by;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge(&mut self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled {
            return;
        }
        self.declare(name, "(undocumented)", MetricKind::Gauge);
        self.gauges.insert(Self::key(name, labels), value);
    }

    /// Records one observation into a decade histogram.
    pub fn observe(&mut self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        if !self.enabled {
            return;
        }
        self.declare(name, "(undocumented)", MetricKind::Histogram);
        self.histograms
            .entry(Self::key(name, labels))
            .or_insert_with(LogHistogram::decades)
            .record(value);
    }

    /// Installs a pre-aggregated histogram under `name{labels}` (for
    /// layers that maintain their own [`LogHistogram`]s and render
    /// through the registry).
    pub fn insert_histogram(
        &mut self,
        name: &'static str,
        labels: &[(&str, &str)],
        hist: LogHistogram,
    ) {
        if !self.enabled {
            return;
        }
        self.declare(name, "(undocumented)", MetricKind::Histogram);
        self.histograms.insert(Self::key(name, labels), hist);
    }

    /// A counter's current value (0 if never incremented).
    pub fn counter_value(&self, name: &'static str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&Self::key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// A gauge's current value, if set.
    pub fn gauge_value(&self, name: &'static str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&Self::key(name, labels)).copied()
    }

    /// Renders the full exposition, families in name order and samples in
    /// label order within each family — byte-deterministic.
    pub fn render(&self) -> String {
        let mut w = PromWriter::new();
        for (&name, &(help, kind)) in &self.families {
            w.family(name, help, kind);
            for ((n, labels), v) in &self.counters {
                if *n == name {
                    w.sample(name, &borrow_labels(labels), *v as f64);
                }
            }
            for ((n, labels), v) in &self.gauges {
                if *n == name {
                    w.sample(name, &borrow_labels(labels), *v);
                }
            }
            for ((n, labels), h) in &self.histograms {
                if *n == name {
                    w.histogram(name, &borrow_labels(labels), h);
                }
            }
        }
        w.finish()
    }
}

fn borrow_labels(labels: &LabelSet) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

/// Per-job lifecycle accounting, updated from the event stream only.
///
/// Open span starts live here rather than in a keyed map: job ids are
/// dense, so begin/end matching is one `Vec` index instead of an
/// ordered-map operation per transition — the difference between fitting
/// the 1.2x overhead budget and not.
#[derive(Debug, Clone, Copy, Default)]
struct JobTrack {
    submit_at: Option<SimTime>,
    queue_since: Option<SimTime>,
    susp_since: Option<SimTime>,
    wait_min: u64,
    susp_min: u64,
    waste_min: u64,
    suspended_ever: bool,
    done: bool,
}

/// Per-pool sampled series (one point per sample tick).
#[derive(Debug, Clone, Default)]
struct PoolSeries {
    utilization_pct: TimeSeries,
    queue_depth: TimeSeries,
    suspended: TimeSeries,
    down_machines: TimeSeries,
    draining_machines: TimeSeries,
    health: TimeSeries,
    machines: u64,
}

/// The Table-1-shape numbers telemetry accumulates online.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySummary {
    /// Jobs that reached a terminal state (completed + unrunnable),
    /// shadow duplicates excluded.
    pub total_jobs: u64,
    /// Completed jobs that were suspended at least once.
    pub suspended_jobs: u64,
    /// `suspended_jobs / total_jobs` (0 when empty).
    pub suspend_rate: f64,
    /// Mean completion time over all completed jobs, minutes.
    pub avg_ct_all: f64,
    /// Mean completion time over suspended jobs, minutes.
    pub avg_ct_suspended: f64,
    /// Mean total suspension time over suspended jobs, minutes.
    pub avg_st: f64,
    /// Mean wasted completion time (wait + suspend + discarded progress)
    /// over all completed jobs, minutes.
    pub avg_wct: f64,
    /// When the run drained, minutes.
    pub end_minutes: u64,
}

/// The live-telemetry observer. See the module docs for what it records.
///
/// Attach via [`SimConfig::telemetry`](crate::simulator::SimConfig) (the
/// simulator then constructs one with the config's strategy labels) or
/// manually through
/// [`Simulator::attach_observer`](crate::simulator::Simulator::attach_observer),
/// and retrieve from the finished run with
/// [`SimOutput::observer::<Telemetry>()`](crate::simulator::SimOutput::observer).
#[derive(Clone)]
pub struct Telemetry {
    strategy: &'static str,
    initial: &'static str,
    events: [u64; EVENT_KINDS.len()],
    spans: SpanCollector,
    jobs: Vec<JobTrack>,
    queue_wait_by_pool: Vec<LogHistogram>,
    suspended_by_pool: Vec<LogHistogram>,
    pools: Vec<PoolSeries>,
    site_utilization_pct: TimeSeries,
    site_suspended: TimeSeries,
    site_waiting: TimeSeries,
    site_down_machines: TimeSeries,
    ct_all: OnlineStats,
    ct_susp: OnlineStats,
    st: OnlineStats,
    wait_all: OnlineStats,
    susp_all: OnlineStats,
    waste_all: OnlineStats,
    susp_totals: Vec<f64>,
    evacuations: u64,
    evac_discarded: LogHistogram,
    unrunnable: u64,
    unmatched_ends: u64,
    samples: u64,
    end_time: SimTime,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Everything here is sim-domain and deterministic; kept compact
        // because SimOutput's debug rendering rides the determinism suite.
        f.debug_struct("Telemetry")
            .field("strategy", &self.strategy)
            .field("initial", &self.initial)
            .field("events", &self.events.iter().sum::<u64>())
            .field("samples", &self.samples)
            .field("completed", &self.ct_all.count())
            .field("open_spans", &self.open_spans())
            .finish()
    }
}

impl Telemetry {
    /// A fresh telemetry observer, labelled with the run's policy axes.
    pub fn new(strategy: &'static str, initial: &'static str) -> Self {
        Telemetry {
            strategy,
            initial,
            events: [0; EVENT_KINDS.len()],
            spans: SpanCollector::new(),
            jobs: Vec::new(),
            queue_wait_by_pool: Vec::new(),
            suspended_by_pool: Vec::new(),
            pools: Vec::new(),
            site_utilization_pct: TimeSeries::new(),
            site_suspended: TimeSeries::new(),
            site_waiting: TimeSeries::new(),
            site_down_machines: TimeSeries::new(),
            ct_all: OnlineStats::new(),
            ct_susp: OnlineStats::new(),
            st: OnlineStats::new(),
            wait_all: OnlineStats::new(),
            susp_all: OnlineStats::new(),
            waste_all: OnlineStats::new(),
            susp_totals: Vec::new(),
            evacuations: 0,
            evac_discarded: LogHistogram::decades(),
            unrunnable: 0,
            unmatched_ends: 0,
            samples: 0,
            end_time: SimTime::ZERO,
        }
    }

    // ---- accessors ----

    /// Event counts per transition kind seen at least once (markers
    /// excluded), in label order.
    pub fn event_counts(&self) -> BTreeMap<&'static str, u64> {
        EVENT_KINDS
            .iter()
            .zip(self.events)
            .filter(|&(_, n)| n > 0)
            .map(|(&kind, n)| (kind, n))
            .collect()
    }

    /// The lifecycle span collector (per-phase latency histograms).
    pub fn spans(&self) -> &SpanCollector {
        &self.spans
    }

    /// Queue-wait latency histogram for one pool, if any span closed there.
    pub fn pool_queue_wait(&self, pool: PoolId) -> Option<&LogHistogram> {
        self.queue_wait_by_pool
            .get(pool.as_usize())
            .filter(|h| h.count() > 0)
    }

    /// Suspension latency histogram for one pool, if any span closed there.
    pub fn pool_suspended(&self, pool: PoolId) -> Option<&LogHistogram> {
        self.suspended_by_pool
            .get(pool.as_usize())
            .filter(|h| h.count() > 0)
    }

    /// Per-job total suspension times (suspended completed jobs only) as
    /// the Figure 2 CDF.
    pub fn suspension_cdf(&self) -> Cdf {
        self.susp_totals.iter().copied().collect()
    }

    /// Site-wide utilization samples, percent.
    pub fn site_utilization_pct(&self) -> &TimeSeries {
        &self.site_utilization_pct
    }

    /// Site-wide suspended-job samples.
    pub fn site_suspended(&self) -> &TimeSeries {
        &self.site_suspended
    }

    /// Sample ticks observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Proactive evacuations off draining machines observed.
    pub fn evacuations(&self) -> u64 {
        self.evacuations
    }

    /// Progress discarded by evacuations, as a minutes histogram.
    pub fn evacuation_discarded(&self) -> &LogHistogram {
        &self.evac_discarded
    }

    /// Lifecycle spans still open — jobs still queued, suspended, or
    /// submitted but not finished. Zero after a drained run.
    pub fn open_spans(&self) -> u64 {
        self.jobs
            .iter()
            .map(|t| {
                u64::from(t.queue_since.is_some())
                    + u64::from(t.susp_since.is_some())
                    + u64::from(!t.done && t.submit_at.is_some())
            })
            .sum()
    }

    /// Span-close transitions that arrived with no matching open span.
    /// Zero in a well-formed event stream.
    pub fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }

    /// The Table-1-shape summary accumulated online at job completion.
    pub fn summary(&self) -> TelemetrySummary {
        let total = self.ct_all.count() + self.unrunnable;
        TelemetrySummary {
            total_jobs: total,
            suspended_jobs: self.st.count(),
            suspend_rate: if total == 0 {
                0.0
            } else {
                self.st.count() as f64 / total as f64
            },
            avg_ct_all: self.ct_all.mean(),
            avg_ct_suspended: self.ct_susp.mean(),
            avg_st: self.st.mean(),
            avg_wct: self.wait_all.mean() + self.susp_all.mean() + self.waste_all.mean(),
            end_minutes: self.end_time.as_minutes(),
        }
    }

    // ---- event plumbing ----

    fn track(&mut self, job: JobId) -> &mut JobTrack {
        let i = job.as_usize();
        if i >= self.jobs.len() {
            self.jobs.resize(i + 1, JobTrack::default());
        }
        &mut self.jobs[i]
    }

    fn end_queue_span(&mut self, job: JobId, pool: PoolId, now: SimTime) {
        let Some(opened) = self.track(job).queue_since.take() else {
            self.unmatched_ends += 1;
            return;
        };
        let len = now.since(opened);
        self.spans.observe(PHASE_QUEUE_WAIT, len);
        pool_hist(&mut self.queue_wait_by_pool, pool).record(len.as_minutes() as f64);
        self.jobs[job.as_usize()].wait_min += len.as_minutes();
    }

    fn end_suspend_span(&mut self, job: JobId, pool: PoolId, now: SimTime) {
        let Some(opened) = self.track(job).susp_since.take() else {
            self.unmatched_ends += 1;
            return;
        };
        let len = now.since(opened);
        self.spans.observe(PHASE_SUSPENDED, len);
        pool_hist(&mut self.suspended_by_pool, pool).record(len.as_minutes() as f64);
        self.jobs[job.as_usize()].susp_min += len.as_minutes();
    }

    fn finish_job(&mut self, job: JobId, now: SimTime, ctx: &ObsCtx<'_>) {
        let shadow = ctx.shadows.contains(&job);
        let t = self.track(job);
        if t.done {
            return;
        }
        t.done = true;
        let ct = t.submit_at.map(|opened| now.since(opened));
        let (wait, susp, waste, suspended) =
            (t.wait_min, t.susp_min, t.waste_min, t.suspended_ever);
        match ct {
            Some(len) => self.spans.observe(PHASE_COMPLETION, len),
            None => self.unmatched_ends += 1,
        }
        if shadow {
            // Shadow duplicates are mechanism bookkeeping, not submitted
            // jobs: their spans feed the phase histograms (above) but not
            // the reported population.
            return;
        }
        let ct_min = ct.map(|d| d.as_minutes() as f64).unwrap_or(0.0);
        self.ct_all.push(ct_min);
        self.wait_all.push(wait as f64);
        self.susp_all.push(susp as f64);
        self.waste_all.push(waste as f64);
        if suspended {
            self.ct_susp.push(ct_min);
            self.st.push(susp as f64);
            self.susp_totals.push(susp as f64);
        }
    }

    fn sample(&mut self, now: SimTime, ctx: &ObsCtx<'_>) {
        self.samples += 1;
        if self.pools.len() < ctx.pools.len() {
            self.pools.resize(ctx.pools.len(), PoolSeries::default());
        }
        let (mut busy, mut total) = (0u64, 0u64);
        let (mut suspended, mut waiting, mut down) = (0usize, 0usize, 0usize);
        for (i, pool) in ctx.pools.iter().enumerate() {
            let s = PoolSnapshot::capture(pool);
            let series = &mut self.pools[i];
            series.utilization_pct.push(now, s.utilization() * 100.0);
            series.queue_depth.push(now, s.waiting as f64);
            series.suspended.push(now, s.suspended as f64);
            series.down_machines.push(now, s.down_machines as f64);
            series
                .draining_machines
                .push(now, s.draining_machines as f64);
            series.health.push(now, s.health());
            series.machines = s.machines as u64;
            busy += u64::from(s.busy_cores);
            total += u64::from(s.total_cores);
            suspended += s.suspended;
            waiting += s.waiting;
            down += s.down_machines;
        }
        let util_pct = if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64 * 100.0
        };
        self.site_utilization_pct.push(now, util_pct);
        self.site_suspended.push(now, suspended as f64);
        self.site_waiting.push(now, waiting as f64);
        self.site_down_machines.push(now, down as f64);
    }

    // ---- rendering ----

    /// Renders the Prometheus text exposition of the whole run. The
    /// output is deterministic and always passes
    /// [`validate_exposition`].
    pub fn render_prom(&self) -> String {
        let mut reg = Registry::new();
        reg.declare(
            "netbatch_run_info",
            "Run metadata carried as labels; value is always 1.",
            MetricKind::Gauge,
        );
        reg.gauge(
            "netbatch_run_info",
            &[("strategy", self.strategy), ("initial", self.initial)],
            1.0,
        );
        reg.declare(
            "netbatch_run_end_minutes",
            "Sim-time instant the run drained.",
            MetricKind::Gauge,
        );
        reg.gauge(
            "netbatch_run_end_minutes",
            &[],
            self.end_time.as_minutes() as f64,
        );
        reg.declare(
            "netbatch_samples_total",
            "Per-minute sample ticks observed.",
            MetricKind::Counter,
        );
        reg.inc("netbatch_samples_total", &[], self.samples);
        reg.declare(
            "netbatch_events_total",
            "Observed lifecycle transitions by kind.",
            MetricKind::Counter,
        );
        for (kind, n) in self.event_counts() {
            reg.inc("netbatch_events_total", &[("kind", kind)], n);
        }
        let summary = self.summary();
        reg.declare(
            "netbatch_jobs_total",
            "Jobs that reached a terminal state (shadow duplicates excluded).",
            MetricKind::Gauge,
        );
        reg.gauge("netbatch_jobs_total", &[], summary.total_jobs as f64);
        reg.declare(
            "netbatch_jobs_suspended",
            "Completed jobs suspended at least once.",
            MetricKind::Gauge,
        );
        reg.gauge(
            "netbatch_jobs_suspended",
            &[],
            summary.suspended_jobs as f64,
        );
        reg.declare(
            "netbatch_suspend_rate",
            "Fraction of jobs suspended at least once.",
            MetricKind::Gauge,
        );
        reg.gauge("netbatch_suspend_rate", &[], summary.suspend_rate);
        reg.declare(
            "netbatch_avg_ct_minutes",
            "Mean completion time, by job scope.",
            MetricKind::Gauge,
        );
        reg.gauge(
            "netbatch_avg_ct_minutes",
            &[("scope", "all")],
            summary.avg_ct_all,
        );
        reg.gauge(
            "netbatch_avg_ct_minutes",
            &[("scope", "suspended")],
            summary.avg_ct_suspended,
        );
        reg.declare(
            "netbatch_avg_st_minutes",
            "Mean total suspension time over suspended jobs.",
            MetricKind::Gauge,
        );
        reg.gauge("netbatch_avg_st_minutes", &[], summary.avg_st);
        reg.declare(
            "netbatch_avg_wct_minutes",
            "Mean wasted completion time (wait + suspend + discarded progress).",
            MetricKind::Gauge,
        );
        reg.gauge("netbatch_avg_wct_minutes", &[], summary.avg_wct);
        reg.declare(
            "netbatch_phase_minutes",
            "Job-lifecycle span lengths by phase (shadow duplicates included).",
            MetricKind::Histogram,
        );
        for (&phase, hist) in self.spans.phases() {
            reg.insert_histogram("netbatch_phase_minutes", &[("phase", phase)], hist.clone());
        }
        reg.declare(
            "netbatch_pool_phase_minutes",
            "Queue-wait and suspension span lengths per pool.",
            MetricKind::Histogram,
        );
        for (phase, hists) in [
            (PHASE_QUEUE_WAIT, &self.queue_wait_by_pool),
            (PHASE_SUSPENDED, &self.suspended_by_pool),
        ] {
            for (i, h) in hists.iter().enumerate() {
                if h.count() > 0 {
                    reg.insert_histogram(
                        "netbatch_pool_phase_minutes",
                        &[("phase", phase), ("pool", &i.to_string())],
                        h.clone(),
                    );
                }
            }
        }
        reg.declare(
            "netbatch_span_open",
            "Lifecycle spans still open at run end (should be 0).",
            MetricKind::Gauge,
        );
        reg.gauge("netbatch_span_open", &[], self.open_spans() as f64);
        reg.declare(
            "netbatch_span_unmatched_total",
            "Span ends that arrived with no matching begin (should be 0).",
            MetricKind::Counter,
        );
        reg.inc("netbatch_span_unmatched_total", &[], self.unmatched_ends);
        reg.declare(
            "netbatch_evacuations_total",
            "Jobs proactively rescheduled off draining machines.",
            MetricKind::Counter,
        );
        reg.inc("netbatch_evacuations_total", &[], self.evacuations);
        if self.evac_discarded.count() > 0 {
            reg.declare(
                "netbatch_evacuation_discarded_minutes",
                "Execution progress discarded per evacuation.",
                MetricKind::Histogram,
            );
            reg.insert_histogram(
                "netbatch_evacuation_discarded_minutes",
                &[],
                self.evac_discarded.clone(),
            );
        }
        self.declare_pool_gauges(&mut reg);
        reg.render()
    }

    fn declare_pool_gauges(&self, reg: &mut Registry) {
        reg.declare(
            "netbatch_pool_machines",
            "Machines per pool (healthy or not) at the last sample.",
            MetricKind::Gauge,
        );
        reg.declare(
            "netbatch_pool_utilization_pct",
            "Core utilization per pool at the last sample, percent.",
            MetricKind::Gauge,
        );
        reg.declare(
            "netbatch_pool_utilization_mean_pct",
            "Time-weighted mean core utilization per pool, percent.",
            MetricKind::Gauge,
        );
        reg.declare(
            "netbatch_pool_queue_depth",
            "Wait-queue length per pool at the last sample.",
            MetricKind::Gauge,
        );
        reg.declare(
            "netbatch_pool_queue_depth_mean",
            "Time-weighted mean wait-queue length per pool.",
            MetricKind::Gauge,
        );
        reg.declare(
            "netbatch_pool_suspended_jobs",
            "Suspended jobs resident per pool at the last sample.",
            MetricKind::Gauge,
        );
        reg.declare(
            "netbatch_pool_down_machines",
            "Down machines per pool at the last sample.",
            MetricKind::Gauge,
        );
        reg.declare(
            "netbatch_pool_draining_machines",
            "Draining/cordoned machines per pool at the last sample.",
            MetricKind::Gauge,
        );
        reg.declare(
            "netbatch_pool_health",
            "Health-weighted effective capacity fraction per pool at the last sample.",
            MetricKind::Gauge,
        );
        for (i, series) in self.pools.iter().enumerate() {
            let pool = i.to_string();
            let labels: [(&str, &str); 1] = [("pool", &pool)];
            reg.gauge("netbatch_pool_machines", &labels, series.machines as f64);
            if let Some(&(_, last)) = series.utilization_pct.samples().last() {
                reg.gauge("netbatch_pool_utilization_pct", &labels, last);
            }
            reg.gauge(
                "netbatch_pool_utilization_mean_pct",
                &labels,
                series.utilization_pct.time_weighted_mean(),
            );
            if let Some(&(_, last)) = series.queue_depth.samples().last() {
                reg.gauge("netbatch_pool_queue_depth", &labels, last);
            }
            reg.gauge(
                "netbatch_pool_queue_depth_mean",
                &labels,
                series.queue_depth.time_weighted_mean(),
            );
            if let Some(&(_, last)) = series.suspended.samples().last() {
                reg.gauge("netbatch_pool_suspended_jobs", &labels, last);
            }
            if let Some(&(_, last)) = series.down_machines.samples().last() {
                reg.gauge("netbatch_pool_down_machines", &labels, last);
            }
            if let Some(&(_, last)) = series.draining_machines.samples().last() {
                reg.gauge("netbatch_pool_draining_machines", &labels, last);
            }
            if let Some(&(_, last)) = series.health.samples().last() {
                reg.gauge("netbatch_pool_health", &labels, last);
            }
        }
    }

    /// Renders the single-run markdown report: Table-1-shape summary,
    /// Figure 2 suspension CDF, Figure 4 site timeline and per-pool /
    /// per-phase breakdowns — all from telemetry state, no trace
    /// re-scanning.
    pub fn render_markdown(&self) -> String {
        let summary = self.summary();
        let mut out = String::new();
        let _ = writeln!(out, "## Summary (Table 1 shape)\n");
        let mut table = Table::new([
            "strategy",
            "Suspend rate",
            "AvgCT (susp)",
            "AvgCT (all)",
            "AvgST",
            "AvgWCT",
        ]);
        table.row([
            self.strategy.to_string(),
            fmt_percent(summary.suspend_rate),
            fmt_minutes(summary.avg_ct_suspended),
            fmt_minutes(summary.avg_ct_all),
            fmt_minutes(summary.avg_st),
            fmt_minutes(summary.avg_wct),
        ]);
        out.push_str(&table.render_markdown());
        let _ = writeln!(
            out,
            "\n{} jobs ({} suspended at least once), run drained at minute {}, \
             {} sample ticks, initial scheduler {}.\n",
            summary.total_jobs,
            summary.suspended_jobs,
            summary.end_minutes,
            self.samples,
            self.initial,
        );

        let cdf = self.suspension_cdf();
        let _ = writeln!(out, "## Suspension-time CDF (Figure 2)\n");
        if cdf.is_empty() {
            out.push_str("No job was suspended in this run.\n\n");
        } else {
            let _ = writeln!(
                out,
                "Median {} min, mean {} min, 20th-from-top percentile {} min \
                 (paper: median 437, mean 905, 20% above 1100).\n",
                fmt_minutes(cdf.median().unwrap_or(0.0)),
                fmt_minutes(cdf.mean()),
                fmt_minutes(cdf.quantile(0.8).unwrap_or(0.0)),
            );
            let mut table = Table::new(["suspension ≤ (min)", "% of suspended jobs"]);
            for (x, pct) in cdf.log_series(2) {
                table.row([format!("{x:.0}"), format!("{pct:.1}%")]);
            }
            out.push_str(&table.render_markdown());
            out.push('\n');
        }

        let _ = writeln!(out, "## Site timeline (Figure 4, 100-minute buckets)\n");
        if self.site_suspended.is_empty() {
            out.push_str(
                "No samples: run without `--sample` (the report subcommand enables it).\n\n",
            );
        } else {
            let sus = self.site_suspended.aggregate(TIMELINE_BUCKET);
            let util = self.site_utilization_pct.aggregate(TIMELINE_BUCKET);
            let wait = self.site_waiting.aggregate(TIMELINE_BUCKET);
            let down = self.site_down_machines.aggregate(TIMELINE_BUCKET);
            let mut table = Table::new([
                "minute",
                "suspended",
                "utilization %",
                "waiting",
                "down machines",
            ]);
            for (((&(t, s), &(_, u)), &(_, w)), &(_, d)) in
                sus.iter().zip(&util).zip(&wait).zip(&down)
            {
                table.row([
                    t.as_minutes().to_string(),
                    format!("{s:.1}"),
                    format!("{u:.1}"),
                    format!("{w:.1}"),
                    format!("{d:.1}"),
                ]);
            }
            out.push_str(&table.render_markdown());
            out.push('\n');
        }

        let _ = writeln!(out, "## Per-pool\n");
        if self.pools.is_empty() {
            out.push_str("No per-pool samples recorded.\n\n");
        } else {
            let mut table = Table::new([
                "pool",
                "machines",
                "util % (tw mean)",
                "queue (tw mean)",
                "peak suspended",
                "queue-wait mean (min)",
                "suspension mean (min)",
            ]);
            for (i, series) in self.pools.iter().enumerate() {
                let qw = self
                    .queue_wait_by_pool
                    .get(i)
                    .filter(|h| h.count() > 0)
                    .map(|h| fmt_minutes(h.mean()))
                    .unwrap_or_else(|| "-".into());
                let sp = self
                    .suspended_by_pool
                    .get(i)
                    .filter(|h| h.count() > 0)
                    .map(|h| fmt_minutes(h.mean()))
                    .unwrap_or_else(|| "-".into());
                table.row([
                    i.to_string(),
                    series.machines.to_string(),
                    format!("{:.1}", series.utilization_pct.time_weighted_mean()),
                    format!("{:.1}", series.queue_depth.time_weighted_mean()),
                    format!("{:.0}", series.suspended.max().unwrap_or(0.0)),
                    qw,
                    sp,
                ]);
            }
            out.push_str(&table.render_markdown());
            out.push('\n');
        }

        let _ = writeln!(out, "## Phase latency histograms\n");
        let mut table = Table::new(["phase", "spans", "mean (min)", "< 1 min", "overflow"]);
        for (&phase, h) in self.spans.phases() {
            table.row([
                phase.to_string(),
                h.count().to_string(),
                fmt_minutes(h.mean()),
                h.underflow().to_string(),
                h.overflow().to_string(),
            ]);
        }
        out.push_str(&table.render_markdown());
        out.push('\n');
        out
    }

    /// The Figure 2 CDF as CSV (`minutes,pct_le` rows).
    pub fn cdf_csv(&self) -> String {
        let mut out = String::from("minutes,pct_le\n");
        for (x, pct) in self.suspension_cdf().log_series(4) {
            let _ = writeln!(out, "{x:.2},{pct:.3}");
        }
        out
    }

    /// The Figure 4 site timeline as CSV, aggregated into
    /// [`TIMELINE_BUCKET`]-wide buckets.
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from("minute,suspended,utilization_pct,waiting,down_machines\n");
        let sus = self.site_suspended.aggregate(TIMELINE_BUCKET);
        let util = self.site_utilization_pct.aggregate(TIMELINE_BUCKET);
        let wait = self.site_waiting.aggregate(TIMELINE_BUCKET);
        let down = self.site_down_machines.aggregate(TIMELINE_BUCKET);
        for (((&(t, s), &(_, u)), &(_, w)), &(_, d)) in sus.iter().zip(&util).zip(&wait).zip(&down)
        {
            let _ = writeln!(out, "{},{s:.3},{u:.3},{w:.3},{d:.3}", t.as_minutes());
        }
        out
    }

    /// Per-pool aggregates as CSV.
    pub fn pools_csv(&self) -> String {
        let mut out = String::from(
            "pool,machines,utilization_mean_pct,queue_mean,suspended_mean,down_mean\n",
        );
        for (i, series) in self.pools.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i},{},{:.3},{:.3},{:.3},{:.3}",
                series.machines,
                series.utilization_pct.time_weighted_mean(),
                series.queue_depth.time_weighted_mean(),
                series.suspended.time_weighted_mean(),
                series.down_machines.time_weighted_mean(),
            );
        }
        out
    }
}

fn pool_hist(hists: &mut Vec<LogHistogram>, pool: PoolId) -> &mut LogHistogram {
    let i = pool.as_usize();
    if i >= hists.len() {
        hists.resize_with(i + 1, LogHistogram::decades);
    }
    &mut hists[i]
}

impl SimObserver for Telemetry {
    fn on_event(&mut self, now: SimTime, event: &ObsEvent, ctx: &ObsCtx<'_>) {
        if matches!(event, ObsEvent::Kernel { .. } | ObsEvent::BatchStart { .. }) {
            return;
        }
        let idx = event_index(event);
        debug_assert_eq!(EVENT_KINDS[idx], event.label());
        self.events[idx] += 1;
        match *event {
            ObsEvent::Submit { job } => {
                // Opens the implicit completion span (closed by finish_job).
                self.track(job).submit_at = Some(now);
            }
            ObsEvent::Unrunnable { job } => {
                // Gave up at the VPM: no completion latency to record, so
                // `done` closes the completion span without observing it.
                let shadow = ctx.shadows.contains(&job);
                let t = self.track(job);
                if !t.done {
                    t.done = true;
                    if !shadow {
                        self.unrunnable += 1;
                    }
                }
            }
            ObsEvent::Dispatch {
                job,
                pool,
                from_queue,
                ..
            } => {
                if from_queue {
                    self.end_queue_span(job, pool, now);
                }
            }
            ObsEvent::Enqueue { job, pool: _ } => {
                self.track(job).queue_since = Some(now);
            }
            ObsEvent::Suspend { job, pool: _, .. } => {
                let t = self.track(job);
                t.susp_since = Some(now);
                t.suspended_ever = true;
            }
            ObsEvent::Resume { job, pool, .. } => {
                self.end_suspend_span(job, pool, now);
            }
            ObsEvent::Reschedule {
                job,
                kind,
                from_pool,
                from_phase,
                discarded,
                ..
            } => {
                match from_phase {
                    PhaseTag::Suspended => self.end_suspend_span(job, from_pool, now),
                    PhaseTag::Waiting => self.end_queue_span(job, from_pool, now),
                    PhaseTag::Running | PhaseTag::AtVpm => {}
                }
                // Migrations keep their progress; every restart kind
                // discards it (possibly zero minutes of it).
                if kind != ReschedKind::Migrate {
                    self.spans.observe(PHASE_RESTART_WASTE, discarded);
                }
                if kind == ReschedKind::Evacuation {
                    self.evacuations += 1;
                    self.evac_discarded.record(discarded.as_minutes() as f64);
                }
                self.track(job).waste_min += discarded.as_minutes();
            }
            ObsEvent::DuplicateLaunched { clone, .. } => {
                // The shadow copy never gets its own Submit event.
                self.track(clone).submit_at = Some(now);
            }
            ObsEvent::ProxyFinish {
                job,
                from_phase,
                pool,
                ..
            } => {
                match (from_phase, pool) {
                    (PhaseTag::Suspended, Some(p)) => self.end_suspend_span(job, p, now),
                    (PhaseTag::Waiting, Some(p)) => self.end_queue_span(job, p, now),
                    _ => {}
                }
                self.finish_job(job, now, ctx);
            }
            ObsEvent::Complete { job, .. } => {
                self.finish_job(job, now, ctx);
            }
            ObsEvent::RetryScheduled { resume_at, .. } => {
                self.spans
                    .observe(PHASE_RETRY_BACKOFF, resume_at.since(now));
            }
            ObsEvent::Sample => self.sample(now, ctx),
            ObsEvent::PoolChosen { .. }
            | ObsEvent::WaitTimeout { .. }
            | ObsEvent::MachineDown { .. }
            | ObsEvent::MachineUp { .. }
            | ObsEvent::MachineDraining { .. }
            | ObsEvent::MachineUndrained { .. }
            | ObsEvent::PoolBlacklisted { .. }
            | ObsEvent::PolicyAudit { .. }
            | ObsEvent::EvacAudit { .. }
            | ObsEvent::FaultAudit { .. } => {}
            ObsEvent::Kernel { .. } | ObsEvent::BatchStart { .. } => unreachable!(),
        }
    }

    fn on_run_end(&mut self, now: SimTime, _ctx: &ObsCtx<'_>) {
        self.end_time = now;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// Re-exported for doc linkage; callers normally go through
// `netbatch_metrics` directly.
pub use netbatch_metrics::export::validate_exposition as validate_prom;

#[cfg(test)]
mod tests {
    use super::*;
    use netbatch_cluster::ids::MachineId;
    use netbatch_metrics::export::validate_exposition;

    fn ctx<'a>(shadows: &'a std::collections::HashSet<JobId>) -> ObsCtx<'a> {
        ObsCtx {
            pools: &[],
            jobs: &[],
            shadows,
        }
    }

    fn t(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    #[test]
    fn registry_disabled_is_a_noop() {
        let mut reg = Registry::disabled();
        reg.inc("x_total", &[("a", "b")], 5);
        reg.gauge("g", &[], 1.0);
        reg.observe("h_minutes", &[], 3.0);
        assert!(!reg.is_enabled());
        assert_eq!(reg.counter_value("x_total", &[("a", "b")]), 0);
        assert_eq!(reg.gauge_value("g", &[]), None);
        assert!(reg.render().is_empty());
    }

    #[test]
    fn registry_renders_valid_exposition() {
        let mut reg = Registry::new();
        reg.declare("jobs_total", "Jobs.", MetricKind::Counter);
        reg.inc("jobs_total", &[("pool", "0")], 2);
        reg.inc("jobs_total", &[("pool", "1")], 3);
        reg.gauge("depth", &[], 4.5);
        reg.observe("lat_minutes", &[("phase", "wait")], 12.0);
        let text = reg.render();
        assert!(validate_exposition(&text).unwrap() >= 4);
        assert!(text.contains("jobs_total{pool=\"0\"} 2"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("lat_minutes_count{phase=\"wait\"} 1"));
        assert_eq!(reg.counter_value("jobs_total", &[("pool", "1")]), 3);
        assert_eq!(reg.gauge_value("depth", &[]), Some(4.5));
        // Rendering is a pure function of state.
        assert_eq!(text, reg.render());
    }

    #[test]
    fn lifecycle_spans_accumulate_per_phase_and_pool() {
        let shadows = Default::default();
        let c = ctx(&shadows);
        let mut tel = Telemetry::new("NoRes", "RoundRobin");
        let job = JobId(0);
        let pool = PoolId(2);
        let machine = MachineId(0);
        tel.on_event(t(0), &ObsEvent::Submit { job }, &c);
        tel.on_event(t(0), &ObsEvent::Enqueue { job, pool }, &c);
        tel.on_event(
            t(30),
            &ObsEvent::Dispatch {
                job,
                pool,
                machine,
                wall: SimDuration::from_minutes(100),
                from_queue: true,
            },
            &c,
        );
        tel.on_event(t(40), &ObsEvent::Suspend { job, pool, machine }, &c);
        tel.on_event(t(65), &ObsEvent::Resume { job, pool, machine }, &c);
        tel.on_event(t(155), &ObsEvent::Complete { job, pool, machine }, &c);
        tel.on_run_end(t(155), &c);

        assert_eq!(tel.event_counts()["enqueue"], 1);
        assert_eq!(tel.spans().phase(PHASE_QUEUE_WAIT).unwrap().count(), 1);
        assert_eq!(tel.spans().phase(PHASE_QUEUE_WAIT).unwrap().sum(), 30.0);
        assert_eq!(tel.spans().phase(PHASE_SUSPENDED).unwrap().sum(), 25.0);
        assert_eq!(tel.spans().phase(PHASE_COMPLETION).unwrap().sum(), 155.0);
        assert_eq!(tel.pool_queue_wait(pool).unwrap().count(), 1);
        assert!(tel.pool_queue_wait(PoolId(0)).is_none());
        assert_eq!(tel.open_spans(), 0);
        assert_eq!(tel.unmatched_ends(), 0);

        let s = tel.summary();
        assert_eq!(s.total_jobs, 1);
        assert_eq!(s.suspended_jobs, 1);
        assert_eq!(s.avg_ct_all, 155.0);
        assert_eq!(s.avg_st, 25.0);
        assert_eq!(s.avg_wct, 55.0); // 30 wait + 25 suspend + 0 discarded
        assert_eq!(tel.suspension_cdf().sorted_values(), &[25.0]);

        let prom = tel.render_prom();
        assert!(validate_exposition(&prom).unwrap() > 10);
        assert!(prom.contains("netbatch_run_info{strategy=\"NoRes\",initial=\"RoundRobin\"} 1"));
        assert!(prom.contains("netbatch_events_total{kind=\"complete\"} 1"));
        assert!(prom.contains("netbatch_span_open 0"));
        let md = tel.render_markdown();
        assert!(md.contains("## Summary (Table 1 shape)"));
        assert!(md.contains("NoRes"));
    }

    #[test]
    fn shadow_jobs_feed_histograms_but_not_the_summary() {
        let mut shadows = std::collections::HashSet::new();
        shadows.insert(JobId(1));
        let c = ctx(&shadows);
        let mut tel = Telemetry::new("DupSusUtil", "RoundRobin");
        let (orig, clone) = (JobId(0), JobId(1));
        let pool = PoolId(0);
        let machine = MachineId(0);
        tel.on_event(t(0), &ObsEvent::Submit { job: orig }, &c);
        tel.on_event(
            t(0),
            &ObsEvent::Suspend {
                job: orig,
                pool,
                machine,
            },
            &c,
        );
        tel.on_event(
            t(5),
            &ObsEvent::DuplicateLaunched {
                original: orig,
                clone,
                target: PoolId(1),
            },
            &c,
        );
        // The clone wins; the original is proxy-finished out of suspension.
        tel.on_event(
            t(50),
            &ObsEvent::Complete {
                job: clone,
                pool: PoolId(1),
                machine,
            },
            &c,
        );
        tel.on_event(
            t(50),
            &ObsEvent::ProxyFinish {
                job: orig,
                from_phase: PhaseTag::Suspended,
                pool: Some(pool),
                machine: Some(machine),
            },
            &c,
        );
        tel.on_run_end(t(50), &c);
        // Both completion spans closed (orig 50, clone 45)…
        assert_eq!(tel.spans().phase(PHASE_COMPLETION).unwrap().count(), 2);
        // …but only the original is population: one job, suspended, ct 50.
        let s = tel.summary();
        assert_eq!(s.total_jobs, 1);
        assert_eq!(s.avg_ct_all, 50.0);
        assert_eq!(s.avg_st, 50.0);
        assert_eq!(tel.open_spans(), 0);
    }

    #[test]
    fn restart_waste_and_backoff_are_observed_directly() {
        let shadows = Default::default();
        let c = ctx(&shadows);
        let mut tel = Telemetry::new("ResSusUtil", "RoundRobin");
        let job = JobId(0);
        tel.on_event(t(0), &ObsEvent::Submit { job }, &c);
        tel.on_event(
            t(10),
            &ObsEvent::Suspend {
                job,
                pool: PoolId(0),
                machine: MachineId(0),
            },
            &c,
        );
        tel.on_event(
            t(40),
            &ObsEvent::Reschedule {
                job,
                kind: ReschedKind::RestartFromSuspend,
                from_pool: PoolId(0),
                machine: Some(MachineId(0)),
                from_phase: PhaseTag::Suspended,
                to: Some(PoolId(1)),
                discarded: SimDuration::from_minutes(10),
            },
            &c,
        );
        tel.on_event(
            t(41),
            &ObsEvent::RetryScheduled {
                job,
                attempt: 1,
                resume_at: t(49),
            },
            &c,
        );
        assert_eq!(tel.spans().phase(PHASE_SUSPENDED).unwrap().sum(), 30.0);
        assert_eq!(tel.spans().phase(PHASE_RESTART_WASTE).unwrap().sum(), 10.0);
        assert_eq!(tel.spans().phase(PHASE_RETRY_BACKOFF).unwrap().sum(), 8.0);
        // Migrations record no restart waste.
        tel.on_event(
            t(60),
            &ObsEvent::Reschedule {
                job,
                kind: ReschedKind::Migrate,
                from_pool: PoolId(1),
                machine: Some(MachineId(0)),
                from_phase: PhaseTag::Running,
                to: Some(PoolId(2)),
                discarded: SimDuration::ZERO,
            },
            &c,
        );
        assert_eq!(tel.spans().phase(PHASE_RESTART_WASTE).unwrap().count(), 1);
    }

    #[test]
    fn debug_rendering_is_compact_and_sim_domain() {
        let tel = Telemetry::new("NoRes", "RoundRobin");
        let dbg = format!("{tel:?}");
        assert!(dbg.contains("Telemetry"));
        assert!(dbg.contains("NoRes"));
        // No Instant/SystemTime anywhere in this type: nothing to redact,
        // and the rendering is a pure function of observed events.
        assert_eq!(dbg, format!("{:?}", Telemetry::new("NoRes", "RoundRobin")));
    }
}
