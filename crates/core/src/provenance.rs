//! Causal provenance: per-job span trees with typed causes, a decision
//! audit log, Chrome `trace_event` (Perfetto) export and a kernel
//! self-profiler.
//!
//! The paper's evaluation reports aggregates (Table 1, Figure 4); this
//! layer answers the per-job question those aggregates hide — *why* did
//! job J get suspended, evacuated or bounced, and what chain of faults,
//! drains and policy decisions led there. A [`SpanRecorder`] observer
//! folds the observer event stream into one segment tree per job
//! (queue-wait → run → suspend → backoff → … segments), where every
//! segment records the typed [`Cause`] that started it: the fault outage
//! id, the lifecycle window id, the policy decision with the ranking
//! inputs that chose the target pool, or the retry attempt number.
//!
//! Determinism: the recorder consumes only `(time, event)` — never the
//! mid-stream [`ObsCtx`] — so the sharded backend's replay seam
//! ([`SimObserver::on_replayed_event`]) produces byte-identical span
//! trees at every shard count (differentially tested at shards
//! {1, 2, 4, 20} on both queue backends).

use std::fmt::{self, Write as _};

use netbatch_cluster::ids::{JobId, MachineId, PoolId};
use netbatch_sim_engine::time::SimTime;

use crate::observer::{AuditTrigger, AuditVerdict, ObsCtx, ObsEvent, ReschedKind, SimObserver};

/// Span phase: the job sits in a pool's wait queue.
pub const SPAN_QUEUE_WAIT: &str = "queue_wait";
/// Span phase: the job runs on a machine.
pub const SPAN_RUNNING: &str = "running";
/// Span phase: the job is preempted and parked on its machine.
pub const SPAN_SUSPENDED: &str = "suspended";
/// Span phase: the job waits out a failure-driven backoff at the VPM.
pub const SPAN_BACKOFF: &str = "backoff";
/// Span phase: the job's checkpoint is in transit to another pool.
pub const SPAN_MIGRATING: &str = "migrating";

/// Every span phase, in rendering order. The schema guard asserts these
/// never collide with (or get reused as) event labels.
pub const SPAN_PHASES: [&str; 5] = [
    SPAN_QUEUE_WAIT,
    SPAN_RUNNING,
    SPAN_SUSPENDED,
    SPAN_BACKOFF,
    SPAN_MIGRATING,
];

/// Why a span segment started: the typed edge of the causal chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cause {
    /// First entry into the system (VPM routing at submit time).
    Submitted,
    /// A pool started the job off its queue (or immediately on submit).
    Dispatched {
        /// True when the job waited in the pool's queue first.
        from_queue: bool,
    },
    /// A higher-priority job preempted this one.
    Preempted,
    /// The pool resumed the suspended job in place.
    Resumed,
    /// A rescheduling-policy decision, with the ranking inputs it saw.
    Policy {
        /// What put the job in front of the policy.
        trigger: AuditTrigger,
        /// The decision returned.
        verdict: AuditVerdict,
        /// The chosen target pool, when the verdict names one.
        target: Option<PoolId>,
        /// How many candidate pools the policy ranked.
        candidates: u16,
        /// Current pool's utilization in per-mille, as the policy saw it.
        cur_util_milli: u32,
        /// Target pool's utilization in per-mille.
        tgt_util_milli: u32,
        /// Current pool's wait-queue length.
        cur_queue: u32,
        /// Target pool's wait-queue length.
        tgt_queue: u32,
    },
    /// A machine failure evicted the job.
    Fault {
        /// Outage id: index into the run's merged [`crate::faults::FaultPlan`].
        outage: u32,
        /// Blacklist cooldown booked by this failure, if any.
        blacklisted_until: Option<SimTime>,
    },
    /// Proactive evacuation off a draining machine.
    Evacuation {
        /// Window id: index into the run's [`crate::faults::LifecyclePlan`].
        window: u32,
        /// The kill deadline the evacuation raced.
        deadline: SimTime,
    },
    /// A failure-driven retry re-dispatched the job.
    Retry {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The segment belongs to a duplicate copy racing its original.
    DuplicateRace,
}

impl Cause {
    /// Stable type tag used in the JSONL rendering and `trace --cause`
    /// queries.
    pub fn label(&self) -> &'static str {
        match self {
            Cause::Submitted => "submitted",
            Cause::Dispatched { .. } => "dispatched",
            Cause::Preempted => "preempted",
            Cause::Resumed => "resumed",
            Cause::Policy { .. } => "policy",
            Cause::Fault { .. } => "fault",
            Cause::Evacuation { .. } => "evacuation",
            Cause::Retry { .. } => "retry",
            Cause::DuplicateRace => "duplicate_race",
        }
    }

    fn render(&self, out: &mut String) {
        match *self {
            Cause::Submitted | Cause::Preempted | Cause::Resumed | Cause::DuplicateRace => {
                let _ = write!(out, "{{\"type\":\"{}\"}}", self.label());
            }
            Cause::Dispatched { from_queue } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"dispatched\",\"from_queue\":{from_queue}}}"
                );
            }
            Cause::Policy {
                trigger,
                verdict,
                target,
                candidates,
                cur_util_milli,
                tgt_util_milli,
                cur_queue,
                tgt_queue,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"policy\",\"trigger\":\"{}\",\"verdict\":\"{}\",\"target\":{},\
                     \"candidates\":{candidates},\"cur_util_milli\":{cur_util_milli},\
                     \"tgt_util_milli\":{tgt_util_milli},\"cur_queue\":{cur_queue},\
                     \"tgt_queue\":{tgt_queue}}}",
                    trigger.label(),
                    verdict.label(),
                    opt_u64(target.map(|p| u64::from(p.as_u16()))),
                );
            }
            Cause::Fault {
                outage,
                blacklisted_until,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"fault\",\"outage\":{outage},\"blacklisted_until\":{}}}",
                    opt_u64(blacklisted_until.map(|t| t.as_minutes())),
                );
            }
            Cause::Evacuation { window, deadline } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"evacuation\",\"window\":{window},\"deadline\":{}}}",
                    deadline.as_minutes()
                );
            }
            Cause::Retry { attempt } => {
                let _ = write!(out, "{{\"type\":\"retry\",\"attempt\":{attempt}}}");
            }
        }
    }
}

/// One segment of a job's span tree: a phase the job occupied, where, and
/// the [`Cause`] that put it there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Which phase (one of [`SPAN_PHASES`]).
    pub phase: &'static str,
    /// When the segment opened.
    pub start: SimTime,
    /// When it closed; `None` if still open at run end.
    pub end: Option<SimTime>,
    /// The pool the segment played out in, when pool-resident.
    pub pool: Option<PoolId>,
    /// The machine, when machine-resident.
    pub machine: Option<MachineId>,
    /// Why the segment started.
    pub cause: Cause,
}

// Per-job cursor into the flat segment arena. Keeping the segments
// themselves out of this struct matters for overhead: one shared arena
// grows amortized instead of one tiny heap allocation (plus reallocs)
// per job, which is what dominates recording cost at scale.
#[derive(Default, Clone, Copy)]
struct JobState {
    open: Option<u32>,
    count: u32,
    pending: Option<Cause>,
    submitted_at: Option<SimTime>,
}

/// Observer that folds the event stream into per-job span trees plus a
/// flat, time-ordered decision-audit log. Attach via
/// [`SimConfig::spans`](crate::simulator::SimConfig::spans) or
/// [`Simulator::attach_observer`](crate::simulator::Simulator::attach_observer);
/// downcast out of the output with
/// [`SimOutput::observer`](crate::simulator::SimOutput::observer).
pub struct SpanRecorder {
    strategy: &'static str,
    initial: &'static str,
    jobs: Vec<JobState>,
    // Flat arena of every segment, tagged (job, seq), in open order.
    segments: Vec<(u32, u32, Segment)>,
    decisions: Vec<(SimTime, ObsEvent)>,
    // The most recent machine-failure audit; consumed (shared, not
    // cleared) by the failure evictions that follow it.
    last_fault: Option<(PoolId, MachineId, Cause)>,
}

impl SpanRecorder {
    /// A recorder labeled with the run's policy axes (mirrors
    /// [`Telemetry::new`](crate::telemetry::Telemetry::new)).
    pub fn new(strategy: &'static str, initial: &'static str) -> Self {
        SpanRecorder {
            strategy,
            initial,
            jobs: Vec::new(),
            segments: Vec::new(),
            decisions: Vec::new(),
            last_fault: None,
        }
    }

    fn job_mut(&mut self, job: JobId) -> &mut JobState {
        let idx = job.as_usize();
        if idx >= self.jobs.len() {
            self.jobs.resize(idx + 1, JobState::default());
        }
        &mut self.jobs[idx]
    }

    fn close_open(&mut self, job: JobId, now: SimTime) {
        let open = self.job_mut(job).open.take();
        if let Some(i) = open {
            self.segments[i as usize].2.end = Some(now);
        }
    }

    fn open(
        &mut self,
        job: JobId,
        phase: &'static str,
        now: SimTime,
        pool: Option<PoolId>,
        machine: Option<MachineId>,
        cause: Cause,
    ) {
        let arena_idx = self.segments.len() as u32;
        let js = self.job_mut(job);
        debug_assert!(js.open.is_none(), "segment opened over an open segment");
        js.open = Some(arena_idx);
        let seq = js.count;
        js.count += 1;
        self.segments.push((
            job.as_u64() as u32,
            seq,
            Segment {
                phase,
                start: now,
                end: None,
                pool,
                machine,
                cause,
            },
        ));
    }

    fn take_pending(&mut self, job: JobId) -> Option<Cause> {
        self.job_mut(job).pending.take()
    }

    /// Number of jobs with at least one recorded segment or submission.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The job's segments in causal order (empty if unknown).
    pub fn segments(&self, job: JobId) -> Vec<Segment> {
        let jid = job.as_u64() as u32;
        self.segments
            .iter()
            .filter(|(j, _, _)| *j == jid)
            .map(|&(_, _, s)| s)
            .collect()
    }

    /// Every decision-audit event, in emission (time) order.
    pub fn decisions(&self) -> &[(SimTime, ObsEvent)] {
        &self.decisions
    }

    /// Total segments across all jobs.
    pub fn span_count(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Segments still open (no end); zero once every job completed.
    pub fn open_count(&self) -> u64 {
        self.jobs.iter().filter(|j| j.open.is_some()).count() as u64
    }

    /// Number of closed segments in `phase`.
    pub fn segment_count(&self, phase: &str) -> u64 {
        self.segments
            .iter()
            .filter(|(_, _, s)| s.phase == phase && s.end.is_some())
            .count() as u64
    }

    /// Total minutes spent in `phase` across all closed segments.
    pub fn phase_minutes(&self, phase: &str) -> u64 {
        self.segments
            .iter()
            .map(|(_, _, s)| s)
            .filter(|s| s.phase == phase)
            .filter_map(|s| s.end.map(|e| e.since(s.start).as_minutes()))
            .sum()
    }

    /// Renders the run as spans JSONL: one header object, then every
    /// decision in time order, then every segment grouped by job id. All
    /// hand-written JSON — byte-identical across runs, backends and shard
    /// counts.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "{{\"schema\":\"netbatch-spans/1\",\"strategy\":\"{}\",\"initial\":\"{}\",\
             \"jobs\":{},\"spans\":{},\"decisions\":{}}}",
            self.strategy,
            self.initial,
            self.jobs.len(),
            self.span_count(),
            self.decisions.len(),
        );
        for (t, ev) in &self.decisions {
            render_decision(&mut out, *t, ev);
        }
        // The arena holds segments in open order; group them by job for
        // rendering (within one job the arena order already is seq order,
        // so the sort only interleaves jobs, deterministically).
        let mut order: Vec<u32> = (0..self.segments.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let (job, seq, _) = self.segments[i as usize];
            (job, seq)
        });
        for i in order {
            let (idx, seq, seg) = self.segments[i as usize];
            let _ = write!(
                out,
                "{{\"kind\":\"span\",\"job\":{idx},\"seq\":{seq},\"phase\":\"{}\",\
                 \"start\":{},\"end\":{},\"pool\":{},\"machine\":{},\"cause\":",
                seg.phase,
                seg.start.as_minutes(),
                opt_u64(seg.end.map(|t| t.as_minutes())),
                opt_u64(seg.pool.map(|p| u64::from(p.as_u16()))),
                opt_u64(seg.machine.map(|m| u64::from(m.as_u32()))),
            );
            seg.cause.render(&mut out);
            out.push_str("}\n");
        }
        out
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn render_decision(out: &mut String, t: SimTime, ev: &ObsEvent) {
    match *ev {
        ObsEvent::PolicyAudit {
            job,
            pool,
            trigger,
            verdict,
            target,
            candidates,
            cur_util_milli,
            tgt_util_milli,
            cur_queue,
            tgt_queue,
        } => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"decision\",\"type\":\"policy\",\"t\":{},\"job\":{},\"pool\":{},\
                 \"trigger\":\"{}\",\"verdict\":\"{}\",\"target\":{},\"candidates\":{candidates},\
                 \"cur_util_milli\":{cur_util_milli},\"tgt_util_milli\":{tgt_util_milli},\
                 \"cur_queue\":{cur_queue},\"tgt_queue\":{tgt_queue}}}",
                t.as_minutes(),
                job.as_u64(),
                pool.as_u16(),
                trigger.label(),
                verdict.label(),
                opt_u64(target.map(|p| u64::from(p.as_u16()))),
            );
        }
        ObsEvent::EvacAudit {
            job,
            pool,
            machine,
            window,
            remaining,
            deadline,
        } => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"decision\",\"type\":\"evac\",\"t\":{},\"job\":{},\"pool\":{},\
                 \"machine\":{},\"window\":{window},\"remaining\":{},\"deadline\":{}}}",
                t.as_minutes(),
                job.as_u64(),
                pool.as_u16(),
                machine.as_u32(),
                remaining.as_minutes(),
                deadline.as_minutes(),
            );
        }
        ObsEvent::FaultAudit {
            pool,
            machine,
            outage,
            blacklisted_until,
        } => {
            let _ = writeln!(
                out,
                "{{\"kind\":\"decision\",\"type\":\"fault\",\"t\":{},\"pool\":{},\"machine\":{},\
                 \"outage\":{outage},\"blacklisted_until\":{}}}",
                t.as_minutes(),
                pool.as_u16(),
                machine.as_u32(),
                opt_u64(blacklisted_until.map(|t| t.as_minutes())),
            );
        }
        _ => unreachable!("only audit events are recorded as decisions"),
    }
}

impl fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Everything here is deterministic: the determinism suite compares
        // this output byte-for-byte across runs, backends and shard counts.
        f.debug_struct("SpanRecorder")
            .field("strategy", &self.strategy)
            .field("initial", &self.initial)
            .field("jobs", &self.jobs.len())
            .field("spans", &self.span_count())
            .field("open", &self.open_count())
            .field("decisions", &self.decisions.len())
            .finish()
    }
}

impl SimObserver for SpanRecorder {
    fn on_event(&mut self, now: SimTime, event: &ObsEvent, _ctx: &ObsCtx<'_>) {
        match *event {
            ObsEvent::Submit { job } => {
                self.job_mut(job).submitted_at = Some(now);
            }
            ObsEvent::Enqueue { job, pool } => {
                let cause = self.take_pending(job).unwrap_or(Cause::Submitted);
                self.close_open(job, now);
                self.open(job, SPAN_QUEUE_WAIT, now, Some(pool), None, cause);
            }
            ObsEvent::Dispatch {
                job,
                pool,
                machine,
                from_queue,
                ..
            } => {
                let cause = self
                    .take_pending(job)
                    .unwrap_or(Cause::Dispatched { from_queue });
                self.close_open(job, now);
                self.open(job, SPAN_RUNNING, now, Some(pool), Some(machine), cause);
            }
            ObsEvent::Suspend { job, pool, machine } => {
                self.close_open(job, now);
                self.open(
                    job,
                    SPAN_SUSPENDED,
                    now,
                    Some(pool),
                    Some(machine),
                    Cause::Preempted,
                );
            }
            ObsEvent::Resume { job, pool, machine } => {
                self.close_open(job, now);
                self.open(
                    job,
                    SPAN_RUNNING,
                    now,
                    Some(pool),
                    Some(machine),
                    Cause::Resumed,
                );
            }
            ObsEvent::Complete { job, .. }
            | ObsEvent::ProxyFinish { job, .. }
            | ObsEvent::Unrunnable { job } => {
                self.close_open(job, now);
                self.job_mut(job).pending = None;
            }
            ObsEvent::Reschedule {
                job,
                kind,
                from_pool,
                machine,
                to,
                ..
            } => {
                self.close_open(job, now);
                match kind {
                    // The policy audit emitted just before already stashed
                    // the cause; the next Enqueue/Dispatch consumes it.
                    ReschedKind::RestartFromSuspend | ReschedKind::RestartFromWait => {}
                    ReschedKind::Migrate => {
                        let cause = self
                            .take_pending(job)
                            .unwrap_or(Cause::Dispatched { from_queue: false });
                        self.open(job, SPAN_MIGRATING, now, to, None, cause);
                    }
                    ReschedKind::FailureEvict => {
                        if let Some((p, m, cause)) = self.last_fault {
                            if p == from_pool && machine == Some(m) {
                                self.job_mut(job).pending = Some(cause);
                            }
                        }
                    }
                    // The evac audit emitted just before stashed the cause.
                    ReschedKind::Evacuation => {}
                }
            }
            ObsEvent::RetryScheduled { job, attempt, .. } => {
                // The backoff segment inherits the fault/evacuation cause;
                // the dispatch that ends it carries the attempt number.
                let cause = self.take_pending(job).unwrap_or(Cause::Retry { attempt });
                self.close_open(job, now);
                self.open(job, SPAN_BACKOFF, now, None, None, cause);
                self.job_mut(job).pending = Some(Cause::Retry { attempt });
            }
            ObsEvent::DuplicateLaunched {
                original, clone, ..
            } => {
                // The policy decision that launched the copy moves to the
                // clone: the original never transitions.
                let cause = self.take_pending(original).unwrap_or(Cause::DuplicateRace);
                let js = self.job_mut(clone);
                js.submitted_at = Some(now);
                js.pending = Some(cause);
            }
            ObsEvent::PolicyAudit { job, verdict, .. } => {
                self.decisions.push((now, *event));
                if verdict != AuditVerdict::Stay {
                    if let ObsEvent::PolicyAudit {
                        trigger,
                        verdict,
                        target,
                        candidates,
                        cur_util_milli,
                        tgt_util_milli,
                        cur_queue,
                        tgt_queue,
                        ..
                    } = *event
                    {
                        self.job_mut(job).pending = Some(Cause::Policy {
                            trigger,
                            verdict,
                            target,
                            candidates,
                            cur_util_milli,
                            tgt_util_milli,
                            cur_queue,
                            tgt_queue,
                        });
                    }
                }
            }
            ObsEvent::EvacAudit {
                job,
                window,
                deadline,
                ..
            } => {
                self.decisions.push((now, *event));
                self.job_mut(job).pending = Some(Cause::Evacuation { window, deadline });
            }
            ObsEvent::FaultAudit {
                pool,
                machine,
                outage,
                blacklisted_until,
            } => {
                self.decisions.push((now, *event));
                self.last_fault = Some((
                    pool,
                    machine,
                    Cause::Fault {
                        outage,
                        blacklisted_until,
                    },
                ));
            }
            ObsEvent::PoolChosen { .. }
            | ObsEvent::WaitTimeout { .. }
            | ObsEvent::MachineDown { .. }
            | ObsEvent::MachineUp { .. }
            | ObsEvent::MachineDraining { .. }
            | ObsEvent::MachineUndrained { .. }
            | ObsEvent::PoolBlacklisted { .. }
            | ObsEvent::Sample
            | ObsEvent::Kernel { .. }
            | ObsEvent::BatchStart { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------
// Perfetto export
// ---------------------------------------------------------------------

/// Converts spans JSONL (as written by [`SpanRecorder::render_jsonl`])
/// into Chrome `trace_event` JSON loadable by Perfetto / `chrome://tracing`:
/// pools render as process groups (pid = pool + 1; pid 0 holds off-pool
/// phases like backoff), jobs as threads, segments as complete (`"X"`)
/// events carrying their cause in `args`. Timestamps are minutes rendered
/// as microseconds. Open segments (no `end`) are rendered with zero
/// duration.
pub fn perfetto_from_jsonl(input: &str) -> Result<String, String> {
    use netbatch_metrics::json::Value;
    let mut events = String::new();
    let mut tracks: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();
    let mut n = 0u64;
    for (lineno, line) in input.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v =
            netbatch_metrics::json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("kind").and_then(Value::as_str) != Some("span") {
            continue;
        }
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: span missing \"{k}\"", lineno + 1))
        };
        let job = field("job")?;
        let start = field("start")?;
        let end = v.get("end").and_then(Value::as_u64).unwrap_or(start);
        let phase = v
            .get("phase")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: span missing \"phase\"", lineno + 1))?;
        // pid 0 = off-pool (VPM/backoff); pools shift up by one.
        let pid = v.get("pool").and_then(Value::as_u64).map_or(0, |p| p + 1);
        tracks.insert((pid, job));
        let cause = v
            .get("cause")
            .map_or_else(|| "null".to_string(), Value::render);
        if n > 0 {
            events.push(',');
        }
        let _ = write!(
            events,
            "{{\"name\":\"{phase}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{job},\
             \"ts\":{start},\"dur\":{},\"args\":{{\"cause\":{cause}}}}}",
            end.saturating_sub(start),
        );
        n += 1;
    }
    let mut meta = String::new();
    let mut pids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for &(pid, _) in &tracks {
        pids.insert(pid);
    }
    for pid in pids {
        if !meta.is_empty() {
            meta.push(',');
        }
        let name = if pid == 0 {
            "vpm".to_string()
        } else {
            format!("pool {}", pid - 1)
        };
        let _ = write!(
            meta,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for (pid, job) in tracks {
        meta.push(',');
        let _ = write!(
            meta,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{job},\
             \"args\":{{\"name\":\"job {job}\"}}}}"
        );
    }
    let sep = if meta.is_empty() || events.is_empty() {
        ""
    } else {
        ","
    };
    Ok(format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{meta}{sep}{events}]}}"
    ))
}

// ---------------------------------------------------------------------
// Kernel self-profiler
// ---------------------------------------------------------------------

/// Kernel event-kind labels, indexed by
/// [`Ev::kind_index`](crate::simulator::Ev); must stay in sync with
/// [`EventLabel`](netbatch_sim_engine::observe::EventLabel) for
/// [`Ev`](crate::simulator::Ev).
pub const KERNEL_EV_KINDS: [&str; 10] = [
    "submit",
    "complete",
    "wait_check",
    "sample",
    "machine_down",
    "machine_up",
    "migrate_arrive",
    "retry_dispatch",
    "drain_start",
    "drain_end",
];

/// Labels for the worker-side phases the parallel backends attribute:
/// batch submits, batch completions, and (streaming backend only) lazy
/// shard-local trace generation.
const SHARD_PHASES: [&str; 3] = ["submit", "complete", "generate"];

/// Worker phase indices for [`KernelProfile::record_shard`].
pub(crate) const PHASE_SUBMIT: usize = 0;
/// See [`PHASE_SUBMIT`].
pub(crate) const PHASE_COMPLETE: usize = 1;
/// See [`PHASE_SUBMIT`].
pub(crate) const PHASE_GENERATE: usize = 2;

/// Coordinator barrier phases beyond the per-event kinds: `merge` is the
/// serial effect-replay + emission-reduce section at each epoch barrier —
/// the Amdahl-relevant serial fraction, readable straight from the folded
/// stacks as `netbatch;coordinator;merge` vs the `netbatch;shardN;*` lanes.
const COORD_PHASES: [&str; 1] = ["merge"];

/// Coordinator phase index for [`KernelProfile::record_coord_phase`].
pub(crate) const COORD_MERGE: usize = 0;

/// Wall-time attribution per kernel phase × per shard. Enabled via
/// [`SimConfig::profile`](crate::simulator::SimConfig::profile); costs one
/// branch per event when off. The nanosecond readings are wall-clock and
/// therefore nondeterministic — they never appear in deterministic
/// outputs, and the `Debug` rendering redacts them (counts only), exactly
/// like the sharded backend's busy-nanos counter.
#[derive(Clone, Default)]
pub struct KernelProfile {
    // (nanos, events) per Ev kind, accumulated on the serial executor or
    // the sharded coordinator.
    coordinator: [(u64, u64); KERNEL_EV_KINDS.len()],
    // (nanos, barriers) per coordinator barrier phase ([merge]).
    coord_phases: [(u64, u64); COORD_PHASES.len()],
    // (nanos, items) per shard for [submit, complete, generate] work.
    shards: Vec<[(u64, u64); SHARD_PHASES.len()]>,
}

impl KernelProfile {
    /// An empty profile (no shard lanes until the sharded backend sizes
    /// them).
    pub fn new() -> Self {
        KernelProfile::default()
    }

    /// Sizes the per-shard lanes (parallel backends only).
    pub(crate) fn init_shards(&mut self, shards: usize) {
        self.shards = vec![[(0, 0); SHARD_PHASES.len()]; shards];
    }

    /// Records one handled event on the serial/coordinator lane.
    pub(crate) fn record(&mut self, kind: usize, nanos: u64) {
        let cell = &mut self.coordinator[kind];
        cell.0 += nanos;
        cell.1 += 1;
    }

    /// Folds one shard's flushed batch work into its lane.
    pub(crate) fn record_shard(&mut self, shard: usize, phase: usize, nanos: u64, items: u64) {
        let cell = &mut self.shards[shard][phase];
        cell.0 += nanos;
        cell.1 += items;
    }

    /// Records one coordinator barrier phase (the serial merge section).
    pub(crate) fn record_coord_phase(&mut self, phase: usize, nanos: u64, items: u64) {
        let cell = &mut self.coord_phases[phase];
        cell.0 += nanos;
        cell.1 += items;
    }

    /// Total attributed wall time, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        let coord: u64 = self.coordinator.iter().map(|c| c.0).sum();
        let phases: u64 = self.coord_phases.iter().map(|c| c.0).sum();
        let shard: u64 = self.shards.iter().flatten().map(|c| c.0).sum();
        coord + phases + shard
    }

    /// Wall time attributed to the coordinator's serial sections
    /// (per-event handling plus the barrier merges), in nanoseconds.
    pub fn coordinator_nanos(&self) -> u64 {
        self.coordinator.iter().map(|c| c.0).sum::<u64>()
            + self.coord_phases.iter().map(|c| c.0).sum::<u64>()
    }

    /// Wall time attributed to worker (shard) lanes, in nanoseconds.
    pub fn worker_nanos(&self) -> u64 {
        self.shards.iter().flatten().map(|c| c.0).sum()
    }

    /// Number of execution lanes: 1 (serial or coordinator) plus one per
    /// shard.
    pub fn lane_count(&self) -> usize {
        1 + self.shards.len()
    }

    /// Total events/items attributed (deterministic, unlike the nanos).
    /// Barrier-merge phases count barriers, not events, and are excluded.
    pub fn total_events(&self) -> u64 {
        let coord: u64 = self.coordinator.iter().map(|c| c.1).sum();
        let shard: u64 = self.shards.iter().flatten().map(|c| c.1).sum();
        coord + shard
    }

    /// Folded-stack (flamegraph-ready) rendering: one
    /// `netbatch;<lane>;<phase> <microseconds>` line per non-empty cell.
    /// The main lane is `serial` for serial runs and `coordinator` when
    /// shard lanes exist.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        let lane = if self.shards.is_empty() {
            "serial"
        } else {
            "coordinator"
        };
        for (kind, &(nanos, events)) in KERNEL_EV_KINDS.iter().zip(&self.coordinator) {
            if events > 0 {
                let _ = writeln!(out, "netbatch;{lane};{kind} {}", nanos / 1_000);
            }
        }
        for (phase, &(nanos, barriers)) in COORD_PHASES.iter().zip(&self.coord_phases) {
            if barriers > 0 {
                let _ = writeln!(out, "netbatch;{lane};{phase} {}", nanos / 1_000);
            }
        }
        for (shard, lanes) in self.shards.iter().enumerate() {
            for (phase, &(nanos, items)) in SHARD_PHASES.iter().zip(lanes) {
                if items > 0 {
                    let _ = writeln!(out, "netbatch;shard{shard};{phase} {}", nanos / 1_000);
                }
            }
        }
        out
    }
}

impl fmt::Debug for KernelProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Redact the wall-clock nanos: like `LabelTimer`, Debug output must
        // stay deterministic so profiles can ride `SimOutput` without
        // breaking byte-identical-output contracts.
        f.debug_struct("KernelProfile")
            .field("events", &self.total_events())
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbatch_sim_engine::observe::EventLabel;
    use netbatch_sim_engine::time::SimDuration;

    fn t(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    fn ctx<'a>(shadows: &'a std::collections::HashSet<JobId>) -> ObsCtx<'a> {
        ObsCtx {
            pools: &[],
            jobs: &[],
            shadows,
        }
    }

    #[test]
    fn span_tree_records_queue_run_suspend_chain() {
        let shadows = std::collections::HashSet::new();
        let c = ctx(&shadows);
        let mut rec = SpanRecorder::new("nores", "round_robin");
        let job = JobId(0);
        let pool = PoolId(1);
        let m = MachineId(2);
        rec.on_event(t(0), &ObsEvent::Submit { job }, &c);
        rec.on_event(t(0), &ObsEvent::Enqueue { job, pool }, &c);
        rec.on_event(
            t(5),
            &ObsEvent::Dispatch {
                job,
                pool,
                machine: m,
                wall: SimDuration::from_minutes(30),
                from_queue: true,
            },
            &c,
        );
        rec.on_event(
            t(10),
            &ObsEvent::Suspend {
                job,
                pool,
                machine: m,
            },
            &c,
        );
        rec.on_event(
            t(20),
            &ObsEvent::Resume {
                job,
                pool,
                machine: m,
            },
            &c,
        );
        rec.on_event(
            t(45),
            &ObsEvent::Complete {
                job,
                pool,
                machine: m,
            },
            &c,
        );
        let segs = rec.segments(job);
        assert_eq!(
            segs.iter().map(|s| s.phase).collect::<Vec<_>>(),
            vec![SPAN_QUEUE_WAIT, SPAN_RUNNING, SPAN_SUSPENDED, SPAN_RUNNING]
        );
        assert_eq!(segs[0].end, Some(t(5)));
        assert_eq!(segs[1].cause, Cause::Dispatched { from_queue: true });
        assert_eq!(segs[2].cause, Cause::Preempted);
        assert_eq!(segs[3].cause, Cause::Resumed);
        assert_eq!(rec.open_count(), 0);
        assert_eq!(rec.phase_minutes(SPAN_SUSPENDED), 10);
        assert_eq!(rec.phase_minutes(SPAN_QUEUE_WAIT), 5);
        assert_eq!(rec.phase_minutes(SPAN_RUNNING), 5 + 25);
    }

    #[test]
    fn policy_audit_cause_attaches_to_restarted_segment() {
        let shadows = std::collections::HashSet::new();
        let c = ctx(&shadows);
        let mut rec = SpanRecorder::new("res_sus_util", "round_robin");
        let job = JobId(0);
        let (p0, p1) = (PoolId(0), PoolId(1));
        let m = MachineId(0);
        rec.on_event(t(0), &ObsEvent::Submit { job }, &c);
        rec.on_event(
            t(0),
            &ObsEvent::Dispatch {
                job,
                pool: p0,
                machine: m,
                wall: SimDuration::from_minutes(100),
                from_queue: false,
            },
            &c,
        );
        rec.on_event(
            t(40),
            &ObsEvent::Suspend {
                job,
                pool: p0,
                machine: m,
            },
            &c,
        );
        let audit = ObsEvent::PolicyAudit {
            job,
            pool: p0,
            trigger: AuditTrigger::Suspend,
            verdict: AuditVerdict::Restart,
            target: Some(p1),
            candidates: 2,
            cur_util_milli: 1000,
            tgt_util_milli: 0,
            cur_queue: 0,
            tgt_queue: 0,
        };
        rec.on_event(t(40), &audit, &c);
        rec.on_event(
            t(40),
            &ObsEvent::Reschedule {
                job,
                kind: ReschedKind::RestartFromSuspend,
                from_pool: p0,
                machine: Some(m),
                from_phase: crate::observer::PhaseTag::Suspended,
                to: Some(p1),
                discarded: SimDuration::from_minutes(40),
            },
            &c,
        );
        rec.on_event(
            t(40),
            &ObsEvent::Dispatch {
                job,
                pool: p1,
                machine: m,
                wall: SimDuration::from_minutes(100),
                from_queue: false,
            },
            &c,
        );
        let segs = rec.segments(job);
        assert_eq!(segs.len(), 3);
        assert!(matches!(
            segs[2].cause,
            Cause::Policy {
                verdict: AuditVerdict::Restart,
                target: Some(p),
                ..
            } if p == p1
        ));
        assert_eq!(rec.decisions().len(), 1);
        let jsonl = rec.render_jsonl();
        assert!(jsonl.contains("\"type\":\"policy\""));
        assert!(jsonl.contains("\"verdict\":\"restart\""));
    }

    #[test]
    fn fault_cause_flows_through_backoff_to_retry() {
        let shadows = std::collections::HashSet::new();
        let c = ctx(&shadows);
        let mut rec = SpanRecorder::new("nores", "round_robin");
        let job = JobId(0);
        let pool = PoolId(0);
        let m = MachineId(0);
        rec.on_event(t(0), &ObsEvent::Submit { job }, &c);
        rec.on_event(
            t(0),
            &ObsEvent::Dispatch {
                job,
                pool,
                machine: m,
                wall: SimDuration::from_minutes(100),
                from_queue: false,
            },
            &c,
        );
        rec.on_event(t(10), &ObsEvent::MachineDown { pool, machine: m }, &c);
        rec.on_event(
            t(10),
            &ObsEvent::FaultAudit {
                pool,
                machine: m,
                outage: 3,
                blacklisted_until: Some(t(70)),
            },
            &c,
        );
        rec.on_event(
            t(10),
            &ObsEvent::Reschedule {
                job,
                kind: ReschedKind::FailureEvict,
                from_pool: pool,
                machine: Some(m),
                from_phase: crate::observer::PhaseTag::Running,
                to: None,
                discarded: SimDuration::from_minutes(10),
            },
            &c,
        );
        rec.on_event(
            t(10),
            &ObsEvent::RetryScheduled {
                job,
                attempt: 1,
                resume_at: t(12),
            },
            &c,
        );
        rec.on_event(
            t(12),
            &ObsEvent::Dispatch {
                job,
                pool: PoolId(1),
                machine: m,
                wall: SimDuration::from_minutes(100),
                from_queue: false,
            },
            &c,
        );
        let segs = rec.segments(job);
        assert_eq!(
            segs.iter().map(|s| s.phase).collect::<Vec<_>>(),
            vec![SPAN_RUNNING, SPAN_BACKOFF, SPAN_RUNNING]
        );
        assert_eq!(
            segs[1].cause,
            Cause::Fault {
                outage: 3,
                blacklisted_until: Some(t(70))
            }
        );
        assert_eq!(segs[2].cause, Cause::Retry { attempt: 1 });
        assert_eq!(rec.decisions().len(), 1);
    }

    #[test]
    fn perfetto_export_parses_and_groups_pools() {
        let shadows = std::collections::HashSet::new();
        let c = ctx(&shadows);
        let mut rec = SpanRecorder::new("nores", "round_robin");
        let job = JobId(7);
        rec.on_event(t(0), &ObsEvent::Submit { job }, &c);
        rec.on_event(
            t(0),
            &ObsEvent::Enqueue {
                job,
                pool: PoolId(2),
            },
            &c,
        );
        rec.on_event(
            t(4),
            &ObsEvent::Dispatch {
                job,
                pool: PoolId(2),
                machine: MachineId(0),
                wall: SimDuration::from_minutes(6),
                from_queue: true,
            },
            &c,
        );
        rec.on_event(
            t(10),
            &ObsEvent::Complete {
                job,
                pool: PoolId(2),
                machine: MachineId(0),
            },
            &c,
        );
        let jsonl = rec.render_jsonl();
        let trace = perfetto_from_jsonl(&jsonl).expect("export succeeds");
        let doc = netbatch_metrics::json::parse(&trace).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(netbatch_metrics::json::Value::as_arr)
            .expect("traceEvents array");
        // 1 process_name + 1 thread_name + 2 X events.
        assert_eq!(events.len(), 4);
        assert!(trace.contains("\"pid\":3"), "pool 2 renders as pid 3");
        assert!(trace.contains("\"name\":\"pool 2\""));
        assert!(trace.contains("\"name\":\"queue_wait\""));
    }

    #[test]
    fn kernel_ev_kinds_match_event_labels() {
        use crate::simulator::Ev;
        let evs = [
            Ev::Submit(JobId(0)),
            Ev::Complete(JobId(0)),
            Ev::WaitCheck(JobId(0)),
            Ev::Sample,
            Ev::MachineDown(PoolId(0), MachineId(0)),
            Ev::MachineUp(PoolId(0), MachineId(0)),
            Ev::MigrateArrive(JobId(0), PoolId(0)),
            Ev::RetryDispatch(JobId(0)),
            Ev::DrainStart(PoolId(0), MachineId(0), None),
            Ev::DrainEnd(PoolId(0), MachineId(0)),
        ];
        for ev in evs {
            assert_eq!(KERNEL_EV_KINDS[ev.kind_index()], ev.label());
        }
    }

    #[test]
    fn profile_folds_lanes_and_redacts_debug() {
        let mut p = KernelProfile::new();
        p.record(0, 5_000);
        p.record(1, 2_000);
        let folded = p.render_folded();
        assert!(folded.contains("netbatch;serial;submit 5"));
        assert!(folded.contains("netbatch;serial;complete 2"));
        p.init_shards(2);
        p.record_shard(1, 0, 9_000, 3);
        let folded = p.render_folded();
        assert!(folded.contains("netbatch;coordinator;submit 5"));
        assert!(folded.contains("netbatch;shard1;submit 9"));
        // Debug redacts nanos: only deterministic counts appear.
        let dbg = format!("{p:?}");
        assert!(dbg.contains("events"));
        assert!(!dbg.contains("9000"));
    }
}
