//! The sharded simulation backend: pool-partitioned worker threads under
//! minute-epoch barriers, byte-identical to the serial reference.
//!
//! # Architecture
//!
//! The coordinator owns the [`EventQueue`] and pops events one at a time
//! in the exact (time, event-id) order the serial executor would. Each
//! popped event is classified:
//!
//! * **Local** — its entire effect is confined to one pool (a round-robin
//!   submission whose target pool is decidable upfront, or a completion
//!   of a job running in a known pool). Local events are appended to the
//!   owning shard's pending batch, stamped with a global sequence number
//!   recording their pop position.
//! * **Global** — everything else (sampling, machine faults, wait checks,
//!   migrations, retries, and *all* events outside the fast class).
//!   Before a global executes, pending batches are flushed; the global
//!   then runs inline through the serial [`Handler`], so non-local logic
//!   is never reimplemented.
//!
//! A flush also fires at every epoch boundary (the first event of a later
//! minute) and at drain. Flushing sends each shard its batch; workers
//! execute items against their own pools in sequence order, buffering
//! queue effects and observer emissions instead of applying them. At the
//! barrier the coordinator merges all shards' buffers back into the
//! global sequence order (the canonical (epoch, pool-lane, seq) order of
//! [`netbatch_sim_engine::epoch`]; within one epoch the globally unique
//! seq already encodes it) and applies them serially: queue effects
//! replay `schedule`/`cancel` calls in exactly the order the serial
//! backend would issue them — which is what keeps every assigned
//! [`EventId`] identical — and emissions replay to observers via
//! [`SimObserver::on_replayed_event`], followed by one
//! [`SimObserver::on_settle`] per observer at the settled barrier state.
//!
//! # Why determinism survives
//!
//! * Pop order is untouched: the coordinator consumes the same queue with
//!   the same tie-breaking ids as the serial executor.
//! * Event-id parity: ids are assigned by `EventQueue::schedule` in call
//!   order. Every worker-buffered schedule is replayed at the barrier in
//!   global sequence order — the order the serial backend would have
//!   issued the same calls — and inline globals run after the flush that
//!   precedes them, so the id sequences coincide exactly.
//! * The fast class is exactly the configuration space where local events
//!   are provably pool-confined: the `NoRes` policy (suspension decisions
//!   are always `Stay`, drawing no policy randomness), round-robin
//!   initial scheduling (target pool is a pure cursor rotation, never
//!   reading the cluster view), zero view staleness and no VPM topology.
//!   Everything else falls back to 100% inline execution, which is the
//!   serial semantics by construction.
//! * Cancellation races collapse to one case: a completion popped into a
//!   batch whose cancel is produced by an earlier item of the same batch.
//!   Workers validate each delivered completion against the job's live
//!   `completion_event` id and silently skip stale ones — precisely the
//!   events the serial backend would have cancelled in-queue and never
//!   delivered (they count toward neither the event total nor the end
//!   time).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

use netbatch_cluster::ids::{JobId, PoolId};
use netbatch_cluster::job::{JobPhase, JobRecord};
use netbatch_cluster::pool::{PhysicalPool, PoolAction, SubmitKind};
use netbatch_sim_engine::executor::{Control, Handler, Scheduler};
use netbatch_sim_engine::queue::{EventId, EventQueue};
use netbatch_sim_engine::time::SimTime;

use crate::observer::{ObsCtx, ObsEvent};
use crate::simulator::{Ev, SimOutput, Simulator};

/// Aggregate time worker threads spent executing flush batches, across
/// every sharded run in the process since the last [`take_worker_busy_nanos`].
/// A benchmarking aid (the `perf_sharded` harness measures the
/// serial/parallel work split with it), never part of the simulation
/// contract: timing is collected around batch execution and does not
/// feed back into any decision.
static WORKER_BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Returns and resets the aggregate worker busy time in nanoseconds.
/// Meaningful only when runs are not concurrent (the counter is global).
pub(crate) fn take_worker_busy_nanos() -> u64 {
    WORKER_BUSY_NANOS.swap(0, Ordering::Relaxed)
}

/// Adds to the worker-busy aggregate (the streaming backend's workers
/// report through the same counter so `perf_sharded` measures both
/// backends with one probe).
pub(crate) fn add_worker_busy_nanos(nanos: u64) {
    WORKER_BUSY_NANOS.fetch_add(nanos, Ordering::Relaxed);
}

/// One classified-local event, parked in a shard's pending batch.
#[derive(Debug, Clone, Copy)]
struct BatchItem {
    /// Global pop position within the current batch window — the merge
    /// sequence everything this item produces is replayed under.
    seq: u32,
    /// The queue id the event was delivered with (completion staleness
    /// validation).
    id: EventId,
    ev: Ev,
    /// The owning pool: the round-robin target for a submission, the
    /// running pool for a completion.
    pool: PoolId,
}

/// A queue mutation a worker wants, deferred to the barrier.
#[derive(Debug, Clone, Copy)]
enum Effect {
    /// `jobs[job].completion_event = Some(schedule(at, Complete(job)))`.
    ScheduleCompletion { job: JobId, at: SimTime },
    /// Cancel a completion that was scheduled in an earlier flush.
    CancelById(EventId),
    /// Cancel the completion scheduled *this* batch for `job` (its id
    /// does not exist until the preceding `ScheduleCompletion` effect is
    /// applied; sequence order guarantees it is applied first).
    CancelPending(JobId),
}

/// Raw views into the simulator's job and pool storage, shipped to
/// workers for the duration of one flush.
///
/// # Safety
///
/// Shared mutable access is sound because accesses are disjoint and the
/// coordinator is quiescent:
///
/// * pools are partitioned by `pool_id % shards`, and a worker only
///   touches pools it owns — an item's side effects (preemptions, queue
///   starts, releases) are confined to the item's own pool;
/// * each job is the subject of at most one item per batch (one
///   submission ever; completions are unique and cannot share a batch
///   with their own start, since wall time is at least one minute), and
///   jobs mutated as side effects are residents of the item's pool,
///   which pins them to the same worker;
/// * the coordinator blocks on the result channel for the whole flush
///   and holds no live references into either storage while workers run;
/// * workers derive only short-lived per-element references from these
///   pointers, never whole-slice `&mut` views, so no two `&mut` to the
///   same element ever coexist.
#[derive(Clone, Copy)]
struct Arena {
    jobs: *mut JobRecord,
    jobs_len: usize,
    pools: *mut PhysicalPool,
    pools_len: usize,
}

// SAFETY: see the struct-level contract above — disjoint element access,
// quiescent owner, per-element reference derivation.
unsafe impl Send for Arena {}

impl Arena {
    fn of(sim: &mut Simulator) -> Self {
        Arena {
            jobs: sim.jobs.as_mut_ptr(),
            jobs_len: sim.jobs.len(),
            pools: sim.pools.as_mut_ptr(),
            pools_len: sim.pools.len(),
        }
    }

    /// # Safety
    /// Caller must hold the [`Arena`] disjointness contract: no other
    /// live reference to this job, on any thread.
    // The `&mut`-from-`&self` shape is the point: Arena is a `Copy`
    // capability handed to every worker, and exclusivity is the caller's
    // obligation (the disjointness contract), not the borrow checker's.
    #[allow(clippy::mut_from_ref)]
    unsafe fn job(&self, id: JobId) -> &mut JobRecord {
        debug_assert!(id.as_usize() < self.jobs_len);
        &mut *self.jobs.add(id.as_usize())
    }

    /// # Safety
    /// Caller must own `id` under the shard partition and hold no other
    /// live reference to this pool.
    #[allow(clippy::mut_from_ref)]
    unsafe fn pool(&self, id: PoolId) -> &mut PhysicalPool {
        debug_assert!(id.as_usize() < self.pools_len);
        &mut *self.pools.add(id.as_usize())
    }
}

/// One shard's work order for a flush window.
struct FlushMsg {
    time: SimTime,
    items: Vec<BatchItem>,
    arena: Arena,
    /// Whether observer emissions must be buffered (skipped entirely when
    /// the run has no observers — the benchmark path).
    collect: bool,
}

/// What a worker hands back at the barrier.
struct WorkerResult {
    shard: usize,
    /// Deferred queue mutations, in execution (ascending-seq) order.
    effects: Vec<(u32, Effect)>,
    /// Buffered observer events, in execution order.
    emissions: Vec<(u32, ObsEvent)>,
    completed: u64,
    suspensions: u64,
    /// Items actually executed (stale completions are skipped and do not
    /// count — the serial backend never delivers them at all).
    executed: u64,
    /// Per-phase `(events, nanos)` self-profile for this flush
    /// (submit = 0, complete = 1); all zeros when profiling is off.
    profile: [(u64, u64); 2],
    /// The (cleared) item buffer, recycled back to the coordinator.
    items: Vec<BatchItem>,
}

/// Entry point from [`Simulator::run_to_completion`].
pub(crate) fn run_sharded(mut sim: Simulator, shards: usize) -> SimOutput {
    // The fast class: configurations where submissions and completions
    // are provably pool-local (see module docs). Outside it, every event
    // is executed inline and the machinery degenerates to serial.
    let fast_class = sim.policy.is_no_res()
        && sim.initial.as_round_robin_mut().is_some()
        && sim.config.view_staleness.is_zero()
        && sim.config.topology.is_none();

    let mut queue = if sim.config.use_reference_queue {
        EventQueue::with_reference_heap()
    } else {
        EventQueue::with_capacity(sim.jobs.len() * 2 + 64)
    };
    sim.seed_initial_events(|at, ev| {
        queue.schedule(at, ev);
    });
    let profile_on = sim.profile.is_some();
    if let Some(profile) = sim.profile.as_mut() {
        profile.init_shards(shards);
    }

    std::thread::scope(|scope| {
        let (result_tx, result_rx) = mpsc::channel::<WorkerResult>();
        let mut work_txs = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<FlushMsg>();
            work_txs.push(tx);
            let results = result_tx.clone();
            scope.spawn(move || {
                let mut worker = ShardWorker::new(shard, profile_on);
                while let Ok(msg) = rx.recv() {
                    let t0 = std::time::Instant::now();
                    let result = worker.run_flush(msg);
                    WORKER_BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if results.send(result).is_err() {
                        return;
                    }
                }
            });
        }
        drop(result_tx);

        let collect = !sim.observers.is_empty();
        let mut pending: Vec<Vec<BatchItem>> = vec![Vec::new(); shards];
        let mut batch_len = 0usize;
        let mut batch_time = SimTime::ZERO;
        let mut seq = 0u32;
        let mut events: u64 = 0;
        let mut end_time = SimTime::ZERO;
        let mut candidates: Vec<PoolId> = Vec::new();

        macro_rules! flush {
            () => {
                if batch_len > 0 {
                    flush_batches(
                        &mut sim,
                        &mut queue,
                        &work_txs,
                        &result_rx,
                        &mut pending,
                        batch_time,
                        collect,
                        &mut events,
                        &mut end_time,
                    );
                    batch_len = 0;
                    seq = 0;
                }
            };
        }

        loop {
            // Epoch barrier: before popping past the batch's minute (or
            // off the end of the queue), flush so that deferred
            // completion bookings — which can land *earlier* than
            // whatever event happens to be stored next — are back in the
            // queue and participate in pop ordering. A flush never books
            // anything inside the batch minute itself (wall times are at
            // least one minute), so batching within the minute is safe.
            if batch_len > 0 && queue.peek_time() != Some(batch_time) {
                flush!();
            }
            let Some((time, id, ev)) = queue.pop_with_id() else {
                break;
            };
            let local = if fast_class {
                classify(&mut sim, ev, &mut candidates)
            } else {
                None
            };
            match local {
                Some(pool) => {
                    if batch_len == 0 {
                        batch_time = time;
                    }
                    pending[pool.as_usize() % shards].push(BatchItem { seq, id, ev, pool });
                    seq += 1;
                    batch_len += 1;
                }
                None => {
                    // Same-minute global: the barrier at the top of the
                    // loop only fires on minute changes, so locals popped
                    // earlier this minute must settle before the global
                    // executes inline.
                    flush!();
                    events += 1;
                    end_time = time;
                    let control = Handler::handle(
                        &mut sim,
                        time,
                        ev,
                        &mut Scheduler::for_queue(time, &mut queue),
                    );
                    debug_assert_eq!(control, Control::Continue);
                }
            }
        }
        debug_assert_eq!(batch_len, 0, "drain barrier flushed the last batch");
        drop(work_txs);
        sim.finish_run(end_time, events)
    })
}

/// Classifies one popped event under the fast class: `Some(pool)` when its
/// entire effect is confined to that pool, `None` for inline execution.
fn classify(sim: &mut Simulator, ev: Ev, candidates: &mut Vec<PoolId>) -> Option<PoolId> {
    match ev {
        Ev::Submit(job) => {
            let spec = sim.jobs[job.as_usize()].spec();
            candidates.clear();
            spec.affinity.candidates_into(sim.pool_count, candidates);
            if candidates.is_empty() {
                // order_into returns early without advancing the cursor,
                // so inline give-up keeps exact cursor parity.
                return None;
            }
            let resources = spec.resources;
            let rr = sim
                .initial
                .as_round_robin_mut()
                .expect("fast class implies round-robin");
            let start = rr.peek_start(candidates.len());
            for i in 0..candidates.len() {
                let pool = candidates[(start + i) % candidates.len()];
                if sim.pools[pool.as_usize()].is_eligible(resources) {
                    // Serial try_pool stops at the first eligible pool in
                    // rotation order; commit the single cursor step it
                    // would have taken.
                    rr.advance();
                    return Some(pool);
                }
            }
            // No pool can ever run the job: inline, where order_into
            // advances the cursor once and the give-up path runs.
            None
        }
        Ev::Complete(job) => match sim.jobs[job.as_usize()].phase() {
            // A delivered completion's job is always Running here: if the
            // cancelling suspension was flushed, the queue entry was
            // cancelled before this pop; if it is still in the pending
            // batch, the record has not been suspended yet. The stale
            // same-batch case is resolved worker-side by id validation.
            JobPhase::Running { pool, .. } => Some(pool),
            phase => unreachable!("completion delivered for non-running job {job}: {phase:?}"),
        },
        // Sampling, faults, lifecycle drains, wait checks, migrations and
        // retries read or mutate cross-pool state (evacuations re-route
        // through the VPM); they run inline after a flush.
        Ev::WaitCheck(_)
        | Ev::Sample
        | Ev::MachineDown(..)
        | Ev::MachineUp(..)
        | Ev::DrainStart(..)
        | Ev::DrainEnd(..)
        | Ev::MigrateArrive(..)
        | Ev::RetryDispatch(_) => None,
    }
}

/// Executes one barrier: fan batches out to the workers, collect their
/// buffered progress, and replay it serially in global sequence order.
#[allow(clippy::too_many_arguments)]
fn flush_batches(
    sim: &mut Simulator,
    queue: &mut EventQueue<Ev>,
    work_txs: &[mpsc::Sender<FlushMsg>],
    result_rx: &mpsc::Receiver<WorkerResult>,
    pending: &mut [Vec<BatchItem>],
    time: SimTime,
    collect: bool,
    events: &mut u64,
    end_time: &mut SimTime,
) {
    let arena = Arena::of(sim);
    let mut in_flight = 0usize;
    for (shard, batch) in pending.iter_mut().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let items = std::mem::take(batch);
        work_txs[shard]
            .send(FlushMsg {
                time,
                items,
                arena,
                collect,
            })
            .expect("worker alive while coordinator runs");
        in_flight += 1;
    }

    let mut effect_runs: Vec<Vec<(u32, Effect)>> = Vec::with_capacity(in_flight);
    let mut emission_runs: Vec<Vec<(u32, ObsEvent)>> = Vec::with_capacity(in_flight);
    let mut executed = 0u64;
    for _ in 0..in_flight {
        // A worker panic drops its result sender and surfaces here as a
        // RecvError; propagating the panic through the scope join gives
        // the original backtrace.
        let result = result_rx.recv().expect("worker panicked during flush");
        pending[result.shard] = result.items;
        sim.counters.completed += result.completed;
        sim.counters.suspensions += result.suspensions;
        executed += result.executed;
        if let Some(profile) = sim.profile.as_mut() {
            for (phase, &(items, nanos)) in result.profile.iter().enumerate() {
                profile.record_shard(result.shard, phase, nanos, items);
            }
        }
        effect_runs.push(result.effects);
        emission_runs.push(result.emissions);
    }
    // SAFETY of the barrier: all workers have replied, so no references
    // derived from the arena are live anywhere.

    *events += executed;
    if executed > 0 {
        // Every item in a batch shares one minute, so the serial clock
        // after processing the batch's surviving events is the batch
        // time. A batch of only stale (skipped) completions advances
        // nothing — serial never delivered those events.
        *end_time = time;
    }

    let merge_t0 = sim.profile.is_some().then(std::time::Instant::now);
    // Lane runs are sorted by construction (workers execute in ascending
    // seq order); the k-way merge restores the global pop order, which is
    // the order the serial backend issued these same calls in.
    let effects = netbatch_sim_engine::epoch::merge_sorted_runs(effect_runs, |e| e.0);
    for (_, effect) in effects {
        match effect {
            Effect::ScheduleCompletion { job, at } => {
                let id = queue.schedule(at, Ev::Complete(job));
                sim.jobs[job.as_usize()].completion_event = Some(id);
            }
            Effect::CancelById(id) => {
                // Usually still pending; returns false only for the
                // same-batch stale case, where the entry was already
                // popped into this very batch and skipped by the worker.
                queue.cancel(id);
            }
            Effect::CancelPending(job) => {
                let id = sim.jobs[job.as_usize()]
                    .completion_event
                    .take()
                    .expect("ScheduleCompletion applied earlier in sequence order");
                let live = queue.cancel(id);
                assert!(live, "a completion booked this batch lies strictly ahead");
            }
        }
    }

    if collect {
        let emissions = netbatch_sim_engine::epoch::merge_sorted_runs(emission_runs, |e| e.0);
        let ctx = ObsCtx {
            pools: &sim.pools,
            jobs: &sim.jobs,
            shadows: &sim.shadows,
        };
        for obs in &mut sim.observers {
            for (_, event) in &emissions {
                obs.on_replayed_event(time, event, &ctx);
            }
            obs.on_settle(time, &ctx);
        }
    }
    if let Some(t0) = merge_t0 {
        let nanos = t0.elapsed().as_nanos() as u64;
        if let Some(profile) = sim.profile.as_mut() {
            profile.record_coord_phase(crate::provenance::COORD_MERGE, nanos, 1);
        }
    }
}

/// Per-thread shard executor: mirrors the serial backend's fast-class
/// code paths exactly — same record transitions, same pool calls, same
/// emission order — deferring queue effects to the barrier.
struct ShardWorker {
    shard: usize,
    actions: Vec<PoolAction>,
    /// Jobs whose completion was booked (as a deferred effect) earlier in
    /// the current batch — the completions that cannot yet be cancelled
    /// by id because no id exists until the barrier.
    local_completions: HashSet<JobId>,
    effects: Vec<(u32, Effect)>,
    emissions: Vec<(u32, ObsEvent)>,
    completed: u64,
    suspensions: u64,
    executed: u64,
    collect: bool,
    /// Whether to time each item for the kernel self-profile.
    profile: bool,
    /// Per-phase `(events, nanos)` accumulated this flush (submit = 0,
    /// complete = 1).
    profile_nanos: [(u64, u64); 2],
    seq: u32,
}

impl ShardWorker {
    fn new(shard: usize, profile: bool) -> Self {
        ShardWorker {
            shard,
            actions: Vec::new(),
            local_completions: HashSet::new(),
            effects: Vec::new(),
            emissions: Vec::new(),
            completed: 0,
            suspensions: 0,
            executed: 0,
            collect: false,
            profile,
            profile_nanos: [(0, 0); 2],
            seq: 0,
        }
    }

    fn emit(&mut self, event: ObsEvent) {
        if self.collect {
            self.emissions.push((self.seq, event));
        }
    }

    fn run_flush(&mut self, msg: FlushMsg) -> WorkerResult {
        self.local_completions.clear();
        self.completed = 0;
        self.suspensions = 0;
        self.executed = 0;
        self.collect = msg.collect;
        self.profile_nanos = [(0, 0); 2];
        let FlushMsg {
            time,
            mut items,
            arena,
            ..
        } = msg;
        for item in &items {
            self.seq = item.seq;
            let t0 = self.profile.then(std::time::Instant::now);
            let phase = match item.ev {
                Ev::Submit(job) => {
                    self.run_submit(job, item.pool, time, &arena);
                    0
                }
                Ev::Complete(job) => {
                    self.run_complete(job, item.id, time, &arena);
                    1
                }
                other => unreachable!("non-local event in shard batch: {other:?}"),
            };
            if let Some(t0) = t0 {
                let cell = &mut self.profile_nanos[phase];
                cell.0 += 1;
                cell.1 += t0.elapsed().as_nanos() as u64;
            }
        }
        items.clear();
        WorkerResult {
            shard: self.shard,
            effects: std::mem::take(&mut self.effects),
            emissions: std::mem::take(&mut self.emissions),
            completed: self.completed,
            suspensions: self.suspensions,
            executed: self.executed,
            profile: self.profile_nanos,
            items,
        }
    }

    /// Mirror of the serial `Ev::Submit` arm specialized to the fast
    /// class: the target pool is precomputed, topology and wait timers do
    /// not exist, and the rotation the serial scheduler would try beyond
    /// the first eligible pool is irrelevant (it stops there).
    fn run_submit(&mut self, job: JobId, pool: PoolId, now: SimTime, arena: &Arena) {
        self.executed += 1;
        self.emit(ObsEvent::Kernel { kind: "submit" });
        // SAFETY: `job` is this item's subject and `pool` is owned by
        // this shard (Arena contract).
        let rec = unsafe { arena.job(job) };
        rec.submit(now).expect("submit events fire once per job");
        self.emit(ObsEvent::Submit { job });
        let outcome = {
            let pool_ref = unsafe { arena.pool(pool) };
            pool_ref.submit_into(now, rec.spec(), &mut self.actions)
        };
        match outcome {
            SubmitKind::Dispatched => {
                self.emit(ObsEvent::PoolChosen { job, pool });
                self.apply_batch(pool, now, arena);
            }
            SubmitKind::Queued => {
                self.emit(ObsEvent::PoolChosen { job, pool });
                unsafe { arena.job(job) }
                    .enqueue(now, pool)
                    .expect("job routed while at VPM");
                self.emit(ObsEvent::Enqueue { job, pool });
                // arm_wait_timer: NoRes has no wait threshold — no-op.
            }
            SubmitKind::Ineligible => {
                unreachable!("classification targets only eligible pools")
            }
        }
        self.actions.clear();
    }

    /// Mirror of the serial `Ev::Complete` arm under the fast class. A
    /// stale delivery — the completion was superseded by a suspension
    /// earlier in this same batch — is skipped without a trace, exactly
    /// as the serial backend's in-queue cancellation never delivers it.
    fn run_complete(&mut self, job: JobId, delivered: EventId, now: SimTime, arena: &Arena) {
        // SAFETY: `job` runs in a pool this shard owns (classified by its
        // running pool); no other item in this batch subjects it.
        let rec = unsafe { arena.job(job) };
        if rec.completion_event != Some(delivered) {
            return;
        }
        self.executed += 1;
        self.emit(ObsEvent::Kernel { kind: "complete" });
        let JobPhase::Running { pool, machine } = rec.phase() else {
            unreachable!("live completion for non-running job");
        };
        rec.completion_event = None;
        rec.complete(now).expect("phase checked running");
        // Shadow copies require the Duplicate decision, which the fast
        // class (NoRes) never produces.
        self.completed += 1;
        self.emit(ObsEvent::Complete { job, pool, machine });
        let was_running = {
            let pool_ref = unsafe { arena.pool(pool) };
            pool_ref.release_into(now, job, &mut self.actions)
        };
        assert!(was_running, "running job releases");
        self.apply_batch(pool, now, arena);
        self.actions.clear();
        // resolve_duplicate_race: no duplicate pairs exist under NoRes.
    }

    /// Mirror of the serial `apply_batch` + `decide_suspended` drain. The
    /// policy consultation vanishes: NoRes always answers `Stay`, reads
    /// no randomness and leaves no side effect, so suspended jobs simply
    /// stay put.
    fn apply_batch(&mut self, pool: PoolId, now: SimTime, arena: &Arena) {
        if !self.actions.is_empty() {
            self.emit(ObsEvent::BatchStart { pool });
        }
        let actions = std::mem::take(&mut self.actions);
        for &action in &actions {
            match action {
                PoolAction::Started { job, machine, wall } => {
                    // wait_checks stays 0 for the whole run under NoRes
                    // (never incremented), so the serial reset is a no-op.
                    // SAFETY: side-effect jobs are residents of `pool`,
                    // owned by this shard.
                    let rec = unsafe { arena.job(job) };
                    let from_queue = matches!(rec.phase(), JobPhase::Waiting { .. });
                    debug_assert!(
                        rec.wait_timer_event.is_none(),
                        "NoRes never arms wait timers"
                    );
                    rec.start(now, pool, machine, wall)
                        .expect("pool starts only routed jobs");
                    self.effects.push((
                        self.seq,
                        Effect::ScheduleCompletion {
                            job,
                            at: now + wall,
                        },
                    ));
                    self.local_completions.insert(job);
                    self.emit(ObsEvent::Dispatch {
                        job,
                        pool,
                        machine,
                        wall,
                        from_queue,
                    });
                }
                PoolAction::Suspended { job, machine } => {
                    let rec = unsafe { arena.job(job) };
                    match rec.completion_event.take() {
                        Some(ev) => self.effects.push((self.seq, Effect::CancelById(ev))),
                        None => {
                            // The completion was booked earlier in this
                            // batch; cancel it by job at the barrier.
                            assert!(
                                self.local_completions.remove(&job),
                                "suspended job has a live completion booking"
                            );
                            self.effects.push((self.seq, Effect::CancelPending(job)));
                        }
                    }
                    rec.suspend(now).expect("pool suspends only running jobs");
                    self.suspensions += 1;
                    self.emit(ObsEvent::Suspend { job, pool, machine });
                }
                PoolAction::Resumed { job, machine } => {
                    let rec = unsafe { arena.job(job) };
                    rec.resume(now).expect("pool resumes only suspended jobs");
                    let wall = rec.remaining_wall();
                    self.effects.push((
                        self.seq,
                        Effect::ScheduleCompletion {
                            job,
                            at: now + wall,
                        },
                    ));
                    self.local_completions.insert(job);
                    self.emit(ObsEvent::Resume { job, pool, machine });
                }
            }
        }
        self.actions = actions;
        self.actions.clear();
    }
}
