//! The NetBatch simulator: the open equivalent of Intel's ASCA
//! ("Agent-based Simulator for Compute Allocation") that the paper's
//! evaluation runs on.
//!
//! It wires together the cluster model (pools, machines, preemption), a
//! virtual pool manager driven by an [`InitialScheduler`], a dynamic
//! [`ReschedPolicy`], and the discrete-event kernel. Like ASCA it can
//! sample the state of every component each minute for post-analysis
//! (Figure 4) and runs a submitted trace until every job completes (§3.1:
//! "we execute these jobs on the ASCA simulator until all 248000 jobs are
//! completed").

use std::collections::VecDeque;

use netbatch_cluster::ids::{JobId, MachineId, PoolId};
use netbatch_cluster::job::{JobRecord, JobSpec, PoolAffinity};
use netbatch_cluster::pool::{PhysicalPool, PoolAction, SubmitKind};
use netbatch_cluster::snapshot::ClusterSnapshot;
use netbatch_metrics::timeseries::TimeSeries;
use netbatch_sim_engine::executor::{Control, Executor, Handler, RunOutcome, Scheduler};
use netbatch_sim_engine::observe::EventLabel;
use netbatch_sim_engine::queue::EventQueue;
use netbatch_sim_engine::rng::DetRng;
use netbatch_sim_engine::sampler::PeriodicSampler;
use netbatch_sim_engine::time::{SimDuration, SimTime};
use netbatch_workload::scenarios::SiteSpec;

use crate::faults::{
    FaultModel, FaultPlan, LifecycleModel, LifecyclePlan, LifecycleWindow, ResiliencePolicy,
};
use crate::observer::{
    AuditTrigger, AuditVerdict, InvariantChecker, ObsCtx, ObsEvent, PhaseTag, ReschedKind,
    SimObserver,
};
use crate::policy::initial::{InitialKind, InitialScheduler};
use crate::policy::resched::{Decision, ReschedPolicy, StrategyKind};
use crate::provenance::KernelProfile;

/// Simulator configuration: the experiment's policy axes plus extension
/// knobs (all defaults match the paper's setup).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Virtual-pool-manager scheduler.
    pub initial: InitialKind,
    /// Dynamic rescheduling strategy.
    pub strategy: StrategyKind,
    /// Fixed per-restart cost (data/binary transfer), accounted as
    /// rescheduling waste. Zero in the paper's experiments; an ablation
    /// knob here (the paper's future-work "rescheduling associated
    /// overheads").
    pub restart_overhead: SimDuration,
    /// Per-minute state sampling for Figure 4-style series. `None`
    /// disables sampling (faster for table experiments).
    pub sample_interval: Option<SimDuration>,
    /// Maximum number of restarts per job; `None` = unbounded (the paper's
    /// setting). An ablation knob against restart churn.
    pub max_restarts: Option<u32>,
    /// Age of the load information policies see. Zero (the paper's
    /// idealized oracle) means decisions always see fresh utilization;
    /// larger values model WAN propagation latency, the practicality
    /// caveat of §3.2.2.
    pub view_staleness: SimDuration,
    /// Seed for policy randomness (`ResSusRand` et al.).
    pub seed: u64,
    /// Machine failures to inject (extension; DESIGN.md §8). Each failure
    /// evicts every resident job — evicted jobs restart from scratch
    /// through the virtual pool manager, their lost progress accounted as
    /// rescheduling waste. Validated before seeding: overlapping outages
    /// of one machine are merged into non-overlapping intervals.
    pub failures: Vec<MachineFailure>,
    /// Stochastic fault model (extension). When set, an outage schedule is
    /// generated deterministically from `seed` and merged with `failures`.
    pub fault_model: Option<FaultModel>,
    /// Scheduler hardening against faults: retry budgets with exponential
    /// backoff after failure evictions, pool blacklisting, and graceful
    /// degradation when a whole pool is down. Disabled by default
    /// (bit-for-bit the unhardened behaviour).
    pub resilience: ResiliencePolicy,
    /// Scheduled machine-lifecycle model (extension): drains, cordons,
    /// maintenance windows, rolling-update waves and probe-derived
    /// per-machine health scores, generated deterministically from `seed`.
    /// `None` (the default) seeds no lifecycle events and leaves every
    /// machine fully healthy — bit-for-bit the current behaviour.
    pub lifecycle: Option<LifecycleModel>,
    /// Ad-hoc lifecycle windows (tests, replays), merged with the
    /// generated schedule exactly like `failures` merges with the fault
    /// model: overlapping windows for one machine collapse into a single
    /// drain/end pair.
    pub drains: Vec<LifecycleWindow>,
    /// Health-aware scheduling: initial routing and rescheduling target
    /// selection weight candidate pools by health (effective capacity
    /// excluding draining machines, weighted by probe scores), and the
    /// resilience policy's `evacuate_draining` switch governs proactive
    /// evacuation off draining machines. Off by default.
    pub health_aware: bool,
    /// Migration cost model, used by `MigrateSusUtil` (extension).
    pub migration: MigrationParams,
    /// Virtual-pool-manager topology (the paper's Figure 1: each site's
    /// VPM connects to a subset of the physical pools). `None` = a single
    /// VPM connected to every pool (the single-site evaluation setup).
    pub topology: Option<VpmTopology>,
    /// Attach an online [`InvariantChecker`] to the run, validating
    /// conservation, lifecycle and ordering invariants at every event
    /// (panics with replayable context on the first violation). Off by
    /// default; the observer layer costs nothing when no observer is
    /// attached.
    pub check_invariants: bool,
    /// Attach a [`Telemetry`](crate::telemetry::Telemetry) observer to
    /// the run: per-kind event
    /// counters, job-lifecycle latency spans, per-pool time series (with
    /// sampling on) and a Table-1-shape summary, renderable as a
    /// Prometheus exposition or a markdown report. Off by default; like
    /// every observer it costs nothing when not attached.
    pub telemetry: bool,
    /// Attach a [`SpanRecorder`](crate::provenance::SpanRecorder) to the
    /// run: per-job causal span trees (queue-wait → run → suspend →
    /// backoff → … segments, each with a typed cause) plus a decision
    /// audit log, renderable as spans JSONL or a Perfetto trace. Off by
    /// default; like every observer it costs nothing when not attached.
    pub spans: bool,
    /// Kernel self-profiling: attribute wall time per event kind (and per
    /// shard on the sharded backend), rendered as folded stacks for
    /// flamegraphs. Wall-clock readings are nondeterministic and never
    /// enter deterministic outputs. Off by default (one branch per event).
    pub profile: bool,
    /// Epoch pipelining on the streaming backend: with no observers
    /// attached, the coordinator keeps up to two epochs in flight
    /// (merging epoch N while workers execute N+1) whenever the next
    /// known minute directly succeeds the last dispatched one. On by
    /// default; the switch exists so the conformance suite can assert
    /// pipelined and unpipelined runs are byte-identical. Ignored by the
    /// serial and sharded backends.
    pub stream_pipeline: bool,
    /// Run on the reference binary-heap event queue instead of the
    /// hierarchical timer wheel. The two backends are contractually
    /// identical (differentially tested); this knob exists so end-to-end
    /// tests can assert golden traces are byte-identical on both.
    #[doc(hidden)]
    pub use_reference_queue: bool,
    /// Which simulation kernel drives the run. [`Backend::Serial`] (the
    /// default) is the reference single-threaded executor;
    /// [`Backend::Sharded`] partitions pools across worker threads and
    /// synchronizes at minute-epoch barriers, producing byte-identical
    /// traces (conformance-tested against serial at every shard count).
    pub backend: Backend,
}

/// Which simulation kernel [`Simulator::run_to_completion`] uses.
///
/// Mirrors the `use_reference_queue` switch pattern one level up: the
/// serial executor stays as the reference implementation, and the sharded
/// kernel is differentially tested against it (golden matrix + property
/// conformance suite) rather than trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The single-threaded reference executor.
    #[default]
    Serial,
    /// Pool-sharded workers under `std::thread::scope`, synchronized at
    /// minute-epoch barriers with a canonical (epoch, pool, seq) merge.
    Sharded {
        /// Number of worker threads (pools are assigned round-robin by
        /// pool id). Clamped to at least 1.
        shards: usize,
    },
}

/// A multi-VPM deployment: which pools each virtual pool manager serves
/// and whether rescheduling may cross VPM boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VpmTopology {
    /// Pool set per VPM. Jobs are assigned to VPMs round-robin by job id
    /// (stand-in for "submitted by users at that site").
    pub vpms: Vec<Vec<PoolId>>,
    /// If true, rescheduling may target any eligible pool site-wide
    /// (the paper's future-work "inter-site rescheduling"); if false,
    /// rescheduling stays within the job's home VPM's pools.
    pub inter_site_resched: bool,
    /// Extra restart overhead charged when a rescheduling move crosses
    /// VPM boundaries (WAN data/binary transfer).
    pub inter_site_overhead: SimDuration,
}

impl VpmTopology {
    /// Splits `pool_count` pools into `vpms` contiguous groups.
    ///
    /// # Panics
    ///
    /// Panics if `vpms` is zero or exceeds `pool_count`.
    pub fn contiguous(pool_count: u16, vpms: u16) -> Self {
        assert!(vpms > 0 && vpms <= pool_count, "need 1..=pool_count VPMs");
        let per = pool_count.div_ceil(vpms);
        let groups = (0..vpms)
            .map(|v| {
                (v * per..((v + 1) * per).min(pool_count))
                    .map(PoolId)
                    .collect()
            })
            .collect();
        VpmTopology {
            vpms: groups,
            inter_site_resched: false,
            inter_site_overhead: SimDuration::ZERO,
        }
    }

    /// Enables inter-site rescheduling with the given per-move overhead.
    pub fn with_inter_site(mut self, overhead: SimDuration) -> Self {
        self.inter_site_resched = true;
        self.inter_site_overhead = overhead;
        self
    }

    /// The VPM a job with this id and affinity submits to: users submit
    /// to a site whose VPM actually serves pools their job can run in
    /// (round-robin by job id among those). Falls back to VPM 0 when no
    /// VPM serves the affinity (the job will be reported unrunnable).
    pub fn vpm_for(&self, job: JobId, affinity_pools: &[PoolId]) -> usize {
        let eligible: Vec<usize> = self
            .vpms
            .iter()
            .enumerate()
            .filter(|(_, pools)| affinity_pools.iter().any(|p| pools.contains(p)))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            0
        } else {
            eligible[(job.as_u64() % eligible.len() as u64) as usize]
        }
    }
}

/// The cost of moving a job with its progress (checkpoint/VM migration),
/// per the paper's §2.3 discussion of virtualization overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationParams {
    /// Transfer delay before the job can resume at the target pool
    /// (checkpoint + data + binary movement).
    pub delay: SimDuration,
    /// Per-mille slowdown on the remaining work (1150 = the migrated copy
    /// needs 15% more wall time, mid-range of the paper's "performance
    /// overhead between 10% to 20%" for virtualized hosts).
    pub slowdown_milli: u32,
}

impl Default for MigrationParams {
    fn default() -> Self {
        MigrationParams {
            delay: SimDuration::from_minutes(30),
            slowdown_milli: 1150,
        }
    }
}

/// One injected machine failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineFailure {
    /// The pool containing the machine.
    pub pool: PoolId,
    /// The machine to fail.
    pub machine: MachineId,
    /// When it fails.
    pub at: SimTime,
    /// How long it stays down; `None` = forever.
    pub down_for: Option<SimDuration>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            initial: InitialKind::RoundRobin,
            strategy: StrategyKind::NoRes,
            restart_overhead: SimDuration::ZERO,
            sample_interval: None,
            max_restarts: None,
            view_staleness: SimDuration::ZERO,
            seed: 1,
            failures: Vec::new(),
            fault_model: None,
            resilience: ResiliencePolicy::disabled(),
            lifecycle: None,
            drains: Vec::new(),
            health_aware: false,
            migration: MigrationParams::default(),
            topology: None,
            check_invariants: false,
            telemetry: false,
            spans: false,
            profile: false,
            stream_pipeline: true,
            use_reference_queue: false,
            backend: Backend::Serial,
        }
    }
}

impl SimConfig {
    /// Config with the given policy axes and paper defaults elsewhere.
    pub fn new(initial: InitialKind, strategy: StrategyKind) -> Self {
        SimConfig {
            initial,
            strategy,
            ..SimConfig::default()
        }
    }

    /// Enables ASCA-style per-minute sampling.
    pub fn with_sampling(mut self) -> Self {
        self.sample_interval = Some(SimDuration::MINUTE);
        self
    }

    /// Attaches a [`Telemetry`](crate::telemetry::Telemetry) observer to
    /// the run.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Attaches a [`SpanRecorder`](crate::provenance::SpanRecorder)
    /// provenance observer to the run.
    pub fn with_spans(mut self) -> Self {
        self.spans = true;
        self
    }

    /// Enables the kernel self-profiler for the run.
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }
}

/// The simulation's event alphabet (public for the `Handler` impl; not
/// constructible outside this module in any useful way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A job's submission reaches the virtual pool manager.
    Submit(JobId),
    /// A running job finishes (cancelled and rescheduled on suspension).
    Complete(JobId),
    /// A waiting job's rescheduling timer fires.
    WaitCheck(JobId),
    /// Periodic state sampling.
    Sample,
    /// An injected machine failure fires.
    MachineDown(PoolId, MachineId),
    /// A failed machine comes back online.
    MachineUp(PoolId, MachineId),
    /// A migrating job arrives at its target pool.
    MigrateArrive(JobId, PoolId),
    /// A failure-evicted job's backoff delay expires; re-dispatch it.
    RetryDispatch(JobId),
    /// A lifecycle window opens: the machine stops accepting new work.
    /// Carries the kill deadline (`None` for cordons) so the proactive
    /// evacuation path knows what it is racing against.
    DrainStart(PoolId, MachineId, Option<SimTime>),
    /// A lifecycle window closes: the machine re-opens for placement.
    DrainEnd(PoolId, MachineId),
}

impl Ev {
    /// Dense index of the event's kind, matching
    /// [`KERNEL_EV_KINDS`](crate::provenance::KERNEL_EV_KINDS) — the
    /// kernel profiler's per-phase attribution key.
    pub fn kind_index(self) -> usize {
        match self {
            Ev::Submit(_) => 0,
            Ev::Complete(_) => 1,
            Ev::WaitCheck(_) => 2,
            Ev::Sample => 3,
            Ev::MachineDown(..) => 4,
            Ev::MachineUp(..) => 5,
            Ev::MigrateArrive(..) => 6,
            Ev::RetryDispatch(_) => 7,
            Ev::DrainStart(..) => 8,
            Ev::DrainEnd(..) => 9,
        }
    }
}

impl EventLabel for Ev {
    fn label(&self) -> &'static str {
        match self {
            Ev::Submit(_) => "submit",
            Ev::Complete(_) => "complete",
            Ev::WaitCheck(_) => "wait_check",
            Ev::Sample => "sample",
            Ev::MachineDown(..) => "machine_down",
            Ev::MachineUp(..) => "machine_up",
            Ev::MigrateArrive(..) => "migrate_arrive",
            Ev::RetryDispatch(_) => "retry_dispatch",
            Ev::DrainStart(..) => "drain_start",
            Ev::DrainEnd(..) => "drain_end",
        }
    }
}

/// Counters describing a finished run, beyond per-job records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Jobs that completed.
    pub completed: u64,
    /// Jobs no pool could ever run (should be zero for generated traces).
    pub unrunnable: u64,
    /// Preemption (suspension) events.
    pub suspensions: u64,
    /// Restarts triggered from the suspended state.
    pub restarts_from_suspend: u64,
    /// Restarts triggered from wait queues.
    pub restarts_from_wait: u64,
    /// Jobs evicted by injected machine failures.
    pub failure_evictions: u64,
    /// Jobs proactively moved off a draining machine before its kill
    /// deadline (lifecycle runs with `evacuate_draining` on).
    pub evacuations: u64,
    /// Backoff retries scheduled after failure evictions (hardened runs).
    pub retries_scheduled: u64,
    /// Retries that found every capable pool fully down and parked the job
    /// at the VPM for another backoff interval (graceful degradation).
    pub vpm_requeues: u64,
    /// Migrations performed (progress kept).
    pub migrations: u64,
    /// Duplicate copies launched.
    pub duplicates_launched: u64,
    /// Races won by the duplicate copy rather than the original.
    pub duplicates_won: u64,
    /// Events processed by the kernel.
    pub events: u64,
}

/// Reusable buffers for the per-event hot path: in steady state every
/// event is handled without heap allocation — candidate lists, preference
/// orders, pool-action batches, cascade worklists and spec clones all come
/// from (and return to) these free lists.
///
/// Buffers that can be live at several nesting depths at once are pooled
/// as free lists rather than held as single fields: a rescheduling cascade
/// can re-enter `route_via_vpm` (and thus need a second preference order
/// and worklist) while an outer routing loop still holds its own. Buffers
/// only used by non-reentrant handlers (machine failures) are plain fields
/// taken with `std::mem::take` for the duration of the handler.
#[derive(Default)]
struct Scratch {
    /// Free list of pool-id buffers (affinity candidates, preference
    /// orders, capable/up filters).
    pool_lists: Vec<Vec<PoolId>>,
    /// Free list of pool-action batches.
    actions: Vec<Vec<PoolAction>>,
    /// Free list of suspended-cascade worklists.
    worklists: Vec<VecDeque<(JobId, PoolId)>>,
    /// Free list of spec clones whose affinity is `Any` (`JobSpec::clone_from`
    /// reuses the affinity subset allocation on reuse).
    specs_any: Vec<JobSpec>,
    /// Free list of spec clones whose affinity is `Subset`. Kept apart from
    /// `specs_any` so `clone_from` pairs like with like: cloning a `Subset`
    /// source over an `Any` clone would reallocate the pool list, and the
    /// workload mixes both affinities.
    specs_subset: Vec<JobSpec>,
    /// Machine-failure eviction lists (non-reentrant: one failure event is
    /// fully handled before the next).
    evict_running: Vec<JobId>,
    /// Suspended-side eviction list for the same failure event.
    evict_suspended: Vec<JobId>,
    /// Combined eviction worklist tagged with the pre-eviction phase.
    evicted: Vec<(JobId, PhaseTag)>,
}

impl Scratch {
    fn take_pool_list(&mut self) -> Vec<PoolId> {
        self.pool_lists.pop().unwrap_or_default()
    }

    fn put_pool_list(&mut self, mut list: Vec<PoolId>) {
        list.clear();
        self.pool_lists.push(list);
    }

    fn take_actions(&mut self) -> Vec<PoolAction> {
        self.actions.pop().unwrap_or_default()
    }

    fn put_actions(&mut self, mut batch: Vec<PoolAction>) {
        batch.clear();
        self.actions.push(batch);
    }

    fn take_worklist(&mut self) -> VecDeque<(JobId, PoolId)> {
        self.worklists.pop().unwrap_or_default()
    }

    fn put_worklist(&mut self, mut list: VecDeque<(JobId, PoolId)>) {
        list.clear();
        self.worklists.push(list);
    }

    /// A working copy of `src`; reuses a retired clone's allocations via
    /// `JobSpec::clone_from` when one with the same affinity variant is
    /// available (falling back to the other pool, then to a fresh clone).
    fn take_spec(&mut self, src: &JobSpec) -> JobSpec {
        let (matching, other) = match src.affinity {
            PoolAffinity::Any => (&mut self.specs_any, &mut self.specs_subset),
            PoolAffinity::Subset(_) => (&mut self.specs_subset, &mut self.specs_any),
        };
        match matching.pop().or_else(|| other.pop()) {
            Some(mut spec) => {
                spec.clone_from(src);
                spec
            }
            None => src.clone(),
        }
    }

    fn put_spec(&mut self, spec: JobSpec) {
        match spec.affinity {
            PoolAffinity::Any => self.specs_any.push(spec),
            PoolAffinity::Subset(_) => self.specs_subset.push(spec),
        }
    }
}

/// The simulator itself. Construct with [`Simulator::new`], run with
/// [`Simulator::run_to_completion`], then read results through
/// [`Simulator::jobs`], [`Simulator::counters`] and the sampled series.
pub struct Simulator {
    pub(crate) pools: Vec<PhysicalPool>,
    pub(crate) jobs: Vec<JobRecord>,
    pub(crate) initial: Box<dyn InitialScheduler>,
    pub(crate) policy: Box<dyn ReschedPolicy>,
    policy_rng: DetRng,
    pub(crate) config: SimConfig,
    pub(crate) pool_count: u16,
    // The generated lifecycle schedule (empty when `config.lifecycle` is
    // `None`): drain/undrain events are seeded from it and its kill
    // intervals are merged into the fault plan.
    lifecycle_plan: LifecyclePlan,
    // Cached cluster view for policies (refreshed in place per
    // view_staleness; `view_at == None` means the snapshot is stale).
    view_snap: ClusterSnapshot,
    view_at: Option<SimTime>,
    // Reusable hot-path buffers (see `Scratch`).
    scratch: Scratch,
    // Progress.
    pub(crate) total_jobs: u64,
    pub(crate) counters: RunCounters,
    // Wait-check re-arms per waiting stint (livelock guard; reset on start).
    wait_checks: Vec<u32>,
    // Failure-driven retry attempts per job (hardened runs only).
    fault_retries: Vec<u32>,
    // Per-pool blacklisted-until instant (SimTime::ZERO = never failed).
    blacklist: Vec<SimTime>,
    // Jobs that exhausted their retry budget; kept so duplicate pairs are
    // settled exactly once.
    gave_up: std::collections::HashSet<JobId>,
    // Remaining runtime a migrating job resubmits with, parked while the
    // transfer delay elapses.
    migrating: std::collections::HashMap<JobId, SimDuration>,
    // Home VPM per job (empty when no topology is configured).
    vpm_assignment: Vec<usize>,
    // original -> duplicate and duplicate -> original links.
    dup_of: std::collections::HashMap<JobId, JobId>,
    // Job ids that are duplicate (shadow) copies, excluded from metrics.
    pub(crate) shadows: std::collections::HashSet<JobId>,
    // Figure-4 series (populated when sampling is enabled).
    suspended_series: TimeSeries,
    utilization_series: TimeSeries,
    waiting_series: TimeSeries,
    // Attached observers; the emit path is a no-op while this is empty.
    pub(crate) observers: Vec<Box<dyn SimObserver>>,
    // Sampling cadence (mirrors `config.sample_interval`).
    sampler: Option<PeriodicSampler>,
    // The merged, normalized fault schedule (injected failures + generated
    // outages + lifecycle kills), stored at seeding time so fault audits
    // can name the outage id behind each `MachineDown`.
    fault_plan: FaultPlan,
    // Kernel self-profiler (`config.profile`); `None` costs one branch per
    // event. Wall-clock readings never enter deterministic outputs.
    pub(crate) profile: Option<Box<KernelProfile>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("pools", &self.pools.len())
            .field("jobs", &self.jobs.len())
            .field("strategy", &self.policy.name())
            .field("initial", &self.initial.name())
            .field("completed", &self.counters.completed)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator over `site` with the given submitted jobs.
    ///
    /// # Panics
    ///
    /// Panics if job ids are not the dense sequence `0..n` in submission
    /// order (what [`netbatch_workload::Trace::to_specs`] produces).
    pub fn new(site: &SiteSpec, specs: Vec<JobSpec>, config: SimConfig) -> Self {
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id.as_usize(), i, "job ids must be dense and ordered");
        }
        let mut pools: Vec<PhysicalPool> = site
            .pools
            .iter()
            .map(|p| PhysicalPool::new(p.clone()))
            .collect();
        let pool_count = pools.len() as u16;
        // Generate the lifecycle schedule up front: probe-derived health
        // scores apply from t=0 (they describe the machines, not an
        // event), while the windows are seeded as drain/undrain events.
        let mut lifecycle_plan = match config.lifecycle.as_ref() {
            Some(model) => {
                let shape: Vec<(PoolId, u32)> = pools
                    .iter()
                    .map(|p| (p.id(), p.machine_count() as u32))
                    .collect();
                model.generate(&shape, config.seed)
            }
            None => LifecyclePlan::default(),
        };
        if !config.drains.is_empty() {
            // Ad-hoc windows join the generated schedule through the same
            // normalization, so overlaps merge instead of double-draining.
            let mut raw = config.drains.clone();
            raw.extend_from_slice(lifecycle_plan.windows());
            lifecycle_plan = LifecyclePlan::new(raw, lifecycle_plan.health_scores().to_vec());
        }
        for &(pool, machine, health) in lifecycle_plan.health_scores() {
            if let Some(p) = pools.get_mut(pool.as_usize()) {
                p.set_machine_health(machine, health);
            }
        }
        let mut initial = config.initial.build();
        let mut policy = config.strategy.build();
        if config.health_aware {
            initial.set_health_aware(true);
            policy.set_health_aware(true);
        }
        let total_jobs = specs.len() as u64;
        let policy_rng = DetRng::from_seed_u64(config.seed).stream("policy");
        let wait_checks = vec![0; specs.len()];
        let fault_retries = vec![0; specs.len()];
        let blacklist = vec![SimTime::ZERO; pools.len()];
        let vpm_assignment = match config.topology.as_ref() {
            Some(topo) => specs
                .iter()
                .map(|s| topo.vpm_for(s.id, &s.affinity.candidates(pool_count)))
                .collect(),
            None => Vec::new(),
        };
        let mut observers: Vec<Box<dyn SimObserver>> = Vec::new();
        if config.check_invariants {
            observers.push(Box::new(InvariantChecker::new()));
        }
        if config.telemetry {
            observers.push(Box::new(crate::telemetry::Telemetry::new(
                config.strategy.name(),
                config.initial.name(),
            )));
        }
        if config.spans {
            observers.push(Box::new(crate::provenance::SpanRecorder::new(
                config.strategy.name(),
                config.initial.name(),
            )));
        }
        let sampler = config
            .sample_interval
            .map(|interval| PeriodicSampler::new(SimTime::ZERO, interval));
        Simulator {
            pools,
            jobs: specs.into_iter().map(JobRecord::new).collect(),
            wait_checks,
            fault_retries,
            blacklist,
            gave_up: std::collections::HashSet::new(),
            vpm_assignment,
            migrating: std::collections::HashMap::new(),
            dup_of: std::collections::HashMap::new(),
            shadows: std::collections::HashSet::new(),
            initial,
            policy,
            policy_rng,
            pool_count,
            lifecycle_plan,
            view_snap: ClusterSnapshot::default(),
            view_at: None,
            scratch: Scratch::default(),
            total_jobs,
            counters: RunCounters::default(),
            suspended_series: TimeSeries::new(),
            utilization_series: TimeSeries::new(),
            waiting_series: TimeSeries::new(),
            observers,
            sampler,
            fault_plan: FaultPlan::default(),
            profile: config.profile.then(|| Box::new(KernelProfile::new())),
            config,
        }
    }

    /// Attaches an observer for the coming run. Observers see every
    /// lifecycle transition in deterministic order and ride out through
    /// [`SimOutput::observers`] when the run finishes.
    pub fn attach_observer(&mut self, observer: Box<dyn SimObserver>) {
        self.observers.push(observer);
    }

    /// Delivers one observable event to every attached observer. Returns
    /// immediately when none are attached, keeping the observer layer
    /// zero-cost for plain table experiments.
    fn emit(&mut self, now: SimTime, event: ObsEvent) {
        if self.observers.is_empty() {
            return;
        }
        let ctx = ObsCtx {
            pools: &self.pools,
            jobs: &self.jobs,
            shadows: &self.shadows,
        };
        for obs in &mut self.observers {
            obs.on_event(now, &event, &ctx);
        }
    }

    /// Like [`Simulator::new`] but with an explicitly constructed
    /// rescheduling policy (for policies with non-default parameters, e.g.
    /// custom [`crate::policy::SmartWeights`]). `config.strategy` is kept
    /// for labeling only.
    pub fn with_policy(
        site: &SiteSpec,
        specs: Vec<JobSpec>,
        config: SimConfig,
        policy: Box<dyn ReschedPolicy>,
    ) -> Self {
        let mut sim = Simulator::new(site, specs, config);
        sim.policy = policy;
        if sim.config.health_aware {
            sim.policy.set_health_aware(true);
        }
        sim
    }

    /// Runs the whole trace until every job completes (the paper's run
    /// discipline). Returns the run counters.
    pub fn run_to_completion(self) -> SimOutput {
        match self.config.backend {
            Backend::Serial => self.run_serial(),
            Backend::Sharded { shards } => crate::sharded::run_sharded(self, shards.max(1)),
        }
    }

    /// Runs a workload to completion with *streaming* generation: jobs
    /// are generated shard-locally epoch by epoch from `workload`'s RNG
    /// substreams (`seed` must be the trace seed a materialized run would
    /// use), so peak memory is proportional to the in-flight job count,
    /// not the trace length. The simulator must be constructed with an
    /// **empty** spec list; [`Backend::Serial`] runs one worker,
    /// [`Backend::Sharded`] one per shard, byte-identically.
    ///
    /// [`SimOutput::jobs`] is populated only when at least one observer
    /// is attached (retaining records would defeat flat memory);
    /// counters, series and pool stats are always complete.
    ///
    /// # Panics
    ///
    /// Panics when the configuration leaves the supported fast class
    /// (`NoRes` + round-robin + zero staleness, no topology, faults,
    /// lifecycle, resilience or dense-id observers) or when `workload` is
    /// not pool-major pinned (see
    /// [`netbatch_workload::WorkloadSpec::validate_pool_major`]).
    pub fn run_streaming(self, workload: &netbatch_workload::WorkloadSpec, seed: u64) -> SimOutput {
        let shards = match self.config.backend {
            Backend::Serial => 1,
            Backend::Sharded { shards } => shards.max(1),
        };
        crate::streaming::run_streaming(self, workload, seed, shards)
    }

    fn run_serial(mut self) -> SimOutput {
        // Pre-size the queue for the submit wave; the reference-heap
        // backend exists for end-to-end differential tests only.
        let mut executor = if self.config.use_reference_queue {
            Executor::with_queue(EventQueue::with_reference_heap())
        } else {
            Executor::with_capacity(self.jobs.len() * 2 + 64)
        };
        self.seed_initial_events(|at, ev| {
            executor.seed_event(at, ev);
        });
        let stats = executor.run(&mut self);
        assert_eq!(
            stats.outcome,
            RunOutcome::Drained,
            "simulation should drain, not stop early"
        );
        self.finish_run(stats.end_time, stats.events_processed)
    }

    /// Seeds the run's initial events — job submissions, the first sample
    /// tick, the fault schedule — through `seed`, in the canonical order
    /// both backends must share (event ids are assigned sequentially, so
    /// seeding order is part of the determinism contract).
    pub(crate) fn seed_initial_events(&mut self, mut seed: impl FnMut(SimTime, Ev)) {
        for job in &self.jobs {
            seed(job.spec().submit_time, Ev::Submit(job.id()));
        }
        if let Some(sampler) = self.sampler.as_mut() {
            seed(sampler.next_tick(), Ev::Sample);
        }
        // Validate the ad-hoc failure list and merge it with the generated
        // schedule: per-machine intervals are non-overlapping afterwards,
        // so no up-event can resurrect a machine inside a later outage.
        let mut plan = FaultPlan::from_failures(&self.config.failures);
        if let Some(model) = self.config.fault_model.as_ref() {
            let shape: Vec<(PoolId, u32)> = self
                .pools
                .iter()
                .map(|p| (p.id(), p.machine_count() as u32))
                .collect();
            plan = plan
                .merge(model.generate(&shape, self.config.seed))
                .clamp_to(model.horizon);
        }
        // Lifecycle kills enter the same plan, so a stochastic outage
        // overlapping a maintenance window collapses into one down/up pair
        // (the invariant checker's alternation rule demands exactly that).
        if !self.lifecycle_plan.is_empty() {
            plan = plan.merge(FaultPlan::new(self.lifecycle_plan.kill_outages()));
        }
        for o in plan.outages() {
            seed(o.from, Ev::MachineDown(o.pool, o.machine));
            if let Some(until) = o.until {
                seed(until, Ev::MachineUp(o.pool, o.machine));
            }
        }
        // Keep the merged plan: outage ids in fault audits are indices
        // into exactly this normalized schedule.
        self.fault_plan = plan;
        // Drain windows seed after the outage pairs, so at a shared
        // instant the machine is restored (still draining, no dispatch)
        // before the drain ends and re-opens it.
        for w in self.lifecycle_plan.windows() {
            seed(w.drain_from, Ev::DrainStart(w.pool, w.machine, w.down_from));
            seed(w.until, Ev::DrainEnd(w.pool, w.machine));
        }
    }

    /// Final bookkeeping shared by both backends: records the event count,
    /// runs `on_run_end`, filters shadow copies out of the reported
    /// population and assembles the [`SimOutput`].
    pub(crate) fn finish_run(mut self, end_time: SimTime, events_processed: u64) -> SimOutput {
        self.counters.events = events_processed;
        debug_assert!(self.pools.iter().all(PhysicalPool::check_invariants));
        if !self.observers.is_empty() {
            let ctx = ObsCtx {
                pools: &self.pools,
                jobs: &self.jobs,
                shadows: &self.shadows,
            };
            for obs in &mut self.observers {
                obs.on_run_end(end_time, &ctx);
            }
        }
        // Duplicate (shadow) copies are bookkeeping, not submitted jobs:
        // drop them from the reported population.
        let shadows = self.shadows;
        let jobs: Vec<JobRecord> = self
            .jobs
            .into_iter()
            .filter(|j| !shadows.contains(&j.id()))
            .collect();
        let pool_stats = self.pools.iter().map(|p| (p.id(), p.stats())).collect();
        SimOutput {
            jobs,
            counters: self.counters,
            pool_stats,
            end_time,
            suspended_series: self.suspended_series,
            utilization_series: self.utilization_series,
            waiting_series: self.waiting_series,
            observers: self.observers,
            profile: self.profile.map(|p| *p),
        }
    }

    // ---- internals ----

    /// Brings the policy's (possibly stale) cluster view up to date in
    /// place; after this call `self.view_snap` is what decisions at `now`
    /// should see. Refreshing in place reuses the snapshot's pool buffer
    /// rather than cloning a fresh snapshot per decision.
    fn refresh_view(&mut self, now: SimTime) {
        let fresh_needed = match self.view_at {
            Some(at) => now.since(at) > self.config.view_staleness,
            None => true,
        };
        if fresh_needed {
            self.view_snap.capture_into(self.pools.iter());
            self.view_at = Some(now);
        }
    }

    /// Invalidate the view when staleness is zero so every decision sees
    /// current state (the paper's oracle assumption).
    fn touch_view(&mut self) {
        if self.config.view_staleness.is_zero() {
            self.view_at = None;
        }
    }

    /// Emits a [`ObsEvent::PolicyAudit`] carrying the ranking inputs the
    /// policy just saw in the (still-fresh) cluster view — the evidence
    /// `netbatch trace --why` replays for each decision.
    #[allow(clippy::too_many_arguments)]
    fn emit_policy_audit(
        &mut self,
        job: JobId,
        pool: PoolId,
        trigger: AuditTrigger,
        verdict: AuditVerdict,
        target: Option<PoolId>,
        candidates: u16,
        now: SimTime,
    ) {
        let health = self.config.health_aware;
        let (cur_util_milli, cur_queue) =
            crate::policy::resched::audit_inputs(&self.view_snap, pool, health);
        let (tgt_util_milli, tgt_queue) = target.map_or((cur_util_milli, cur_queue), |t| {
            crate::policy::resched::audit_inputs(&self.view_snap, t, health)
        });
        self.emit(
            now,
            ObsEvent::PolicyAudit {
                job,
                pool,
                trigger,
                verdict,
                target,
                candidates,
                cur_util_milli,
                tgt_util_milli,
                cur_queue,
                tgt_queue,
            },
        );
    }

    /// The pools this job may be rescheduled to: affinity candidates that
    /// also have at least one machine capable of running it, and — under a
    /// multi-VPM topology without inter-site rescheduling — belong to the
    /// job's home VPM. Hardened runs additionally exclude pools inside
    /// their blacklist cooldown after a machine failure.
    fn eligible_candidates_into(&self, spec: &JobSpec, now: SimTime, out: &mut Vec<PoolId>) {
        let home = self.home_pools(spec.id);
        let hardened = self.config.resilience.enabled;
        spec.affinity.candidates_into(self.pool_count, out);
        out.retain(|p| {
            home.is_none_or(|pools| pools.contains(p))
                && self.pools[p.as_usize()].is_eligible(spec.resources)
                && (!hardened || self.blacklist[p.as_usize()] <= now)
        });
    }

    /// The job's home VPM pool set, unless rescheduling is site-global.
    fn home_pools(&self, job: JobId) -> Option<&[PoolId]> {
        let topo = self.config.topology.as_ref()?;
        if topo.inter_site_resched {
            return None;
        }
        Some(&topo.vpms[self.vpm_assignment[job.as_usize()]])
    }

    /// The restart overhead for moving `job` to `target`: the base cost
    /// plus the inter-site surcharge when the move leaves the home VPM.
    fn move_overhead(&self, job: JobId, target: PoolId) -> SimDuration {
        let mut overhead = self.config.restart_overhead;
        if let Some(topo) = self.config.topology.as_ref() {
            let home = &topo.vpms[self.vpm_assignment[job.as_usize()]];
            if !home.contains(&target) {
                overhead += topo.inter_site_overhead;
            }
        }
        overhead
    }

    /// Initial-routing candidates: affinity ∩ the home VPM's pools (a VPM
    /// only dispatches to pools it is connected to, Figure 1).
    fn initial_candidates_into(&self, spec: &JobSpec, out: &mut Vec<PoolId>) {
        spec.affinity.candidates_into(self.pool_count, out);
        if let Some(topo) = self.config.topology.as_ref() {
            let home = &topo.vpms[self.vpm_assignment[spec.id.as_usize()]];
            out.retain(|p| home.contains(p));
        }
    }

    /// Routes a job through the virtual pool manager: try pools in the
    /// initial scheduler's preference order, bouncing on ineligibility.
    fn route_via_vpm(&mut self, job: JobId, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        let spec = self.scratch.take_spec(self.jobs[job.as_usize()].spec());
        let mut candidates = self.scratch.take_pool_list();
        self.initial_candidates_into(&spec, &mut candidates);
        self.refresh_view(now);
        let mut order = self.scratch.take_pool_list();
        self.initial
            .order_into(&spec, &candidates, &self.view_snap, &mut order);
        let mut routed = false;
        for &pool in &order {
            if self.try_pool(pool, &spec, now, sched) {
                routed = true;
                break;
            }
        }
        if !routed {
            // No pool can ever run this job.
            self.give_up(job, now);
        }
        self.scratch.put_pool_list(order);
        self.scratch.put_pool_list(candidates);
        self.scratch.put_spec(spec);
    }

    /// Tries one pool; `true` if the job was dispatched or queued there,
    /// `false` if the pool is ineligible.
    fn try_pool(
        &mut self,
        pool: PoolId,
        spec: &JobSpec,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) -> bool {
        let mut actions = self.scratch.take_actions();
        let placed = match self.pools[pool.as_usize()].submit_into(now, spec, &mut actions) {
            SubmitKind::Dispatched => {
                self.touch_view();
                self.emit(now, ObsEvent::PoolChosen { job: spec.id, pool });
                self.apply_actions(pool, &actions, now, sched);
                true
            }
            SubmitKind::Queued => {
                self.touch_view();
                self.emit(now, ObsEvent::PoolChosen { job: spec.id, pool });
                self.jobs[spec.id.as_usize()]
                    .enqueue(now, pool)
                    .expect("job routed while at VPM");
                self.emit(now, ObsEvent::Enqueue { job: spec.id, pool });
                self.arm_wait_timer(spec.id, now, sched);
                true
            }
            SubmitKind::Ineligible => false,
        };
        self.scratch.put_actions(actions);
        placed
    }

    /// The most wait-check timer re-arms a job may consume per waiting
    /// stint — a backstop against livelock when a waiting job can never
    /// start (e.g. every capable machine failed permanently).
    const MAX_WAIT_CHECKS: u32 = 10_000;

    /// Arms the wait-rescheduling timer for a freshly queued job, if the
    /// strategy reschedules waiting jobs.
    fn arm_wait_timer(&mut self, job: JobId, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        if let Some(threshold) = self.policy.wait_threshold() {
            if self.wait_checks[job.as_usize()] >= Self::MAX_WAIT_CHECKS {
                return;
            }
            self.wait_checks[job.as_usize()] += 1;
            let id = sched.schedule_at(now + threshold, Ev::WaitCheck(job));
            self.jobs[job.as_usize()].wait_timer_event = Some(id);
        }
    }

    /// Applies a batch of pool actions, then runs rescheduling decisions
    /// for any jobs the batch suspended. Rescheduling can cascade (a
    /// restarted job may preempt in its new pool); the worklist makes the
    /// cascade iterative and bounded.
    fn apply_actions(
        &mut self,
        pool: PoolId,
        actions: &[PoolAction],
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let mut suspended = self.scratch.take_worklist();
        self.apply_batch(pool, actions, now, sched, &mut suspended);
        while let Some((job, at_pool)) = suspended.pop_front() {
            self.decide_suspended(job, at_pool, now, sched, &mut suspended);
        }
        self.scratch.put_worklist(suspended);
    }

    /// Bookkeeping for one action batch; newly suspended jobs are pushed
    /// onto the worklist rather than decided inline.
    fn apply_batch(
        &mut self,
        pool: PoolId,
        actions: &[PoolAction],
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
        suspended: &mut VecDeque<(JobId, PoolId)>,
    ) {
        if !actions.is_empty() {
            // Scope for the per-batch resume-order invariant.
            self.emit(now, ObsEvent::BatchStart { pool });
        }
        for &action in actions {
            match action {
                PoolAction::Started { job, machine, wall } => {
                    self.wait_checks[job.as_usize()] = 0;
                    let from_queue = matches!(
                        self.jobs[job.as_usize()].phase(),
                        netbatch_cluster::job::JobPhase::Waiting { .. }
                    );
                    let rec = &mut self.jobs[job.as_usize()];
                    if let Some(timer) = rec.wait_timer_event.take() {
                        sched.cancel(timer);
                    }
                    rec.start(now, pool, machine, wall)
                        .expect("pool starts only routed jobs");
                    rec.completion_event = Some(sched.schedule_at(now + wall, Ev::Complete(job)));
                    self.emit(
                        now,
                        ObsEvent::Dispatch {
                            job,
                            pool,
                            machine,
                            wall,
                            from_queue,
                        },
                    );
                }
                PoolAction::Suspended { job, machine } => {
                    let rec = &mut self.jobs[job.as_usize()];
                    if let Some(ev) = rec.completion_event.take() {
                        sched.cancel(ev);
                    }
                    rec.suspend(now).expect("pool suspends only running jobs");
                    self.counters.suspensions += 1;
                    self.emit(now, ObsEvent::Suspend { job, pool, machine });
                    suspended.push_back((job, pool));
                }
                PoolAction::Resumed { job, machine } => {
                    let rec = &mut self.jobs[job.as_usize()];
                    rec.resume(now).expect("pool resumes only suspended jobs");
                    let wall = rec.remaining_wall();
                    rec.completion_event = Some(sched.schedule_at(now + wall, Ev::Complete(job)));
                    self.emit(now, ObsEvent::Resume { job, pool, machine });
                }
            }
        }
    }

    /// Consults the rescheduling policy for one freshly suspended job and
    /// executes its decision.
    fn decide_suspended(
        &mut self,
        job: JobId,
        at_pool: PoolId,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
        suspended: &mut VecDeque<(JobId, PoolId)>,
    ) {
        let rec = &self.jobs[job.as_usize()];
        // The job may already have been resumed (or even completed) by a
        // cascade that ran between its suspension and this decision.
        let Some(machine) = self.pools[at_pool.as_usize()].suspended_machine(job) else {
            return;
        };
        if let Some(cap) = self.config.max_restarts {
            if rec.restarts_from_suspend() + rec.restarts_from_wait() >= cap {
                return;
            }
        }
        let spec = self.scratch.take_spec(self.jobs[job.as_usize()].spec());
        let mut candidates = self.scratch.take_pool_list();
        self.eligible_candidates_into(&spec, now, &mut candidates);
        self.refresh_view(now);
        let decision = self.policy.on_suspended(
            &spec,
            at_pool,
            &candidates,
            &self.view_snap,
            &mut self.policy_rng,
        );
        let candidate_count = candidates.len() as u16;
        self.scratch.put_pool_list(candidates);
        // Decision audit: the exact ranking inputs the policy saw, emitted
        // before the transition its verdict produces. Skipped for `NoRes`,
        // whose suspensions are not decisions (and whose fast-class
        // sharded path never consults the policy — the skip keeps span
        // trees byte-identical across backends).
        if !self.observers.is_empty() && !self.policy.is_no_res() {
            self.emit_policy_audit(
                job,
                at_pool,
                AuditTrigger::Suspend,
                decision_verdict(decision),
                decision_target(decision),
                candidate_count,
                now,
            );
        }
        match decision {
            Decision::Stay => {}
            Decision::Restart(target) => {
                // Pull the job out of its pool (frees its resident memory,
                // which may start queued jobs there)...
                let mut actions = self.scratch.take_actions();
                let was_suspended =
                    self.pools[at_pool.as_usize()].remove_suspended_into(now, job, &mut actions);
                assert!(was_suspended, "checked suspended above");
                self.touch_view();
                let overhead = self.move_overhead(job, target);
                let discarded = self.jobs[job.as_usize()].attempt_progress();
                self.jobs[job.as_usize()]
                    .abort_for_restart(now, overhead)
                    .expect("suspended jobs can abort");
                self.counters.restarts_from_suspend += 1;
                self.emit(
                    now,
                    ObsEvent::Reschedule {
                        job,
                        kind: ReschedKind::RestartFromSuspend,
                        from_pool: at_pool,
                        machine: Some(machine),
                        from_phase: PhaseTag::Suspended,
                        to: Some(target),
                        discarded,
                    },
                );
                self.apply_batch(at_pool, &actions, now, sched, suspended);
                self.scratch.put_actions(actions);
                // ...and restart it from scratch at the chosen pool.
                self.restart_at(job, target, now, sched, suspended);
            }
            Decision::Migrate(target) => {
                let mut actions = self.scratch.take_actions();
                let was_suspended =
                    self.pools[at_pool.as_usize()].remove_suspended_into(now, job, &mut actions);
                assert!(was_suspended, "checked suspended above");
                self.touch_view();
                let remaining = self.jobs[job.as_usize()]
                    .migrate_out(now, self.config.migration.delay)
                    .expect("suspended jobs can migrate");
                // The migrated copy runs `slowdown` slower (§2.3's 10-20%
                // virtualization overhead), minimum one minute.
                let slowed = (remaining.as_minutes()
                    * u64::from(self.config.migration.slowdown_milli))
                .div_ceil(1000)
                .max(1);
                self.migrating
                    .insert(job, SimDuration::from_minutes(slowed));
                self.counters.migrations += 1;
                self.emit(
                    now,
                    ObsEvent::Reschedule {
                        job,
                        kind: ReschedKind::Migrate,
                        from_pool: at_pool,
                        machine: Some(machine),
                        from_phase: PhaseTag::Suspended,
                        to: Some(target),
                        discarded: SimDuration::ZERO,
                    },
                );
                self.apply_batch(at_pool, &actions, now, sched, suspended);
                self.scratch.put_actions(actions);
                sched.schedule_at(
                    now + self.config.migration.delay,
                    Ev::MigrateArrive(job, target),
                );
            }
            Decision::Duplicate(target) => {
                // Only one live duplicate per original, and shadows never
                // spawn their own duplicates.
                if !self.dup_of.contains_key(&job) && !self.shadows.contains(&job) {
                    let clone_id = JobId(self.jobs.len() as u64);
                    let mut clone_spec = spec.clone();
                    clone_spec.id = clone_id;
                    self.jobs.push(JobRecord::new(clone_spec));
                    self.wait_checks.push(0);
                    self.fault_retries.push(0);
                    if !self.vpm_assignment.is_empty() {
                        let home = self.vpm_assignment[job.as_usize()];
                        self.vpm_assignment.push(home);
                    }
                    self.shadows.insert(clone_id);
                    self.dup_of.insert(job, clone_id);
                    self.dup_of.insert(clone_id, job);
                    self.counters.duplicates_launched += 1;
                    self.jobs[clone_id.as_usize()]
                        .submit(now)
                        .expect("fresh clone");
                    self.emit(
                        now,
                        ObsEvent::DuplicateLaunched {
                            original: job,
                            clone: clone_id,
                            target,
                        },
                    );
                    self.restart_at(clone_id, target, now, sched, suspended);
                }
            }
        }
        self.scratch.put_spec(spec);
    }

    /// Submits a restarted job directly to `target`, collecting any
    /// preemptions it causes onto the worklist.
    fn restart_at(
        &mut self,
        job: JobId,
        target: PoolId,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
        suspended: &mut VecDeque<(JobId, PoolId)>,
    ) {
        let spec = self.scratch.take_spec(self.jobs[job.as_usize()].spec());
        let mut actions = self.scratch.take_actions();
        match self.pools[target.as_usize()].submit_into(now, &spec, &mut actions) {
            SubmitKind::Dispatched => {
                self.touch_view();
                self.apply_batch(target, &actions, now, sched, suspended);
            }
            SubmitKind::Queued => {
                self.touch_view();
                self.jobs[job.as_usize()]
                    .enqueue(now, target)
                    .expect("job at VPM after abort");
                self.emit(now, ObsEvent::Enqueue { job, pool: target });
                self.arm_wait_timer(job, now, sched);
            }
            SubmitKind::Ineligible => {
                // Policies only pick eligible candidates, but defend anyway:
                // route through the VPM.
                self.route_via_vpm(job, now, sched);
            }
        }
        self.scratch.put_actions(actions);
        self.scratch.put_spec(spec);
    }

    fn handle_complete(&mut self, job: JobId, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        let rec = &mut self.jobs[job.as_usize()];
        let netbatch_cluster::job::JobPhase::Running { pool, machine } = rec.phase() else {
            unreachable!("completion events are cancelled on suspension/restart");
        };
        rec.completion_event = None;
        rec.complete(now).expect("phase checked running");
        if !self.shadows.contains(&job) {
            self.counters.completed += 1;
        }
        self.emit(now, ObsEvent::Complete { job, pool, machine });
        let mut actions = self.scratch.take_actions();
        let was_running = self.pools[pool.as_usize()].release_into(now, job, &mut actions);
        assert!(was_running, "running job releases");
        self.touch_view();
        self.apply_actions(pool, &actions, now, sched);
        self.scratch.put_actions(actions);
        self.resolve_duplicate_race(job, now, sched);
    }

    /// If `finisher` is half of a duplicate pair, cancel the other copy
    /// and settle the accounting: the loser's execution was redundant and
    /// is charged to the original as rescheduling waste.
    fn resolve_duplicate_race(
        &mut self,
        finisher: JobId,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let Some(loser) = self.dup_of.remove(&finisher) else {
            return;
        };
        self.dup_of.remove(&loser);
        let clone_won = self.shadows.contains(&finisher);
        // Cancel the loser's pending events and evict it from its pool.
        let rec = &mut self.jobs[loser.as_usize()];
        if let Some(ev) = rec.completion_event.take() {
            sched.cancel(ev);
        }
        if let Some(timer) = rec.wait_timer_event.take() {
            sched.cancel(timer);
        }
        use netbatch_cluster::job::JobPhase;
        // Capture where the loser was before eviction, for the proxy-finish
        // event emitted once the record is settled.
        let loser_state = match rec.phase() {
            JobPhase::Running { pool, machine } => {
                Some((PhaseTag::Running, Some(pool), Some(machine)))
            }
            JobPhase::Suspended { pool, machine } => {
                Some((PhaseTag::Suspended, Some(pool), Some(machine)))
            }
            JobPhase::Waiting { pool } => Some((PhaseTag::Waiting, Some(pool), None)),
            JobPhase::AtVpm => Some((PhaseTag::AtVpm, None, None)),
            JobPhase::Created | JobPhase::Completed => None,
        };
        match rec.phase() {
            JobPhase::Running { pool, .. } => {
                let actions = self.pools[pool.as_usize()]
                    .release(now, loser)
                    .expect("loser was running");
                self.touch_view();
                self.apply_actions(pool, &actions, now, sched);
            }
            JobPhase::Suspended { pool, .. } => {
                let actions = self.pools[pool.as_usize()]
                    .remove_suspended(now, loser)
                    .expect("loser was suspended");
                self.touch_view();
                self.apply_actions(pool, &actions, now, sched);
            }
            JobPhase::Waiting { pool } => {
                self.pools[pool.as_usize()]
                    .remove_waiting(loser)
                    .expect("loser was waiting");
            }
            JobPhase::AtVpm | JobPhase::Created | JobPhase::Completed => {}
        }
        // Settle: the ORIGINAL record carries the metrics.
        let mut proxied = false;
        if clone_won {
            // The loser is the original; stamp it completed (this also
            // closes its open run/suspend/wait segment).
            self.counters.duplicates_won += 1;
            let original = loser;
            let rec = &mut self.jobs[original.as_usize()];
            if !rec.is_completed() {
                rec.finish_by_proxy(now).expect("original is active");
                self.counters.completed += 1;
                proxied = true;
            }
            // Everything the original executed produced nothing — the
            // clone's result was used.
            let wasted = rec.run_time();
            rec.add_external_waste(wasted);
        } else {
            // The loser is the clone; close its running segment if any,
            // then charge its redundant execution to the original.
            let clone = loser;
            let rec = &mut self.jobs[clone.as_usize()];
            if !rec.is_completed() {
                rec.finish_by_proxy(now).expect("clone is active");
                proxied = true;
            }
            let wasted = rec.run_time();
            self.jobs[finisher.as_usize()].add_external_waste(wasted);
        }
        if proxied {
            if let Some((from_phase, pool, machine)) = loser_state {
                self.emit(
                    now,
                    ObsEvent::ProxyFinish {
                        job: loser,
                        from_phase,
                        pool,
                        machine,
                    },
                );
            }
        }
    }

    fn handle_wait_check(&mut self, job: JobId, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        let rec = &self.jobs[job.as_usize()];
        let netbatch_cluster::job::JobPhase::Waiting { pool } = rec.phase() else {
            return; // Started or moved in the meantime; timer is stale.
        };
        let Some(threshold) = self.policy.wait_threshold() else {
            return;
        };
        let waited = now.since(rec.phase_since());
        if waited < threshold {
            // Re-arm for the remainder (can happen after requeueing races).
            if self.wait_checks[job.as_usize()] < Self::MAX_WAIT_CHECKS {
                self.wait_checks[job.as_usize()] += 1;
                let id = sched.schedule_at(rec.phase_since() + threshold, Ev::WaitCheck(job));
                self.jobs[job.as_usize()].wait_timer_event = Some(id);
            }
            return;
        }
        if let Some(cap) = self.config.max_restarts {
            if rec.restarts_from_suspend() + rec.restarts_from_wait() >= cap {
                return;
            }
        }
        let spec = self.scratch.take_spec(self.jobs[job.as_usize()].spec());
        self.emit(now, ObsEvent::WaitTimeout { job, pool });
        let mut candidates = self.scratch.take_pool_list();
        self.eligible_candidates_into(&spec, now, &mut candidates);
        self.refresh_view(now);
        let decision = self.policy.on_waiting(
            &spec,
            pool,
            &candidates,
            &self.view_snap,
            &mut self.policy_rng,
        );
        let candidate_count = candidates.len() as u16;
        self.scratch.put_pool_list(candidates);
        if !self.observers.is_empty() {
            let (verdict, target) = match decision {
                Some(t) if t != pool => (AuditVerdict::Restart, Some(t)),
                _ => (AuditVerdict::Stay, None),
            };
            self.emit_policy_audit(
                job,
                pool,
                AuditTrigger::WaitTimeout,
                verdict,
                target,
                candidate_count,
                now,
            );
        }
        match decision {
            Some(target) if target != pool => {
                self.pools[pool.as_usize()]
                    .remove_waiting(job)
                    .expect("phase says waiting");
                let overhead = self.move_overhead(job, target);
                self.jobs[job.as_usize()]
                    .abort_for_restart(now, overhead)
                    .expect("waiting jobs can abort");
                self.counters.restarts_from_wait += 1;
                self.emit(
                    now,
                    ObsEvent::Reschedule {
                        job,
                        kind: ReschedKind::RestartFromWait,
                        from_pool: pool,
                        machine: None,
                        from_phase: PhaseTag::Waiting,
                        to: Some(target),
                        discarded: SimDuration::ZERO,
                    },
                );
                let mut suspended = self.scratch.take_worklist();
                self.restart_at(job, target, now, sched, &mut suspended);
                while let Some((j, p)) = suspended.pop_front() {
                    self.decide_suspended(j, p, now, sched, &mut suspended);
                }
                self.scratch.put_worklist(suspended);
            }
            _ => {
                // Stay put; check again one threshold later (bounded).
                if self.wait_checks[job.as_usize()] < Self::MAX_WAIT_CHECKS {
                    self.wait_checks[job.as_usize()] += 1;
                    let id = sched.schedule_at(now + threshold, Ev::WaitCheck(job));
                    self.jobs[job.as_usize()].wait_timer_event = Some(id);
                }
            }
        }
        self.scratch.put_spec(spec);
    }

    fn handle_migrate_arrive(
        &mut self,
        job: JobId,
        target: PoolId,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let Some(remaining) = self.migrating.remove(&job) else {
            return; // job was finished by other means in transit
        };
        if self.jobs[job.as_usize()].is_completed() {
            return;
        }
        // Submit a spec carrying only the remaining (slowed) work.
        let mut spec = self.scratch.take_spec(self.jobs[job.as_usize()].spec());
        spec.runtime = remaining;
        let mut suspended = self.scratch.take_worklist();
        let mut actions = self.scratch.take_actions();
        match self.pools[target.as_usize()].submit_into(now, &spec, &mut actions) {
            SubmitKind::Dispatched => {
                self.touch_view();
                self.apply_batch(target, &actions, now, sched, &mut suspended);
            }
            SubmitKind::Queued => {
                self.touch_view();
                self.jobs[job.as_usize()]
                    .enqueue(now, target)
                    .expect("migrating job is at VPM");
                self.emit(now, ObsEvent::Enqueue { job, pool: target });
                self.arm_wait_timer(job, now, sched);
            }
            SubmitKind::Ineligible => {
                // Defensive: route anywhere eligible, still with the
                // remaining work only. Fall back to a full VPM route.
                self.route_via_vpm(job, now, sched);
            }
        }
        self.scratch.put_actions(actions);
        while let Some((j, p)) = suspended.pop_front() {
            self.decide_suspended(j, p, now, sched, &mut suspended);
        }
        self.scratch.put_worklist(suspended);
        self.scratch.put_spec(spec);
    }

    fn handle_machine_down(
        &mut self,
        pool: PoolId,
        machine: MachineId,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let mut running = std::mem::take(&mut self.scratch.evict_running);
        let mut susp = std::mem::take(&mut self.scratch.evict_suspended);
        running.clear();
        susp.clear();
        if !self.pools[pool.as_usize()].fail_machine_into(machine, &mut running, &mut susp) {
            // Already down or unknown machine.
            self.scratch.evict_running = running;
            self.scratch.evict_suspended = susp;
            return;
        }
        self.touch_view();
        self.emit(now, ObsEvent::MachineDown { pool, machine });
        let mut blacklisted_until = None;
        if self.config.resilience.enabled {
            // A pool that just lost a machine is unhealthy: exclude it
            // from rescheduling targets for the cooldown window.
            let until = now + self.config.resilience.blacklist_cooldown;
            if self.blacklist[pool.as_usize()] < until {
                self.blacklist[pool.as_usize()] = until;
                self.emit(now, ObsEvent::PoolBlacklisted { pool, until });
                blacklisted_until = Some(until);
            }
        }
        if !self.observers.is_empty() {
            // Fault audit: name the outage behind this failure so span
            // causes and `trace --why` can cite it, before the per-job
            // evictions it triggers.
            let outage = self
                .fault_plan
                .outage_id(pool, machine, now)
                .unwrap_or(u32::MAX);
            self.emit(
                now,
                ObsEvent::FaultAudit {
                    pool,
                    machine,
                    outage,
                    blacklisted_until,
                },
            );
        }
        let mut evicted = std::mem::take(&mut self.scratch.evicted);
        evicted.clear();
        evicted.extend(running.iter().map(|&j| (j, PhaseTag::Running)));
        evicted.extend(susp.iter().map(|&j| (j, PhaseTag::Suspended)));
        self.scratch.evict_running = running;
        self.scratch.evict_suspended = susp;
        for &(job, from_phase) in &evicted {
            self.counters.failure_evictions += 1;
            let rec = &mut self.jobs[job.as_usize()];
            if let Some(ev) = rec.completion_event.take() {
                sched.cancel(ev);
            }
            // A running job's progress counter lags its current stint;
            // add the elapsed time since it (re)started on the machine.
            let discarded = match from_phase {
                PhaseTag::Running => rec.attempt_progress() + now.since(rec.phase_since()),
                _ => rec.attempt_progress(),
            };
            rec.abort_for_restart(now, self.config.restart_overhead)
                .expect("evicted jobs were running or suspended");
            self.emit(
                now,
                ObsEvent::Reschedule {
                    job,
                    kind: ReschedKind::FailureEvict,
                    from_pool: pool,
                    machine: Some(machine),
                    from_phase,
                    to: None,
                    discarded,
                },
            );
            if self.config.resilience.enabled {
                self.schedule_retry(job, now, sched);
            } else {
                self.route_via_vpm(job, now, sched);
            }
        }
        self.scratch.evicted = evicted;
    }

    /// Books one failure-driven re-dispatch for `job`: waits out the
    /// exponential backoff before trying again, or gives the job up once
    /// its retry budget is spent.
    fn schedule_retry(&mut self, job: JobId, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        let attempt = self.fault_retries[job.as_usize()] + 1;
        if attempt > self.config.resilience.retry_budget {
            self.give_up(job, now);
            return;
        }
        self.fault_retries[job.as_usize()] = attempt;
        let resume_at = now + self.config.resilience.backoff_delay(attempt);
        self.counters.retries_scheduled += 1;
        self.emit(
            now,
            ObsEvent::RetryScheduled {
                job,
                attempt,
                resume_at,
            },
        );
        sched.schedule_at(resume_at, Ev::RetryDispatch(job));
    }

    /// A backoff delay expired: re-dispatch the job through the VPM,
    /// avoiding pools with every machine down. If every capable pool is
    /// fully down the job parks at the VPM for another backoff interval
    /// (graceful degradation) instead of queueing on a dead pool.
    fn handle_retry_dispatch(&mut self, job: JobId, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        let rec = &self.jobs[job.as_usize()];
        if rec.is_completed()
            || !matches!(rec.phase(), netbatch_cluster::job::JobPhase::AtVpm)
            || self.gave_up.contains(&job)
        {
            return; // finished (possibly by a duplicate) or moved meanwhile
        }
        let spec = self.scratch.take_spec(self.jobs[job.as_usize()].spec());
        let mut capable = self.scratch.take_pool_list();
        self.initial_candidates_into(&spec, &mut capable);
        capable.retain(|p| self.pools[p.as_usize()].is_eligible(spec.resources));
        let mut up = self.scratch.take_pool_list();
        up.extend(
            capable
                .iter()
                .copied()
                .filter(|p| !self.pools[p.as_usize()].is_fully_down()),
        );
        if up.is_empty() {
            if capable.is_empty() {
                self.give_up(job, now);
            } else {
                self.counters.vpm_requeues += 1;
                self.schedule_retry(job, now, sched);
            }
        } else {
            self.refresh_view(now);
            let mut order = self.scratch.take_pool_list();
            self.initial
                .order_into(&spec, &up, &self.view_snap, &mut order);
            let mut routed = false;
            for &pool in &order {
                if self.try_pool(pool, &spec, now, sched) {
                    routed = true;
                    break;
                }
            }
            if !routed {
                self.give_up(job, now);
            }
            self.scratch.put_pool_list(order);
        }
        self.scratch.put_pool_list(up);
        self.scratch.put_pool_list(capable);
        self.scratch.put_spec(spec);
    }

    /// Terminal bookkeeping for a job no pool will run: count it
    /// unrunnable exactly once, settling duplicate pairs so a job is never
    /// both counted unrunnable and finished by proxy.
    fn give_up(&mut self, job: JobId, now: SimTime) {
        if !self.config.resilience.enabled {
            // Unhardened behaviour (unchanged from the seed): the caller
            // already established no pool can ever run the job.
            self.counters.unrunnable += 1;
            self.emit(now, ObsEvent::Unrunnable { job });
            return;
        }
        if self.gave_up.contains(&job) {
            return;
        }
        if let Some(partner) = self.dup_of.get(&job).copied() {
            if !self.gave_up.contains(&partner) {
                // The other copy is still in flight; if it finishes it
                // proxy-completes the pair, so don't write the pair off.
                self.gave_up.insert(job);
                return;
            }
            // Both copies gave up: sever the pair and count the original.
            self.dup_of.remove(&job);
            self.dup_of.remove(&partner);
            self.gave_up.insert(job);
            let original = if self.shadows.contains(&job) {
                partner
            } else {
                job
            };
            self.counters.unrunnable += 1;
            self.emit(now, ObsEvent::Unrunnable { job: original });
            return;
        }
        self.gave_up.insert(job);
        if !self.shadows.contains(&job) {
            self.counters.unrunnable += 1;
            self.emit(now, ObsEvent::Unrunnable { job });
        }
    }

    fn handle_machine_up(
        &mut self,
        pool: PoolId,
        machine: MachineId,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let mut actions = self.scratch.take_actions();
        if self.pools[pool.as_usize()].restore_machine_into(now, machine, &mut actions) {
            self.touch_view();
            self.emit(now, ObsEvent::MachineUp { pool, machine });
            self.apply_actions(pool, &actions, now, sched);
        }
        self.scratch.put_actions(actions);
    }

    /// A lifecycle window opens: the machine stops accepting new work
    /// (running and suspended residents stay put and may still resume).
    /// When the window carries a kill deadline and the resilience policy
    /// opts into proactive evacuation, jobs that cannot finish before the
    /// deadline — plus every suspended resident, which by definition makes
    /// no progress while parked — are moved out now, racing the drain
    /// instead of dying at the kill.
    fn handle_drain_start(
        &mut self,
        pool: PoolId,
        machine: MachineId,
        deadline: Option<SimTime>,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        if !self.pools[pool.as_usize()].drain_machine(machine) {
            return; // already draining or unknown machine
        }
        self.touch_view();
        self.emit(
            now,
            ObsEvent::MachineDraining {
                pool,
                machine,
                deadline,
            },
        );
        let Some(deadline) = deadline else {
            return; // cordon: no kill coming, nothing to evacuate
        };
        if !self.config.resilience.evacuate_draining {
            return;
        }
        // Plan the evacuation from a stable copy of the resident lists
        // (evacuating one job can resume another on this very machine).
        let mut running = std::mem::take(&mut self.scratch.evict_running);
        let mut susp = std::mem::take(&mut self.scratch.evict_suspended);
        running.clear();
        susp.clear();
        self.pools[pool.as_usize()].residents_into(machine, &mut running, &mut susp);
        let mut evacuated = std::mem::take(&mut self.scratch.evicted);
        evacuated.clear();
        evacuated.extend(running.iter().copied().filter_map(|j| {
            let rec = &self.jobs[j.as_usize()];
            // A running job's completion instant is its phase start plus
            // the wall remaining at that boundary; jobs that beat the
            // deadline are left to finish in place.
            (rec.phase_since() + rec.remaining_wall() > deadline).then_some((j, PhaseTag::Running))
        }));
        evacuated.extend(susp.iter().map(|&j| (j, PhaseTag::Suspended)));
        self.scratch.evict_running = running;
        self.scratch.evict_suspended = susp;
        for &(job, _) in &evacuated {
            // Re-read the job's phase: an earlier evacuee's freed cores
            // may have resumed this one meanwhile (resuming on a draining
            // machine is legal — only *new* placements are barred).
            let from_phase = if self.pools[pool.as_usize()].running_machine(job) == Some(machine) {
                PhaseTag::Running
            } else if self.pools[pool.as_usize()].suspended_machine(job) == Some(machine) {
                PhaseTag::Suspended
            } else {
                continue; // moved or completed by a cascade in between
            };
            self.counters.evacuations += 1;
            if !self.observers.is_empty() {
                // Evacuation audit: which lifecycle window forced the
                // move and what the job's remaining work was racing.
                let window = self
                    .lifecycle_plan
                    .window_id(pool, machine, now)
                    .unwrap_or(u32::MAX);
                let remaining = match from_phase {
                    PhaseTag::Running => self.jobs[job.as_usize()].remaining_wall(),
                    _ => SimDuration::ZERO,
                };
                self.emit(
                    now,
                    ObsEvent::EvacAudit {
                        job,
                        pool,
                        machine,
                        window,
                        remaining,
                        deadline,
                    },
                );
            }
            let rec = &mut self.jobs[job.as_usize()];
            if let Some(ev) = rec.completion_event.take() {
                sched.cancel(ev);
            }
            let discarded = match from_phase {
                PhaseTag::Running => rec.attempt_progress() + now.since(rec.phase_since()),
                _ => rec.attempt_progress(),
            };
            let mut actions = self.scratch.take_actions();
            let removed = match from_phase {
                PhaseTag::Running => {
                    self.pools[pool.as_usize()].release_into(now, job, &mut actions)
                }
                _ => self.pools[pool.as_usize()].remove_suspended_into(now, job, &mut actions),
            };
            assert!(removed, "phase re-checked above");
            self.touch_view();
            self.jobs[job.as_usize()]
                .abort_for_restart(now, self.config.restart_overhead)
                .expect("evacuees were running or suspended");
            self.emit(
                now,
                ObsEvent::Reschedule {
                    job,
                    kind: ReschedKind::Evacuation,
                    from_pool: pool,
                    machine: Some(machine),
                    from_phase,
                    to: None,
                    discarded,
                },
            );
            self.apply_actions(pool, &actions, now, sched);
            self.scratch.put_actions(actions);
            if self.config.resilience.enabled {
                self.schedule_retry(job, now, sched);
            } else {
                self.route_via_vpm(job, now, sched);
            }
        }
        self.scratch.evicted = evacuated;
    }

    /// A lifecycle window closes: the machine re-opens for placement and
    /// its freed capacity is offered to the pool's queue.
    fn handle_drain_end(
        &mut self,
        pool: PoolId,
        machine: MachineId,
        now: SimTime,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let mut actions = self.scratch.take_actions();
        if self.pools[pool.as_usize()].undrain_machine_into(now, machine, &mut actions) {
            self.touch_view();
            self.emit(now, ObsEvent::MachineUndrained { pool, machine });
            self.apply_actions(pool, &actions, now, sched);
        }
        self.scratch.put_actions(actions);
    }

    fn handle_sample(&mut self, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        self.record_sample(now);
        let done = self.counters.completed + self.counters.unrunnable >= self.total_jobs;
        if !done {
            let next = self
                .sampler
                .as_mut()
                .expect("sampling event implies sampler")
                .next_tick();
            sched.schedule_at(next, Ev::Sample);
        }
    }

    /// The sampling body shared by the serial handler and the streaming
    /// coordinator: emits the observer event and records the Figure-4
    /// series. Scheduling the next tick is the caller's concern.
    pub(crate) fn record_sample(&mut self, now: SimTime) {
        self.emit(now, ObsEvent::Sample);
        let suspended: usize = self.pools.iter().map(PhysicalPool::suspended_count).sum();
        let waiting: usize = self.pools.iter().map(PhysicalPool::queue_len).sum();
        let busy: u64 = self.pools.iter().map(|p| u64::from(p.busy_cores())).sum();
        let total: u64 = self.pools.iter().map(|p| u64::from(p.total_cores())).sum();
        let util = if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64
        };
        self.suspended_series.push(now, suspended as f64);
        self.utilization_series.push(now, util * 100.0);
        self.waiting_series.push(now, waiting as f64);
    }

    /// The upcoming sample tick, if sampling is enabled (streaming
    /// coordinator; does not consume the tick).
    pub(crate) fn peek_sample_tick(&self) -> Option<SimTime> {
        self.sampler.as_ref().map(PeriodicSampler::peek_tick)
    }

    /// Consumes the pending sample tick (streaming coordinator).
    pub(crate) fn consume_sample_tick(&mut self) {
        if let Some(s) = self.sampler.as_mut() {
            s.next_tick();
        }
    }

    /// Read access to the job records (used by tests).
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Run counters so far.
    pub fn counters(&self) -> RunCounters {
        self.counters
    }
}

/// The audit label for a policy decision.
fn decision_verdict(decision: Decision) -> AuditVerdict {
    match decision {
        Decision::Stay => AuditVerdict::Stay,
        Decision::Restart(_) => AuditVerdict::Restart,
        Decision::Migrate(_) => AuditVerdict::Migrate,
        Decision::Duplicate(_) => AuditVerdict::Duplicate,
    }
}

/// The target pool a policy decision names, if any.
fn decision_target(decision: Decision) -> Option<PoolId> {
    match decision {
        Decision::Stay => None,
        Decision::Restart(t) | Decision::Migrate(t) | Decision::Duplicate(t) => Some(t),
    }
}

impl Handler for Simulator {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) -> Control {
        let profile_start = self.profile.as_ref().map(|_| std::time::Instant::now());
        // Kernel marker: all state mutated by the previous event has
        // settled, which is where deferred invariant comparisons run.
        self.emit(
            now,
            ObsEvent::Kernel {
                kind: event.label(),
            },
        );
        match event {
            Ev::Submit(job) => {
                self.jobs[job.as_usize()]
                    .submit(now)
                    .expect("submit events fire once per job");
                self.emit(now, ObsEvent::Submit { job });
                self.route_via_vpm(job, now, sched);
            }
            Ev::Complete(job) => self.handle_complete(job, now, sched),
            Ev::WaitCheck(job) => {
                self.jobs[job.as_usize()].wait_timer_event = None;
                self.handle_wait_check(job, now, sched);
            }
            Ev::Sample => self.handle_sample(now, sched),
            Ev::MachineDown(pool, machine) => self.handle_machine_down(pool, machine, now, sched),
            Ev::MachineUp(pool, machine) => self.handle_machine_up(pool, machine, now, sched),
            Ev::MigrateArrive(job, pool) => self.handle_migrate_arrive(job, pool, now, sched),
            Ev::RetryDispatch(job) => self.handle_retry_dispatch(job, now, sched),
            Ev::DrainStart(pool, machine, deadline) => {
                self.handle_drain_start(pool, machine, deadline, now, sched);
            }
            Ev::DrainEnd(pool, machine) => self.handle_drain_end(pool, machine, now, sched),
        }
        if let Some(start) = profile_start {
            let nanos = start.elapsed().as_nanos() as u64;
            if let Some(profile) = self.profile.as_mut() {
                profile.record(event.kind_index(), nanos);
            }
        }
        Control::Continue
    }
}

/// Everything a finished run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// Final per-job records (all completed).
    pub jobs: Vec<JobRecord>,
    /// Aggregate counters.
    pub counters: RunCounters,
    /// Cumulative per-pool statistics (starts, suspensions, peaks).
    pub pool_stats: Vec<(PoolId, netbatch_cluster::pool::PoolStats)>,
    /// Virtual time when the last job completed.
    pub end_time: SimTime,
    /// Suspended-job count per sample (empty unless sampling enabled).
    pub suspended_series: TimeSeries,
    /// Utilization percentage per sample.
    pub utilization_series: TimeSeries,
    /// Waiting-job count per sample.
    pub waiting_series: TimeSeries,
    /// Observers that rode the run, in attach order (the configured
    /// invariant checker first, when enabled). Empty by default.
    pub observers: Vec<Box<dyn SimObserver>>,
    /// Kernel self-profile (`config.profile`); its `Debug` rendering
    /// redacts the nondeterministic wall-clock readings.
    pub profile: Option<KernelProfile>,
}

impl SimOutput {
    /// The first attached observer of concrete type `T`, if any.
    ///
    /// ```
    /// use netbatch_core::observer::TraceRecorder;
    /// # use netbatch_core::simulator::{SimConfig, Simulator};
    /// # use netbatch_workload::scenarios::ScenarioParams;
    /// # let params = ScenarioParams::normal_week(0.002);
    /// # let mut sim = Simulator::new(
    /// #     &params.build_site(),
    /// #     params.generate_trace().to_specs(),
    /// #     SimConfig::default(),
    /// # );
    /// sim.attach_observer(Box::new(TraceRecorder::in_memory()));
    /// let out = sim.run_to_completion();
    /// let trace = out.observer::<TraceRecorder>().unwrap();
    /// assert!(trace.events() > 0);
    /// ```
    pub fn observer<T: SimObserver + 'static>(&self) -> Option<&T> {
        self.observers
            .iter()
            .find_map(|o| o.as_any().downcast_ref::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbatch_cluster::job::PoolAffinity;
    use netbatch_cluster::pool::PoolConfig;
    use netbatch_cluster::priority::Priority;

    fn tiny_site(pools: u16, machines: u32, cores: u32) -> SiteSpec {
        SiteSpec {
            pools: (0..pools)
                .map(|p| PoolConfig::uniform(PoolId(p), machines, cores, 16_384))
                .collect(),
        }
    }

    fn spec(id: u64, submit: u64, runtime: u64) -> JobSpec {
        JobSpec::new(
            JobId(id),
            SimTime::from_minutes(submit),
            SimDuration::from_minutes(runtime),
        )
    }

    #[test]
    fn single_job_runs_to_completion() {
        let site = tiny_site(1, 1, 1);
        let sim = Simulator::new(&site, vec![spec(0, 5, 100)], SimConfig::default());
        let out = sim.run_to_completion();
        assert_eq!(out.counters.completed, 1);
        assert_eq!(out.end_time, SimTime::from_minutes(105));
        let job = &out.jobs[0];
        assert!(job.is_completed());
        assert_eq!(job.completion_time().unwrap().as_minutes(), 100);
        assert_eq!(job.wait_time(), SimDuration::ZERO);
    }

    #[test]
    fn queued_job_waits_for_capacity() {
        let site = tiny_site(1, 1, 1);
        let jobs = vec![spec(0, 0, 60), spec(1, 10, 30)];
        let out = Simulator::new(&site, jobs, SimConfig::default()).run_to_completion();
        assert_eq!(out.counters.completed, 2);
        // Job 1 waits 0..60 submit=10 → waits 50, runs 60..90.
        let j1 = &out.jobs[1];
        assert_eq!(j1.wait_time().as_minutes(), 50);
        assert_eq!(j1.completion_time().unwrap().as_minutes(), 80);
    }

    #[test]
    fn preemption_suspends_and_resumes_with_nores() {
        let site = tiny_site(1, 1, 1);
        let jobs = vec![
            spec(0, 0, 100),
            spec(1, 40, 20).with_priority(Priority::HIGH),
        ];
        let out = Simulator::new(&site, jobs, SimConfig::default()).run_to_completion();
        let low = &out.jobs[0];
        assert!(low.was_suspended());
        assert_eq!(low.suspend_time().as_minutes(), 20);
        // Low: runs 0..40, suspended 40..60, runs 60..120.
        assert_eq!(low.completion_time().unwrap().as_minutes(), 120);
        assert_eq!(out.counters.suspensions, 1);
        assert_eq!(out.counters.restarts_from_suspend, 0);
        // High job was never delayed.
        assert_eq!(out.jobs[1].completion_time().unwrap().as_minutes(), 20);
    }

    #[test]
    fn res_sus_util_restarts_in_empty_pool() {
        // Pool 0 busy with a high job; pool 1 idle. The suspended low job
        // should restart in pool 1 and finish sooner than staying put.
        let site = tiny_site(2, 1, 1);
        let jobs = [
            spec(0, 0, 100),
            spec(1, 40, 500).with_priority(Priority::HIGH),
        ];
        // Round-robin sends job 0 to pool 0 and job 1 to ... pool 1! Make
        // job 1 affine to pool 0 to force the preemption.
        let jobs = vec![
            jobs[0].clone(),
            jobs[1]
                .clone()
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        let cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        let low = &out.jobs[0];
        assert_eq!(out.counters.restarts_from_suspend, 1);
        // Restarted from scratch in pool 1 at t=40: completes at 140.
        assert_eq!(low.completed_at().unwrap().as_minutes(), 140);
        assert_eq!(low.resched_waste().as_minutes(), 40, "40 minutes discarded");
        assert_eq!(low.suspend_time(), SimDuration::ZERO);
    }

    #[test]
    fn res_sus_util_stays_when_alternatives_are_busier() {
        // Both pools single-core; pool 1 is fully busy with a long job, so
        // the suspended job must stay in pool 0 (NoRes-equivalent outcome).
        let site = tiny_site(2, 1, 1);
        let jobs = [
            spec(0, 0, 1000), // occupies pool 1 (RR starts at pool 0... order below)
            spec(1, 1, 100),
            spec(2, 40, 20).with_priority(Priority::HIGH),
        ];
        // RR: job0→pool0, job1→pool1, job2→pool0? cursor: job2 order starts
        // at pool0 again (third call → start index 2 % 2 = 0). To pin
        // behaviour, make job2 affine to the pool job1 runs in.
        let jobs = vec![
            jobs[0]
                .clone()
                .with_affinity(PoolAffinity::Subset(vec![PoolId(1)])),
            jobs[1]
                .clone()
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
            jobs[2]
                .clone()
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        let cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        let low = &out.jobs[1];
        assert!(low.was_suspended());
        assert_eq!(
            out.counters.restarts_from_suspend, 0,
            "no better pool exists"
        );
        assert_eq!(low.suspend_time().as_minutes(), 20);
    }

    #[test]
    fn wait_rescheduling_moves_stuck_job() {
        // Pool 1's single core is occupied for 1000 minutes; pool 0 is
        // idle. The round-robin cursor routes job 1 to pool 1 (its order
        // starts at index 1 on the second job), where it queues; after the
        // 30-minute threshold ResSusWaitUtil moves it to idle pool 0.
        let site = tiny_site(2, 1, 1);
        let jobs = vec![
            spec(0, 0, 1000).with_affinity(PoolAffinity::Subset(vec![PoolId(1)])),
            spec(1, 5, 50).with_affinity(PoolAffinity::Subset(vec![PoolId(0), PoolId(1)])),
        ];
        let cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        let j = &out.jobs[1];
        assert_eq!(out.counters.restarts_from_wait, 1);
        assert_eq!(j.restarts_from_wait(), 1);
        // Queued at t=5, moved at t=35, runs 35..85.
        assert_eq!(j.wait_time().as_minutes(), 30);
        assert_eq!(j.completed_at().unwrap().as_minutes(), 85);
        assert_eq!(out.counters.completed, 2);
    }

    #[test]
    fn sampling_produces_series() {
        let site = tiny_site(1, 1, 1);
        let jobs = vec![spec(0, 0, 10)];
        let cfg = SimConfig::default().with_sampling();
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert!(!out.utilization_series.is_empty());
        // Utilization is 100% while the job runs.
        assert!(out.utilization_series.max().unwrap() > 99.0);
        assert_eq!(out.suspended_series.max().unwrap(), 0.0);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let site = tiny_site(3, 2, 2);
        let jobs: Vec<JobSpec> = (0..50)
            .map(|i| {
                let mut s = spec(i, i, 30 + (i * 7) % 200);
                if i % 5 == 0 {
                    s = s.with_priority(Priority::HIGH);
                }
                s
            })
            .collect();
        let cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitRand);
        let a = Simulator::new(&site, jobs.clone(), cfg.clone()).run_to_completion();
        let b = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.end_time, b.end_time);
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.completed_at(), jb.completed_at());
            assert_eq!(ja.wasted_completion_time(), jb.wasted_completion_time());
        }
    }

    #[test]
    fn all_jobs_complete_under_every_strategy() {
        let site = tiny_site(3, 2, 2);
        let jobs: Vec<JobSpec> = (0..80)
            .map(|i| {
                let mut s = spec(i, i * 2, 20 + (i * 13) % 150);
                if i % 4 == 0 {
                    s = s
                        .with_priority(Priority::HIGH)
                        .with_affinity(PoolAffinity::Subset(vec![PoolId(0)]));
                }
                s
            })
            .collect();
        for strategy in [
            StrategyKind::NoRes,
            StrategyKind::ResSusUtil,
            StrategyKind::ResSusRand,
            StrategyKind::ResSusWaitUtil,
            StrategyKind::ResSusWaitRand,
            StrategyKind::ResSusQueue,
        ] {
            for initial in [InitialKind::RoundRobin, InitialKind::UtilizationBased] {
                let cfg = SimConfig::new(initial, strategy);
                let out = Simulator::new(&site, jobs.clone(), cfg).run_to_completion();
                assert_eq!(
                    out.counters.completed, 80,
                    "{strategy:?}/{initial:?} must complete all jobs"
                );
                assert!(out.jobs.iter().all(JobRecord::is_completed));
            }
        }
    }

    #[test]
    fn max_restarts_caps_rescheduling() {
        let site = tiny_site(2, 1, 1);
        let jobs = vec![
            spec(0, 0, 100),
            spec(1, 10, 500)
                .with_priority(Priority::HIGH)
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        let mut cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
        cfg.max_restarts = Some(0);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert_eq!(
            out.counters.restarts_from_suspend, 0,
            "cap of zero disables restarts"
        );
        assert!(out.jobs[0].was_suspended());
    }

    #[test]
    fn restart_overhead_is_accounted() {
        let site = tiny_site(2, 1, 1);
        let jobs = vec![
            spec(0, 0, 100),
            spec(1, 40, 500)
                .with_priority(Priority::HIGH)
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        let mut cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
        cfg.restart_overhead = SimDuration::from_minutes(15);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        let low = &out.jobs[0];
        assert_eq!(low.resched_waste().as_minutes(), 40 + 15);
    }

    #[test]
    fn machine_failure_evicts_and_restarts_jobs() {
        let site = tiny_site(2, 1, 1);
        let jobs = vec![spec(0, 0, 100)];
        let cfg = SimConfig {
            failures: vec![MachineFailure {
                pool: PoolId(0),
                machine: netbatch_cluster::ids::MachineId(0),
                at: SimTime::from_minutes(40),
                down_for: None,
            }],
            ..SimConfig::default()
        };
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert_eq!(out.counters.failure_evictions, 1);
        assert_eq!(out.counters.completed, 1);
        let job = &out.jobs[0];
        // Ran 40 min on pool 0, evicted, restarted from scratch on pool 1.
        assert_eq!(job.resched_waste().as_minutes(), 40);
        assert_eq!(job.completed_at().unwrap().as_minutes(), 140);
    }

    #[test]
    fn machine_recovers_and_serves_queue() {
        // One pool, one machine. Failure at t=10 for 50 minutes; the job
        // is evicted, requeues in the same pool (only pool), and restarts
        // when the machine comes back.
        let site = tiny_site(1, 1, 1);
        let jobs = vec![spec(0, 0, 100)];
        let cfg = SimConfig {
            failures: vec![MachineFailure {
                pool: PoolId(0),
                machine: netbatch_cluster::ids::MachineId(0),
                at: SimTime::from_minutes(10),
                down_for: Some(SimDuration::from_minutes(50)),
            }],
            ..SimConfig::default()
        };
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert_eq!(out.counters.completed, 1);
        let job = &out.jobs[0];
        // Restarts at t=60 when the machine recovers; completes at 160.
        assert_eq!(job.completed_at().unwrap().as_minutes(), 160);
        assert_eq!(job.wait_time().as_minutes(), 50);
        assert_eq!(job.resched_waste().as_minutes(), 10);
    }

    #[test]
    fn permanent_failure_leaves_jobs_waiting_for_capability() {
        let site = tiny_site(1, 1, 1);
        let jobs = vec![spec(0, 0, 100), spec(1, 50, 10)];
        let cfg = SimConfig {
            failures: vec![MachineFailure {
                pool: PoolId(0),
                machine: netbatch_cluster::ids::MachineId(0),
                at: SimTime::from_minutes(10),
                down_for: None,
            }],
            ..SimConfig::default()
        };
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        // A down machine is still *capable*, so the jobs queue for it
        // rather than being dropped; with no recovery they never finish.
        assert_eq!(out.counters.completed, 0);
        assert_eq!(out.counters.unrunnable, 0);
        assert!(out
            .jobs
            .iter()
            .all(|j| matches!(j.phase(), netbatch_cluster::job::JobPhase::Waiting { .. })));
    }

    #[test]
    fn migration_keeps_progress_across_pools() {
        // Pool 0: low job preempted at t=40 by a long high job. Pool 1 is
        // idle; migration moves the low job there with its progress, at a
        // 30-minute delay and 15% slowdown on the remaining work.
        let site = tiny_site(2, 1, 1);
        let jobs = vec![
            spec(0, 0, 100),
            spec(1, 40, 500)
                .with_priority(Priority::HIGH)
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        let cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::MigrateSusUtil);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert_eq!(out.counters.migrations, 1);
        let low = &out.jobs[0];
        // Ran 40 of 100; 60 remaining -> 69 slowed; arrives at t=70,
        // completes at 139.
        assert_eq!(low.completed_at().unwrap().as_minutes(), 139);
        assert_eq!(low.migrations(), 1);
        // Waste = the 30-minute transfer delay only (progress kept).
        assert_eq!(low.resched_waste().as_minutes(), 30);
        assert_eq!(low.run_time().as_minutes(), 40 + 69);
    }

    #[test]
    fn duplication_first_finisher_wins() {
        // Original suspended at t=40 under a 500-minute high job; the
        // duplicate starts fresh in idle pool 1 and wins easily.
        let site = tiny_site(2, 1, 1);
        let jobs = vec![
            spec(0, 0, 100),
            spec(1, 40, 500)
                .with_priority(Priority::HIGH)
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        let cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::DupSusUtil);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert_eq!(out.counters.duplicates_launched, 1);
        assert_eq!(out.counters.duplicates_won, 1);
        assert_eq!(out.counters.completed, 2);
        // Shadow copies are excluded from the reported population.
        assert_eq!(out.jobs.len(), 2);
        let low = &out.jobs[0];
        assert!(low.is_completed());
        // Duplicate launched at t=40 in pool 1, runs 100 -> done at 140.
        assert_eq!(low.completed_at().unwrap().as_minutes(), 140);
        // The original's 40 minutes of discarded work plus the winning
        // copy's redundant... no: the ORIGINAL never finished its attempt,
        // so waste = the duplicate's run time charged externally? The
        // winner ran usefully; the loser (original) ran 40 minutes that
        // produced nothing. Accounting: external waste = shadow run time
        // only when the shadow LOSES; here the original's 40 lost minutes
        // stay in its own run_total. CT is what the metric cares about.
        assert!(low.run_time().as_minutes() >= 40);
    }

    #[test]
    fn duplication_original_wins_cancels_clone() {
        // The high job is short, so the original resumes quickly and
        // finishes before the duplicate (which starts from scratch).
        let site = tiny_site(2, 1, 1);
        let jobs = vec![
            spec(0, 0, 100),
            spec(1, 90, 5)
                .with_priority(Priority::HIGH)
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        let cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::DupSusUtil);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert_eq!(out.counters.duplicates_launched, 1);
        assert_eq!(out.counters.duplicates_won, 0, "original resumes and wins");
        // Original: runs 0..90, suspended 90..95, resumes, done at 105.
        let low = &out.jobs[0];
        assert_eq!(low.completed_at().unwrap().as_minutes(), 105);
        // The cancelled clone's partial execution is charged as waste.
        assert!(low.resched_waste().as_minutes() > 0);
        assert_eq!(out.counters.completed, 2);
    }

    #[test]
    fn topology_confines_routing_and_rescheduling() {
        use crate::simulator::VpmTopology;
        // 4 pools, 2 VPMs: {0,1} and {2,3}. Job 0 belongs to VPM 0.
        let site = tiny_site(4, 1, 1);
        let topo = VpmTopology::contiguous(4, 2);
        assert_eq!(topo.vpms.len(), 2);
        assert_eq!(topo.vpms[0], vec![PoolId(0), PoolId(1)]);
        // Job 0 (VPM 0) and a blocking high job pinned to pool 0: without
        // inter-site rescheduling the suspended job may only escape to
        // pool 1.
        let jobs = [
            spec(0, 0, 100).with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
            spec(1, 10, 500)
                .with_priority(Priority::HIGH)
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        // Job 1's affinity {0, 2} spans both VPMs; id 1 assigns it to the
        // second eligible VPM (VPM 1), whose only serving pool is 2 — so
        // it runs there and job 0 is never preempted.
        let jobs = vec![
            jobs[0].clone(),
            JobSpec::new(
                netbatch_cluster::ids::JobId(1),
                SimTime::from_minutes(10),
                SimDuration::from_minutes(500),
            )
            .with_priority(Priority::HIGH)
            .with_affinity(PoolAffinity::Subset(vec![PoolId(0), PoolId(2)])),
        ];
        let mut cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
        cfg.topology = Some(topo);
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert_eq!(out.counters.completed, 2);
        assert_eq!(out.counters.unrunnable, 0);
        assert_eq!(out.counters.suspensions, 0);
    }

    #[test]
    fn inter_site_rescheduling_pays_the_surcharge() {
        use crate::simulator::VpmTopology;
        // 2 pools, 2 VPMs of one pool each. Low job 0 (VPM 0, pool 0)
        // gets preempted; without inter-site rescheduling it cannot move
        // (pool 0 is its entire home); with it, it restarts at pool 1 and
        // pays the WAN surcharge.
        let site = tiny_site(2, 1, 1);
        // Ids map to VPMs round-robin: job 0 -> VPM 0, job 1 -> VPM 1,
        // job 2 -> VPM 0. The preempting high job must live in VPM 0, so
        // it gets id 2; id 1 is a small filler job for VPM 1 that is done
        // long before the preemption.
        let jobs = vec![
            spec(0, 0, 100),
            spec(1, 0, 5).with_affinity(PoolAffinity::Subset(vec![PoolId(1)])),
            spec(2, 40, 500)
                .with_priority(Priority::HIGH)
                .with_affinity(PoolAffinity::Subset(vec![PoolId(0)])),
        ];
        let confined = {
            let mut cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
            cfg.topology = Some(VpmTopology::contiguous(2, 2));
            Simulator::new(&site, jobs.clone(), cfg).run_to_completion()
        };
        assert_eq!(confined.counters.restarts_from_suspend, 0);
        assert!(confined.jobs[0].suspend_time().as_minutes() > 0);
        let wan = {
            let mut cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil);
            cfg.topology =
                Some(VpmTopology::contiguous(2, 2).with_inter_site(SimDuration::from_minutes(45)));
            Simulator::new(&site, jobs, cfg).run_to_completion()
        };
        assert_eq!(wan.counters.restarts_from_suspend, 1);
        // Waste = 40 minutes discarded + 45 minutes WAN surcharge.
        assert_eq!(wan.jobs[0].resched_waste().as_minutes(), 40 + 45);
        assert_eq!(wan.counters.completed, 3);
    }

    #[test]
    fn invariant_checker_rides_every_strategy() {
        let site = tiny_site(3, 2, 2);
        let jobs: Vec<JobSpec> = (0..80)
            .map(|i| {
                let mut s = spec(i, i * 2, 20 + (i * 13) % 150);
                if i % 4 == 0 {
                    s = s
                        .with_priority(Priority::HIGH)
                        .with_affinity(PoolAffinity::Subset(vec![PoolId(0)]));
                }
                s
            })
            .collect();
        for strategy in [
            StrategyKind::NoRes,
            StrategyKind::ResSusUtil,
            StrategyKind::ResSusRand,
            StrategyKind::ResSusWaitUtil,
            StrategyKind::ResSusWaitRand,
            StrategyKind::ResSusQueue,
            StrategyKind::ResSusWaitSmart,
            StrategyKind::MigrateSusUtil,
            StrategyKind::DupSusUtil,
        ] {
            let mut cfg = SimConfig::new(InitialKind::RoundRobin, strategy);
            cfg.check_invariants = true;
            cfg.sample_interval = Some(SimDuration::from_minutes(10));
            let out = Simulator::new(&site, jobs.clone(), cfg).run_to_completion();
            let checker = out
                .observer::<crate::observer::InvariantChecker>()
                .expect("configured checker rides out");
            assert!(checker.events_seen() > 0, "{strategy:?} emitted nothing");
        }
    }

    #[test]
    fn invariant_checker_survives_machine_failures() {
        let site = tiny_site(2, 2, 1);
        let jobs: Vec<JobSpec> = (0..30)
            .map(|i| spec(i, i * 3, 40 + (i * 11) % 90))
            .collect();
        let cfg = SimConfig {
            check_invariants: true,
            failures: vec![
                MachineFailure {
                    pool: PoolId(0),
                    machine: MachineId(0),
                    at: SimTime::from_minutes(50),
                    down_for: Some(SimDuration::from_minutes(40)),
                },
                MachineFailure {
                    pool: PoolId(1),
                    machine: MachineId(1),
                    at: SimTime::from_minutes(80),
                    down_for: None,
                },
            ],
            ..SimConfig::new(InitialKind::UtilizationBased, StrategyKind::ResSusUtil)
        };
        let out = Simulator::new(&site, jobs, cfg).run_to_completion();
        assert!(out.counters.failure_evictions > 0, "failures must evict");
        assert!(out
            .observer::<crate::observer::InvariantChecker>()
            .is_some());
    }

    #[test]
    fn trace_counts_reconcile_with_counters() {
        use crate::observer::TraceRecorder;
        let site = tiny_site(3, 2, 2);
        let jobs: Vec<JobSpec> = (0..60)
            .map(|i| {
                let mut s = spec(i, i, 25 + (i * 17) % 120);
                if i % 3 == 0 {
                    s = s.with_priority(Priority::HIGH);
                }
                s
            })
            .collect();
        let mut cfg = SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusWaitUtil);
        cfg.check_invariants = true;
        let mut sim = Simulator::new(&site, jobs, cfg);
        sim.attach_observer(Box::new(TraceRecorder::in_memory()));
        let out = sim.run_to_completion();
        let trace = out.observer::<TraceRecorder>().unwrap();
        let count = |k: &str| trace.kind_counts().get(k).copied().unwrap_or(0);
        // A shadow's Complete doesn't increment the counter, but the
        // original's proxy-finish does — the two cancel, so completions
        // reconcile against `complete` events alone under every strategy.
        assert_eq!(count("complete"), out.counters.completed);
        assert_eq!(count("suspend"), out.counters.suspensions);
        assert_eq!(
            count("restart_from_suspend"),
            out.counters.restarts_from_suspend
        );
        assert_eq!(count("restart_from_wait"), out.counters.restarts_from_wait);
        assert_eq!(count("submit"), 60);
    }

    #[test]
    fn unrunnable_jobs_are_counted_not_hung() {
        let site = tiny_site(1, 1, 1);
        let jobs = vec![spec(0, 0, 10).with_cores(64)];
        let out = Simulator::new(&site, jobs, SimConfig::default()).run_to_completion();
        assert_eq!(out.counters.unrunnable, 1);
        assert_eq!(out.counters.completed, 0);
    }
}
