//! Online observers for the simulator event loop.
//!
//! The paper's ASCA simulator exposes "per-minute states of all components
//! and jobs"; this module is the equivalent observable surface for our
//! simulator. A [`SimObserver`] receives a callback for every lifecycle
//! transition the simulator performs — submission, VPM pool choice,
//! dispatch, preemption, resumption, rescheduling (with the chosen pool
//! and the discarded progress), wait timeouts, completion, machine
//! failures and the per-minute sample tick — plus a kernel marker at the
//! start of each discrete event.
//!
//! The layer is zero-cost when unused: the simulator's emit path returns
//! immediately when no observer is attached, so table experiments pay
//! nothing for it.
//!
//! Three observers ship built in:
//!
//! * [`InvariantChecker`] — validates conservation (busy cores vs pool
//!   accounting, per-machine resident memory), lifecycle tiling (wait +
//!   suspend + run segments tile each completed job's lifetime), queue
//!   order (priority then FIFO) and resume order (suspended jobs resume
//!   before queued jobs start, per machine) *online*, panicking with a
//!   replayable event context on the first violation;
//! * [`TraceRecorder`] — streams a deterministic JSONL event log
//!   (hand-written JSON; the workspace carries no serde) for golden-trace
//!   conformance tests and cross-run differential debugging;
//! * [`StatsProbe`] — per-event-kind counters and per-kernel-event
//!   wall-clock timings, surfaced through the CLI (`--stats`) and the
//!   bench runner.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write as _;

use netbatch_cluster::ids::{JobId, MachineId, PoolId};
use netbatch_cluster::job::JobRecord;
use netbatch_cluster::pool::PhysicalPool;
use netbatch_sim_engine::observe::{LabelCounter, LabelTimer};
use netbatch_sim_engine::time::{SimDuration, SimTime};

/// Why a job left its pool through the rescheduling path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReschedKind {
    /// Restarted from scratch out of the suspended state (the paper's
    /// core mechanism).
    RestartFromSuspend,
    /// Restarted out of a wait queue (the paper's §3.3 extension).
    RestartFromWait,
    /// Migrated with its progress (checkpoint/VM migration extension).
    Migrate,
    /// Evicted by a machine failure.
    FailureEvict,
    /// Proactively moved off a draining machine before its kill deadline
    /// (the lifecycle model's evacuation path).
    Evacuation,
}

impl ReschedKind {
    /// Stable label, used as the event kind in traces and counters.
    pub fn label(self) -> &'static str {
        match self {
            ReschedKind::RestartFromSuspend => "restart_from_suspend",
            ReschedKind::RestartFromWait => "restart_from_wait",
            ReschedKind::Migrate => "migrate",
            ReschedKind::FailureEvict => "failure_evict",
            ReschedKind::Evacuation => "evacuation",
        }
    }
}

/// The lifecycle phase a job occupied when an event captured it (a
/// payload-free mirror of [`netbatch_cluster::job::JobPhase`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseTag {
    /// At the virtual pool manager (or in migration transit).
    AtVpm,
    /// Waiting in a pool queue.
    Waiting,
    /// Running on a machine.
    Running,
    /// Suspended on a machine.
    Suspended,
}

impl PhaseTag {
    /// Stable label for traces.
    pub fn label(self) -> &'static str {
        match self {
            PhaseTag::AtVpm => "at-vpm",
            PhaseTag::Waiting => "waiting",
            PhaseTag::Running => "running",
            PhaseTag::Suspended => "suspended",
        }
    }
}

/// What put a job in front of the rescheduling policy (the consultation a
/// [`ObsEvent::PolicyAudit`] records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditTrigger {
    /// The job was preempted and sits suspended on its machine.
    Suspend,
    /// The job's wait-queue threshold elapsed.
    WaitTimeout,
}

impl AuditTrigger {
    /// Stable label for traces and span causes.
    pub fn label(self) -> &'static str {
        match self {
            AuditTrigger::Suspend => "suspend",
            AuditTrigger::WaitTimeout => "wait_timeout",
        }
    }
}

/// The decision a consulted rescheduling policy returned (a payload-free
/// mirror of [`Decision`](crate::policy::Decision)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditVerdict {
    /// Leave the job where it is.
    Stay,
    /// Restart from scratch in the target pool.
    Restart,
    /// Migrate with progress to the target pool.
    Migrate,
    /// Launch a duplicate copy in the target pool.
    Duplicate,
}

impl AuditVerdict {
    /// Stable label for traces and span causes.
    pub fn label(self) -> &'static str {
        match self {
            AuditVerdict::Stay => "stay",
            AuditVerdict::Restart => "restart",
            AuditVerdict::Migrate => "migrate",
            AuditVerdict::Duplicate => "duplicate",
        }
    }
}

/// One observable simulator transition.
///
/// `Kernel` and `BatchStart` are structural markers (the former opens each
/// discrete event, the latter each pool action batch); everything else is
/// a job or machine lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// A kernel event begins; all state mutated by the previous event has
    /// settled. `kind` is the kernel event's label.
    Kernel {
        /// The kernel event kind (e.g. `"submit"`, `"complete"`).
        kind: &'static str,
    },
    /// A batch of pool actions (one `submit`/`release`/`capacity_cycle`
    /// outcome) begins to replay onto the job records.
    BatchStart {
        /// The pool the batch belongs to.
        pool: PoolId,
    },
    /// A job's submission reached the virtual pool manager.
    Submit {
        /// The submitted job.
        job: JobId,
    },
    /// The VPM selected a pool for a job (it will dispatch or queue there).
    PoolChosen {
        /// The routed job.
        job: JobId,
        /// The chosen pool.
        pool: PoolId,
    },
    /// No pool can ever run the job; the VPM gave up on it.
    Unrunnable {
        /// The unroutable job.
        job: JobId,
    },
    /// A machine started executing a job.
    Dispatch {
        /// The started job.
        job: JobId,
        /// The hosting pool.
        pool: PoolId,
        /// The hosting machine.
        machine: MachineId,
        /// Wall-clock length of this attempt (runtime scaled by machine
        /// speed).
        wall: SimDuration,
        /// True when the job came from the pool's wait queue rather than
        /// straight from the VPM.
        from_queue: bool,
    },
    /// A pool queued a job it could not start immediately.
    Enqueue {
        /// The queued job.
        job: JobId,
        /// The queueing pool.
        pool: PoolId,
    },
    /// A higher-priority job preempted (suspended) a running job.
    Suspend {
        /// The suspended job.
        job: JobId,
        /// The hosting pool.
        pool: PoolId,
        /// The machine the job is suspended on.
        machine: MachineId,
    },
    /// A suspended job resumed on its machine.
    Resume {
        /// The resumed job.
        job: JobId,
        /// The hosting pool.
        pool: PoolId,
        /// The machine it resumed on.
        machine: MachineId,
    },
    /// A rescheduling decision moved a job out of its pool.
    Reschedule {
        /// The rescheduled job.
        job: JobId,
        /// The mechanism that moved it.
        kind: ReschedKind,
        /// The pool it left.
        from_pool: PoolId,
        /// The machine it occupied, when it was resident on one.
        machine: Option<MachineId>,
        /// The phase it was captured in.
        from_phase: PhaseTag,
        /// The chosen target pool; `None` for failure evictions, which
        /// re-route through the VPM.
        to: Option<PoolId>,
        /// Execution progress discarded by the move (zero for migrations,
        /// which keep progress).
        discarded: SimDuration,
    },
    /// A waiting job's rescheduling threshold elapsed and the policy was
    /// consulted.
    WaitTimeout {
        /// The waiting job.
        job: JobId,
        /// The pool whose queue holds it.
        pool: PoolId,
    },
    /// A duplicate copy of a suspended job was launched.
    DuplicateLaunched {
        /// The suspended original.
        original: JobId,
        /// The freshly created shadow copy.
        clone: JobId,
        /// The pool the copy was sent to.
        target: PoolId,
    },
    /// A job was finished by its duplicate completing elsewhere; the loser
    /// of the race was cancelled in place.
    ProxyFinish {
        /// The cancelled copy.
        job: JobId,
        /// The phase it was cancelled in.
        from_phase: PhaseTag,
        /// The pool it occupied, if resident or queued.
        pool: Option<PoolId>,
        /// The machine it occupied, if resident.
        machine: Option<MachineId>,
    },
    /// A running job finished.
    Complete {
        /// The finished job.
        job: JobId,
        /// The hosting pool.
        pool: PoolId,
        /// The hosting machine.
        machine: MachineId,
    },
    /// An injected machine failure fired; per-job evictions follow as
    /// [`ObsEvent::Reschedule`] events with [`ReschedKind::FailureEvict`].
    MachineDown {
        /// The pool containing the machine.
        pool: PoolId,
        /// The failed machine.
        machine: MachineId,
    },
    /// A failed machine came back online.
    MachineUp {
        /// The pool containing the machine.
        pool: PoolId,
        /// The restored machine.
        machine: MachineId,
    },
    /// A lifecycle window opened: the machine stopped accepting new work
    /// (residents stay and may still resume; proactive evacuations follow
    /// as [`ObsEvent::Reschedule`] events with [`ReschedKind::Evacuation`]).
    MachineDraining {
        /// The pool containing the machine.
        pool: PoolId,
        /// The draining machine.
        machine: MachineId,
        /// The kill deadline evacuation races against; `None` for cordons
        /// (the machine is never killed).
        deadline: Option<SimTime>,
    },
    /// A lifecycle window closed: the machine re-opened for placement.
    MachineUndrained {
        /// The pool containing the machine.
        pool: PoolId,
        /// The re-opened machine.
        machine: MachineId,
    },
    /// A hardened run booked a backoff retry for a failure-evicted job.
    RetryScheduled {
        /// The evicted job.
        job: JobId,
        /// Which failure-driven re-dispatch this is (1-based; monotonic
        /// per job).
        attempt: u32,
        /// When the backoff expires and the re-dispatch fires.
        resume_at: SimTime,
    },
    /// A pool entered (or extended) its blacklist cooldown after a
    /// machine failure; rescheduling avoids it until `until`.
    PoolBlacklisted {
        /// The unhealthy pool.
        pool: PoolId,
        /// When the cooldown expires.
        until: SimTime,
    },
    /// A rescheduling policy was consulted, with the ranking inputs it
    /// saw. Emitted immediately before the transition (if any) the
    /// verdict produces, so provenance consumers can attach the decision
    /// to the move it caused. Not rendered into JSONL traces (golden
    /// fixtures predate it); span recorders and counters observe it.
    PolicyAudit {
        /// The job the policy decided about.
        job: JobId,
        /// The pool the job occupied at decision time.
        pool: PoolId,
        /// What put the job in front of the policy.
        trigger: AuditTrigger,
        /// The decision returned.
        verdict: AuditVerdict,
        /// The chosen target pool, when the verdict names one.
        target: Option<PoolId>,
        /// How many candidate pools the policy ranked.
        candidates: u16,
        /// Effective utilization of the current pool, in thousandths
        /// (the `ResSus*Util` ranking input).
        cur_util_milli: u32,
        /// Effective utilization of the chosen target, in thousandths
        /// (equal to `cur_util_milli` for `Stay`).
        tgt_util_milli: u32,
        /// Wait-queue length of the current pool (the `ResSusQueue` /
        /// `ResSusWaitSmart` ranking input).
        cur_queue: u32,
        /// Wait-queue length of the chosen target.
        tgt_queue: u32,
    },
    /// A proactive evacuation was decided for one resident of a draining
    /// machine: the job cannot finish before the kill deadline (or is
    /// suspended with no guarantee of resuming). Emitted immediately
    /// before the corresponding [`ObsEvent::Reschedule`] with
    /// [`ReschedKind::Evacuation`]. Not rendered into JSONL traces.
    EvacAudit {
        /// The evacuated job.
        job: JobId,
        /// The pool containing the draining machine.
        pool: PoolId,
        /// The draining machine.
        machine: MachineId,
        /// The lifecycle window id that opened the drain (index into the
        /// run's normalized [`LifecyclePlan`](crate::faults::LifecyclePlan)).
        window: u32,
        /// Wall time the job still needed at decision time (zero for
        /// suspended residents, which are evacuated unconditionally).
        remaining: SimDuration,
        /// The kill deadline the evacuation raced against.
        deadline: SimTime,
    },
    /// A machine failure was attributed to its injected outage; emitted
    /// immediately after [`ObsEvent::MachineDown`], before the per-job
    /// evictions, so provenance consumers can tie every eviction (and a
    /// hardened run's blacklist booking) to the outage that caused it.
    /// Not rendered into JSONL traces.
    FaultAudit {
        /// The pool containing the failed machine.
        pool: PoolId,
        /// The failed machine.
        machine: MachineId,
        /// The outage id (index into the run's merged, normalized
        /// [`FaultPlan`](crate::faults::FaultPlan)).
        outage: u32,
        /// When the pool's blacklist cooldown expires, when this failure
        /// booked (or extended) one.
        blacklisted_until: Option<SimTime>,
    },
    /// The per-minute state sample tick (ASCA's sampling cadence).
    Sample,
}

impl ObsEvent {
    /// Stable per-kind label; [`ObsEvent::Reschedule`] is labelled by its
    /// [`ReschedKind`] so counters reconcile with [`RunCounters`]
    /// per-mechanism fields.
    ///
    /// [`RunCounters`]: crate::simulator::RunCounters
    pub fn label(&self) -> &'static str {
        match self {
            ObsEvent::Kernel { .. } => "kernel",
            ObsEvent::BatchStart { .. } => "batch",
            ObsEvent::Submit { .. } => "submit",
            ObsEvent::PoolChosen { .. } => "pool_chosen",
            ObsEvent::Unrunnable { .. } => "unrunnable",
            ObsEvent::Dispatch { .. } => "dispatch",
            ObsEvent::Enqueue { .. } => "enqueue",
            ObsEvent::Suspend { .. } => "suspend",
            ObsEvent::Resume { .. } => "resume",
            ObsEvent::Reschedule { kind, .. } => kind.label(),
            ObsEvent::WaitTimeout { .. } => "wait_timeout",
            ObsEvent::DuplicateLaunched { .. } => "duplicate",
            ObsEvent::ProxyFinish { .. } => "proxy_finish",
            ObsEvent::Complete { .. } => "complete",
            ObsEvent::MachineDown { .. } => "machine_down",
            ObsEvent::MachineUp { .. } => "machine_up",
            ObsEvent::MachineDraining { .. } => "machine_draining",
            ObsEvent::MachineUndrained { .. } => "machine_undrained",
            ObsEvent::RetryScheduled { .. } => "retry_backoff",
            ObsEvent::PoolBlacklisted { .. } => "blacklist",
            ObsEvent::PolicyAudit { .. } => "policy_audit",
            ObsEvent::EvacAudit { .. } => "evac_audit",
            ObsEvent::FaultAudit { .. } => "fault_audit",
            ObsEvent::Sample => "sample",
        }
    }
}

/// Read-only view of the simulator's state, handed to observers alongside
/// each event.
pub struct ObsCtx<'a> {
    /// The physical pools, in id order.
    pub pools: &'a [PhysicalPool],
    /// All job records (including shadow duplicates), indexed by job id.
    pub jobs: &'a [JobRecord],
    /// Ids of shadow (duplicate) copies, which are excluded from reported
    /// metrics.
    pub shadows: &'a std::collections::HashSet<JobId>,
}

/// An online observer of simulator transitions.
///
/// Implementations must keep their `Debug` output deterministic across
/// same-seed runs (no wall-clock times, no pointer values): observers ride
/// inside [`SimOutput`](crate::simulator::SimOutput), whose debug
/// rendering the determinism suite compares byte-for-byte.
pub trait SimObserver: std::fmt::Debug {
    /// Called for every observable transition, in deterministic order.
    fn on_event(&mut self, now: SimTime, event: &ObsEvent, ctx: &ObsCtx<'_>);

    /// Called once after the event loop drains, with the final state.
    fn on_run_end(&mut self, _now: SimTime, _ctx: &ObsCtx<'_>) {}

    /// Called instead of [`SimObserver::on_event`] when the sharded
    /// backend replays events buffered during a shard flush. Semantically
    /// identical to `on_event` — same events, same deterministic order —
    /// but delivered *after* the shards' mutations have all been applied,
    /// so `ctx` reflects the post-barrier state rather than the state at
    /// the instant each event fired. Observers that compare their shadow
    /// model against `ctx` mid-stream (the invariant checker) override
    /// this to defer those comparisons to [`SimObserver::on_settle`];
    /// observers that only read the event itself keep the default.
    fn on_replayed_event(&mut self, now: SimTime, event: &ObsEvent, ctx: &ObsCtx<'_>) {
        self.on_event(now, event, ctx);
    }

    /// Called by the sharded backend once per flush, after every buffered
    /// event has been replayed and all barrier state is settled —
    /// the point at which `ctx`-vs-shadow comparisons deferred from
    /// [`SimObserver::on_replayed_event`] are valid again.
    fn on_settle(&mut self, _now: SimTime, _ctx: &ObsCtx<'_>) {}

    /// Upcast for downcasting out of
    /// [`SimOutput::observer`](crate::simulator::SimOutput::observer).
    fn as_any(&self) -> &dyn Any;
}

// ---------------------------------------------------------------------
// InvariantChecker
// ---------------------------------------------------------------------

/// The checker's independent model of where a job is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SPhase {
    Unsubmitted,
    AtVpm,
    Waiting(PoolId),
    Running(PoolId, MachineId),
    Suspended(PoolId, MachineId),
    /// Migrating between pools (the record shows `AtVpm` during transit).
    InTransit,
    /// Parked at the VPM waiting out a failure-retry backoff that expires
    /// at the carried instant (the record shows `AtVpm`).
    Backoff(SimTime),
    Done,
}

/// How many events the replayable panic context retains.
const HISTORY: usize = 64;

/// Minimum number of observed events between deep sweeps (full pool
/// scans, queue order, phase cross-checks). A sweep costs O(jobs +
/// machines), so the effective interval is `max(DEEP_SWEEP_EVERY, jobs +
/// machines)`: total sweep work stays O(events) and the checker's
/// overhead a bounded fraction of the run, while small property-test
/// sites keep sweeping every 1024 events. O(touched) shadow-accounting
/// checks run at every kernel boundary regardless.
const DEEP_SWEEP_EVERY: u64 = 1024;

/// Validates simulator invariants online, at every event.
///
/// The checker maintains its own shadow accounting — per-pool busy cores,
/// per-machine resident memory, and a phase machine per job — updated only
/// from the event stream, and compares it against the pools' internal
/// accounting at every kernel boundary (pool state is fully settled
/// there). A mismatch means the simulator's incremental accounting and its
/// event stream disagree; the checker panics with the last [`HISTORY`]
/// events so the failure is replayable.
///
/// Checked invariants:
///
/// * **conservation** — shadow busy cores == pool busy cores ≤ total
///   cores; shadow resident memory == machine resident memory ≤ machine
///   capacity (suspension keeps memory, releases cores);
/// * **lifecycle** — every transition arrives in a legal phase, and at
///   completion `wait + suspend + run` tiles the job's submission-to-
///   completion span exactly;
/// * **queue order** — pool queues iterate priority-descending, FIFO
///   within a priority class (deep sweep);
/// * **resume order** — within one pool action batch, no machine resumes
///   a suspended job after starting a queued one (suspended-before-
///   waiting, per machine);
/// * **monotonic time** — observed event times never regress;
/// * **fault discipline** — down machines host nothing (no dispatch or
///   resume onto them, zero resident memory once their evictions settle,
///   no down/up event without the opposite transition first), backoff
///   retries keep strictly increasing attempt numbers with non-decreasing
///   delays and never re-dispatch before their booked instant, and no
///   rescheduling move targets a pool inside its blacklist cooldown.
pub struct InvariantChecker {
    phases: Vec<SPhase>,
    busy: Vec<u64>,
    mem: Vec<Vec<u64>>,
    /// Shadow machine health per pool, driven by MachineDown/MachineUp.
    down: Vec<Vec<bool>>,
    /// Shadow draining state per pool, driven by
    /// MachineDraining/MachineUndrained.
    draining: Vec<Vec<bool>>,
    /// Kill deadline (minutes) per draining machine; `u64::MAX` = cordon
    /// or not draining. Evacuations must land at or before this instant.
    drain_deadline: Vec<Vec<u64>>,
    /// Blacklisted-until (minutes) per pool; only ever set by observed
    /// `PoolBlacklisted` events, so unhardened runs check trivially.
    blacklist_until: Vec<u64>,
    /// Last observed (attempt, delay-minutes) per retried job.
    retry_state: BTreeMap<JobId, (u32, u64)>,
    touched_pools: Vec<usize>,
    touched_machines: Vec<(usize, usize)>,
    queue_started: Vec<(usize, usize)>,
    history: VecDeque<(SimTime, ObsEvent)>,
    last_now: SimTime,
    events_seen: u64,
    last_sweep: u64,
    machine_total: u64,
    initialized: bool,
}

impl Default for InvariantChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for InvariantChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvariantChecker")
            .field("events_seen", &self.events_seen)
            .finish()
    }
}

impl InvariantChecker {
    /// A fresh checker; sizes itself lazily from the first event's context.
    pub fn new() -> Self {
        InvariantChecker {
            phases: Vec::new(),
            busy: Vec::new(),
            mem: Vec::new(),
            down: Vec::new(),
            draining: Vec::new(),
            drain_deadline: Vec::new(),
            blacklist_until: Vec::new(),
            retry_state: BTreeMap::new(),
            touched_pools: Vec::new(),
            touched_machines: Vec::new(),
            queue_started: Vec::new(),
            history: VecDeque::with_capacity(HISTORY),
            last_now: SimTime::ZERO,
            events_seen: 0,
            last_sweep: 0,
            machine_total: 0,
            initialized: false,
        }
    }

    /// Events observed so far (including markers).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    fn ensure_init(&mut self, ctx: &ObsCtx<'_>) {
        if self.initialized {
            return;
        }
        self.busy = vec![0; ctx.pools.len()];
        self.mem = ctx
            .pools
            .iter()
            .map(|p| vec![0; p.machine_count()])
            .collect();
        self.down = ctx
            .pools
            .iter()
            .map(|p| vec![false; p.machine_count()])
            .collect();
        self.draining = ctx
            .pools
            .iter()
            .map(|p| vec![false; p.machine_count()])
            .collect();
        self.drain_deadline = ctx
            .pools
            .iter()
            .map(|p| vec![u64::MAX; p.machine_count()])
            .collect();
        self.blacklist_until = vec![0; ctx.pools.len()];
        self.phases = vec![SPhase::Unsubmitted; ctx.jobs.len()];
        self.machine_total = ctx.pools.iter().map(|p| p.machine_count() as u64).sum();
        self.initialized = true;
    }

    fn phase(&mut self, job: JobId) -> SPhase {
        let i = job.as_usize();
        if i >= self.phases.len() {
            self.phases.resize(i + 1, SPhase::Unsubmitted);
        }
        self.phases[i]
    }

    fn set_phase(&mut self, job: JobId, phase: SPhase) {
        let i = job.as_usize();
        if i >= self.phases.len() {
            self.phases.resize(i + 1, SPhase::Unsubmitted);
        }
        self.phases[i] = phase;
    }

    fn touch_pool(&mut self, pool: PoolId) {
        let p = pool.as_usize();
        if !self.touched_pools.contains(&p) {
            self.touched_pools.push(p);
        }
    }

    fn touch_machine(&mut self, pool: PoolId, machine: MachineId) {
        self.touch_pool(pool);
        let key = (pool.as_usize(), machine.as_usize());
        if !self.touched_machines.contains(&key) {
            self.touched_machines.push(key);
        }
    }

    #[cold]
    fn violation(&self, now: SimTime, msg: &str) -> ! {
        let mut dump = String::new();
        for (t, ev) in &self.history {
            let _ = writeln!(dump, "  {t} {ev:?}");
        }
        panic!(
            "invariant violated at {now}: {msg}\nlast {} observed events (oldest first):\n{dump}",
            self.history.len()
        );
    }

    fn expect_phase(&mut self, now: SimTime, job: JobId, want: SPhase, at: &str) {
        let got = self.phase(job);
        if got != want {
            self.violation(now, &format!("{at}: {job} is {got:?}, expected {want:?}"));
        }
    }

    /// A job's resource footprint, read from its record.
    fn resources(&self, ctx: &ObsCtx<'_>, job: JobId) -> (u64, u64) {
        let res = ctx.jobs[job.as_usize()].spec().resources;
        (u64::from(res.cores), res.memory_mb)
    }

    fn add_usage(&mut self, pool: PoolId, machine: MachineId, cores: u64, mem: u64) {
        self.busy[pool.as_usize()] += cores;
        self.mem[pool.as_usize()][machine.as_usize()] += mem;
        self.touch_machine(pool, machine);
    }

    fn sub_usage(&mut self, now: SimTime, pool: PoolId, machine: MachineId, cores: u64, mem: u64) {
        let Some(b) = self.busy[pool.as_usize()].checked_sub(cores) else {
            self.violation(
                now,
                &format!("busy-core underflow in {pool} (releasing {cores})"),
            );
        };
        self.busy[pool.as_usize()] = b;
        let Some(m) = self.mem[pool.as_usize()][machine.as_usize()].checked_sub(mem) else {
            self.violation(
                now,
                &format!("resident-memory underflow on {pool}/{machine} (releasing {mem} MB)"),
            );
        };
        self.mem[pool.as_usize()][machine.as_usize()] = m;
        self.touch_machine(pool, machine);
    }

    /// O(touched) comparisons against the pools' own accounting; runs at
    /// every kernel boundary (state is settled there).
    fn check_touched(&mut self, now: SimTime, ctx: &ObsCtx<'_>) {
        while let Some(p) = self.touched_pools.pop() {
            self.check_pool(now, ctx, p);
        }
        while let Some((p, m)) = self.touched_machines.pop() {
            self.check_machine(now, ctx, p, m);
        }
    }

    fn check_pool(&self, now: SimTime, ctx: &ObsCtx<'_>, p: usize) {
        let pool = &ctx.pools[p];
        let shadow = self.busy[p];
        let actual = u64::from(pool.busy_cores());
        if shadow != actual {
            self.violation(
                now,
                &format!(
                    "busy-core conservation broken in {}: events say {shadow}, pool says {actual}",
                    pool.id()
                ),
            );
        }
        let total = u64::from(pool.total_cores());
        if shadow > total {
            self.violation(
                now,
                &format!("{} runs {shadow} cores but only has {total}", pool.id()),
            );
        }
    }

    fn check_machine(&self, now: SimTime, ctx: &ObsCtx<'_>, p: usize, m: usize) {
        let pool = &ctx.pools[p];
        let Some(mach) = pool.machine(MachineId(m as u32)) else {
            self.violation(now, &format!("unknown machine m{m} in {}", pool.id()));
        };
        let shadow = self.mem[p][m];
        let actual = mach.memory_used();
        if shadow != actual {
            self.violation(
                now,
                &format!(
                    "memory accounting broken on {}/m{m}: events say {shadow} MB, machine says {actual} MB",
                    pool.id()
                ),
            );
        }
        if shadow > mach.config().memory_mb {
            self.violation(
                now,
                &format!(
                    "{}/m{m} holds {shadow} MB resident but has {} MB",
                    pool.id(),
                    mach.config().memory_mb
                ),
            );
        }
        if self.down[p][m] && shadow != 0 {
            self.violation(
                now,
                &format!(
                    "down machine {}/m{m} still hosts {shadow} MB resident",
                    pool.id()
                ),
            );
        }
    }

    /// A job is leaving the VPM (pool choice, enqueue, fresh dispatch):
    /// legal from `AtVpm`/`InTransit`, or from `Backoff` once the booked
    /// backoff instant has passed.
    fn expect_dispatchable(&mut self, now: SimTime, job: JobId, at: &str) {
        match self.phase(job) {
            SPhase::AtVpm | SPhase::InTransit => {}
            SPhase::Backoff(resume_at) => {
                if now < resume_at {
                    self.violation(
                        now,
                        &format!("{at}: {job} acted on before its backoff expires at {resume_at}"),
                    );
                }
            }
            got => self.violation(
                now,
                &format!("{at}: {job} is {got:?}, expected AtVpm/InTransit/Backoff"),
            ),
        }
    }

    /// No rescheduling decision may target a pool inside its blacklist
    /// cooldown (the map is only populated by observed `PoolBlacklisted`
    /// events, so unhardened runs pass trivially).
    fn check_not_blacklisted(&self, now: SimTime, target: PoolId, at: &str) {
        let until = self.blacklist_until[target.as_usize()];
        if now.as_minutes() < until {
            self.violation(
                now,
                &format!("{at}: targeted blacklisted {target} (cooldown until t+{until}m)"),
            );
        }
    }

    /// An evacuation reschedule is only legal off a machine that is
    /// currently draining, and must land at or before the drain's kill
    /// deadline — an evacuation after the kill would be racing a machine
    /// that is already down.
    fn check_evacuation_window(&self, now: SimTime, pool: PoolId, machine: MachineId) {
        let (p, m) = (pool.as_usize(), machine.as_usize());
        if !self.draining[p][m] {
            self.violation(
                now,
                &format!("evacuation off non-draining machine {pool}/{machine}"),
            );
        }
        let deadline = self.drain_deadline[p][m];
        if now.as_minutes() > deadline {
            self.violation(
                now,
                &format!(
                    "evacuation off {pool}/{machine} after its drain deadline (t+{deadline}m)"
                ),
            );
        }
    }

    /// Full-state sweep: every pool's internal invariants, queue order,
    /// and the shadow phase machine against the job records.
    fn deep_sweep(&self, now: SimTime, ctx: &ObsCtx<'_>) {
        for (p, pool) in ctx.pools.iter().enumerate() {
            if self.busy[p] != u64::from(pool.busy_cores()) {
                self.violation(
                    now,
                    &format!(
                        "busy-core conservation broken in {} (deep sweep): events say {}, pool says {}",
                        pool.id(),
                        self.busy[p],
                        pool.busy_cores()
                    ),
                );
            }
            if !pool.check_invariants() {
                self.violation(now, &format!("{} fails its internal invariants", pool.id()));
            }
            let mut prev: Option<(netbatch_cluster::priority::Priority, SimTime)> = None;
            for entry in pool.waiting_jobs() {
                if let Some((prio, at)) = prev {
                    if entry.priority > prio {
                        self.violation(
                            now,
                            &format!(
                                "queue order broken in {}: {:?} queued behind {:?}",
                                pool.id(),
                                entry.priority,
                                prio
                            ),
                        );
                    }
                    if entry.priority == prio && entry.enqueued_at < at {
                        self.violation(
                            now,
                            &format!(
                                "FIFO order broken in {} for priority {:?}: {} enqueued at {} sits behind {}",
                                pool.id(),
                                prio,
                                entry.job,
                                entry.enqueued_at,
                                at
                            ),
                        );
                    }
                }
                prev = Some((entry.priority, entry.enqueued_at));
            }
        }
        for (i, rec) in ctx.jobs.iter().enumerate() {
            let shadow = self.phases.get(i).copied().unwrap_or(SPhase::Unsubmitted);
            if let SPhase::Running(p, m) | SPhase::Suspended(p, m) = shadow {
                if self.down[p.as_usize()][m.as_usize()] {
                    self.violation(
                        now,
                        &format!(
                            "{} is {shadow:?} on down machine {p}/{m} (deep sweep)",
                            rec.id()
                        ),
                    );
                }
            }
            use netbatch_cluster::job::JobPhase as JP;
            let ok = match (shadow, rec.phase()) {
                (SPhase::Unsubmitted, JP::Created) => true,
                (SPhase::AtVpm | SPhase::InTransit | SPhase::Backoff(_), JP::AtVpm) => true,
                (SPhase::Waiting(p), JP::Waiting { pool }) => p == pool,
                (SPhase::Running(p, m), JP::Running { pool, machine }) => p == pool && m == machine,
                (SPhase::Suspended(p, m), JP::Suspended { pool, machine }) => {
                    p == pool && m == machine
                }
                (SPhase::Done, JP::Completed) => true,
                _ => false,
            };
            if !ok {
                self.violation(
                    now,
                    &format!(
                        "phase cross-check failed for {}: events imply {shadow:?}, record says {}",
                        rec.id(),
                        rec.phase().name()
                    ),
                );
            }
        }
    }

    /// wait + suspend + run must tile submission → completion exactly.
    fn check_tiling(&self, now: SimTime, ctx: &ObsCtx<'_>, job: JobId) {
        if ctx.shadows.contains(&job) {
            // Duplicate clones inherit the original's submit stamp but only
            // come to life at launch time; their span is not tileable.
            return;
        }
        let rec = &ctx.jobs[job.as_usize()];
        let Some(done) = rec.completed_at() else {
            self.violation(now, &format!("{job} reported complete without a timestamp"));
        };
        let span = done.since(rec.spec().submit_time);
        let tiled = rec.wait_time() + rec.suspend_time() + rec.run_time();
        if span != tiled {
            self.violation(
                now,
                &format!(
                    "lifecycle tiling broken for {job}: span {span} != wait {} + suspend {} + run {}",
                    rec.wait_time(),
                    rec.suspend_time(),
                    rec.run_time()
                ),
            );
        }
    }
}

impl SimObserver for InvariantChecker {
    fn on_event(&mut self, now: SimTime, event: &ObsEvent, ctx: &ObsCtx<'_>) {
        self.ensure_init(ctx);
        if now < self.last_now {
            self.violation(now, &format!("time regressed from {}", self.last_now));
        }
        self.last_now = now;
        if self.history.len() == HISTORY {
            self.history.pop_front();
        }
        self.history.push_back((now, *event));
        self.events_seen += 1;

        match *event {
            ObsEvent::Kernel { .. } => {
                self.queue_started.clear();
                self.check_touched(now, ctx);
                let interval = DEEP_SWEEP_EVERY.max(ctx.jobs.len() as u64 + self.machine_total);
                if self.events_seen - self.last_sweep >= interval {
                    self.deep_sweep(now, ctx);
                    self.last_sweep = self.events_seen;
                }
            }
            ObsEvent::BatchStart { .. } => self.queue_started.clear(),
            ObsEvent::Submit { job } => {
                self.expect_phase(now, job, SPhase::Unsubmitted, "submit");
                self.set_phase(job, SPhase::AtVpm);
            }
            // A migrating job can fall back through the VPM when its
            // target turned ineligible in transit; a failure-retried job
            // leaves Backoff here once its delay expired.
            ObsEvent::PoolChosen { job, .. } => self.expect_dispatchable(now, job, "pool_chosen"),
            ObsEvent::Unrunnable { job } => match self.phase(job) {
                // A give-up can land mid-backoff (budget exhausted while
                // parked), so no timing requirement here.
                SPhase::AtVpm | SPhase::InTransit | SPhase::Backoff(_) => {}
                got => self.violation(
                    now,
                    &format!("unrunnable: {job} is {got:?}, expected AtVpm/InTransit/Backoff"),
                ),
            },
            ObsEvent::Enqueue { job, pool } => {
                self.expect_dispatchable(now, job, "enqueue");
                self.set_phase(job, SPhase::Waiting(pool));
            }
            ObsEvent::Dispatch {
                job,
                pool,
                machine,
                wall,
                from_queue,
            } => {
                if from_queue {
                    self.expect_phase(now, job, SPhase::Waiting(pool), "dispatch(queue)");
                    self.queue_started
                        .push((pool.as_usize(), machine.as_usize()));
                } else {
                    self.expect_dispatchable(now, job, "dispatch");
                }
                if wall.is_zero() {
                    self.violation(now, &format!("dispatch: {job} started with zero wall time"));
                }
                if self.down[pool.as_usize()][machine.as_usize()] {
                    self.violation(
                        now,
                        &format!("dispatch: {job} placed on down machine {pool}/{machine}"),
                    );
                }
                if self.draining[pool.as_usize()][machine.as_usize()] {
                    self.violation(
                        now,
                        &format!("dispatch: {job} placed on draining machine {pool}/{machine}"),
                    );
                }
                let (cores, mem) = self.resources(ctx, job);
                self.add_usage(pool, machine, cores, mem);
                self.set_phase(job, SPhase::Running(pool, machine));
            }
            ObsEvent::Suspend { job, pool, machine } => {
                self.expect_phase(now, job, SPhase::Running(pool, machine), "suspend");
                let (cores, _) = self.resources(ctx, job);
                // Suspension releases cores but keeps resident memory.
                self.sub_usage(now, pool, machine, cores, 0);
                self.set_phase(job, SPhase::Suspended(pool, machine));
            }
            ObsEvent::Resume { job, pool, machine } => {
                self.expect_phase(now, job, SPhase::Suspended(pool, machine), "resume");
                if self.down[pool.as_usize()][machine.as_usize()] {
                    self.violation(
                        now,
                        &format!("resume: {job} resumed on down machine {pool}/{machine}"),
                    );
                }
                if self
                    .queue_started
                    .contains(&(pool.as_usize(), machine.as_usize()))
                {
                    self.violation(
                        now,
                        &format!(
                            "resume order broken on {pool}/{machine}: {job} resumed after a \
                             queued job started in the same batch"
                        ),
                    );
                }
                let (cores, _) = self.resources(ctx, job);
                self.add_usage(pool, machine, cores, 0);
                self.set_phase(job, SPhase::Running(pool, machine));
            }
            ObsEvent::Complete { job, pool, machine } => {
                self.expect_phase(now, job, SPhase::Running(pool, machine), "complete");
                let (cores, mem) = self.resources(ctx, job);
                self.sub_usage(now, pool, machine, cores, mem);
                self.set_phase(job, SPhase::Done);
                self.check_tiling(now, ctx, job);
            }
            ObsEvent::WaitTimeout { job, pool } => {
                self.expect_phase(now, job, SPhase::Waiting(pool), "wait_timeout");
            }
            ObsEvent::Reschedule {
                job,
                kind,
                from_pool,
                machine,
                from_phase,
                to,
                ..
            } => {
                if let Some(target) = to {
                    self.check_not_blacklisted(now, target, kind.label());
                }
                let (cores, mem) = self.resources(ctx, job);
                match (kind, from_phase) {
                    (
                        ReschedKind::RestartFromSuspend | ReschedKind::Migrate,
                        PhaseTag::Suspended,
                    ) => {
                        let m = machine.unwrap_or_else(|| {
                            self.violation(now, &format!("{}: no machine for {job}", kind.label()))
                        });
                        self.expect_phase(now, job, SPhase::Suspended(from_pool, m), kind.label());
                        self.sub_usage(now, from_pool, m, 0, mem);
                        let next = if kind == ReschedKind::Migrate {
                            SPhase::InTransit
                        } else {
                            SPhase::AtVpm
                        };
                        self.set_phase(job, next);
                    }
                    (ReschedKind::RestartFromWait, PhaseTag::Waiting) => {
                        self.expect_phase(now, job, SPhase::Waiting(from_pool), kind.label());
                        self.set_phase(job, SPhase::AtVpm);
                    }
                    (ReschedKind::FailureEvict, PhaseTag::Running) => {
                        let m = machine.unwrap_or_else(|| {
                            self.violation(now, &format!("failure_evict: no machine for {job}"))
                        });
                        self.expect_phase(now, job, SPhase::Running(from_pool, m), kind.label());
                        self.sub_usage(now, from_pool, m, cores, mem);
                        self.set_phase(job, SPhase::AtVpm);
                    }
                    (ReschedKind::FailureEvict, PhaseTag::Suspended) => {
                        let m = machine.unwrap_or_else(|| {
                            self.violation(now, &format!("failure_evict: no machine for {job}"))
                        });
                        self.expect_phase(now, job, SPhase::Suspended(from_pool, m), kind.label());
                        self.sub_usage(now, from_pool, m, 0, mem);
                        self.set_phase(job, SPhase::AtVpm);
                    }
                    (ReschedKind::Evacuation, PhaseTag::Running) => {
                        let m = machine.unwrap_or_else(|| {
                            self.violation(now, &format!("evacuation: no machine for {job}"))
                        });
                        self.check_evacuation_window(now, from_pool, m);
                        self.expect_phase(now, job, SPhase::Running(from_pool, m), kind.label());
                        self.sub_usage(now, from_pool, m, cores, mem);
                        self.set_phase(job, SPhase::AtVpm);
                    }
                    (ReschedKind::Evacuation, PhaseTag::Suspended) => {
                        let m = machine.unwrap_or_else(|| {
                            self.violation(now, &format!("evacuation: no machine for {job}"))
                        });
                        self.check_evacuation_window(now, from_pool, m);
                        self.expect_phase(now, job, SPhase::Suspended(from_pool, m), kind.label());
                        self.sub_usage(now, from_pool, m, 0, mem);
                        self.set_phase(job, SPhase::AtVpm);
                    }
                    (kind, phase) => self.violation(
                        now,
                        &format!(
                            "illegal reschedule {}/{} for {job}",
                            kind.label(),
                            phase.label()
                        ),
                    ),
                }
            }
            ObsEvent::DuplicateLaunched {
                original,
                clone,
                target,
            } => {
                self.check_not_blacklisted(now, target, "duplicate");
                match self.phase(original) {
                    SPhase::Suspended(..) => {}
                    got => self.violation(
                        now,
                        &format!("duplicate: original {original} is {got:?}, expected Suspended"),
                    ),
                }
                self.expect_phase(now, clone, SPhase::Unsubmitted, "duplicate");
                self.set_phase(clone, SPhase::AtVpm);
            }
            ObsEvent::ProxyFinish {
                job,
                from_phase,
                pool,
                machine,
            } => {
                let (cores, mem) = self.resources(ctx, job);
                match from_phase {
                    PhaseTag::Running => {
                        let (p, m) = (pool.unwrap(), machine.unwrap());
                        self.expect_phase(now, job, SPhase::Running(p, m), "proxy_finish");
                        self.sub_usage(now, p, m, cores, mem);
                    }
                    PhaseTag::Suspended => {
                        let (p, m) = (pool.unwrap(), machine.unwrap());
                        self.expect_phase(now, job, SPhase::Suspended(p, m), "proxy_finish");
                        self.sub_usage(now, p, m, 0, mem);
                    }
                    PhaseTag::Waiting => {
                        let p = pool.unwrap();
                        self.expect_phase(now, job, SPhase::Waiting(p), "proxy_finish");
                    }
                    PhaseTag::AtVpm => match self.phase(job) {
                        // A backoff-parked copy can lose the race too.
                        SPhase::AtVpm | SPhase::InTransit | SPhase::Backoff(_) => {}
                        got => self.violation(
                            now,
                            &format!(
                                "proxy_finish: {job} is {got:?}, expected AtVpm/InTransit/Backoff"
                            ),
                        ),
                    },
                }
                self.set_phase(job, SPhase::Done);
                self.check_tiling(now, ctx, job);
            }
            ObsEvent::MachineDown { pool, machine } => {
                // Evictions follow as failure_evict reschedules; once they
                // all land, the shadow reaches the drained machine state.
                if self.down[pool.as_usize()][machine.as_usize()] {
                    self.violation(
                        now,
                        &format!("machine_down: {pool}/{machine} failed while already down"),
                    );
                }
                self.down[pool.as_usize()][machine.as_usize()] = true;
                self.touch_machine(pool, machine);
            }
            ObsEvent::MachineUp { pool, machine } => {
                if !self.down[pool.as_usize()][machine.as_usize()] {
                    self.violation(
                        now,
                        &format!("machine_up: {pool}/{machine} restored while not down"),
                    );
                }
                self.down[pool.as_usize()][machine.as_usize()] = false;
                self.touch_machine(pool, machine);
            }
            ObsEvent::MachineDraining {
                pool,
                machine,
                deadline,
            } => {
                // Draining while down is legal (a merged window can open
                // during a stochastic outage); draining twice is not —
                // the plan normalization guarantees alternation.
                let (p, m) = (pool.as_usize(), machine.as_usize());
                if self.draining[p][m] {
                    self.violation(
                        now,
                        &format!(
                            "machine_draining: {pool}/{machine} drained while already draining"
                        ),
                    );
                }
                if let Some(d) = deadline {
                    if d < now {
                        self.violation(
                            now,
                            &format!("machine_draining: {pool}/{machine} kill deadline {d} is in the past"),
                        );
                    }
                }
                self.draining[p][m] = true;
                self.drain_deadline[p][m] = deadline.map_or(u64::MAX, |d| d.as_minutes());
            }
            ObsEvent::MachineUndrained { pool, machine } => {
                let (p, m) = (pool.as_usize(), machine.as_usize());
                if !self.draining[p][m] {
                    self.violation(
                        now,
                        &format!(
                            "machine_undrained: {pool}/{machine} re-opened while not draining"
                        ),
                    );
                }
                self.draining[p][m] = false;
                self.drain_deadline[p][m] = u64::MAX;
            }
            ObsEvent::RetryScheduled {
                job,
                attempt,
                resume_at,
            } => {
                match self.phase(job) {
                    // First retry leaves AtVpm (just evicted); graceful-
                    // degradation re-parks leave Backoff.
                    SPhase::AtVpm | SPhase::Backoff(_) => {}
                    got => self.violation(
                        now,
                        &format!("retry_backoff: {job} is {got:?}, expected AtVpm/Backoff"),
                    ),
                }
                if resume_at < now {
                    self.violation(
                        now,
                        &format!("retry_backoff: {job} booked in the past ({resume_at})"),
                    );
                }
                let delay = resume_at.since(now).as_minutes();
                if let Some(&(prev_attempt, prev_delay)) = self.retry_state.get(&job) {
                    if attempt != prev_attempt + 1 {
                        self.violation(
                            now,
                            &format!(
                                "retry_backoff: {job} attempt jumped {prev_attempt} -> {attempt}"
                            ),
                        );
                    }
                    if delay < prev_delay {
                        self.violation(
                            now,
                            &format!(
                                "backoff ordering broken for {job}: delay shrank {prev_delay}m -> {delay}m"
                            ),
                        );
                    }
                } else if attempt != 1 {
                    self.violation(
                        now,
                        &format!("retry_backoff: {job} first observed attempt is {attempt}"),
                    );
                }
                self.retry_state.insert(job, (attempt, delay));
                self.set_phase(job, SPhase::Backoff(resume_at));
            }
            ObsEvent::PoolBlacklisted { pool, until } => {
                let u = until.as_minutes();
                if u < now.as_minutes() {
                    self.violation(
                        now,
                        &format!("blacklist: {pool} cooldown already expired at booking time"),
                    );
                }
                let entry = &mut self.blacklist_until[pool.as_usize()];
                if *entry < u {
                    *entry = u;
                }
            }
            ObsEvent::PolicyAudit { target, .. } => {
                // The verdict's transition (if any) follows and is checked
                // there; here we only pin that the audited target is legal.
                if let Some(target) = target {
                    self.check_not_blacklisted(now, target, "policy_audit");
                }
            }
            // Pure provenance annotations: the transitions they explain
            // (evacuation reschedules, machine_down evictions) carry their
            // own invariants.
            ObsEvent::EvacAudit { .. } | ObsEvent::FaultAudit { .. } => {}
            ObsEvent::Sample => {}
        }
    }

    fn on_run_end(&mut self, now: SimTime, ctx: &ObsCtx<'_>) {
        self.ensure_init(ctx);
        self.check_touched(now, ctx);
        self.deep_sweep(now, ctx);
    }

    fn on_replayed_event(&mut self, now: SimTime, event: &ObsEvent, ctx: &ObsCtx<'_>) {
        // During a shard-flush replay, `ctx` holds the *post-barrier*
        // state: every event in the batch has already been applied. The
        // kernel-boundary shadow-vs-actual comparisons (check_touched,
        // deep sweeps) would compare mid-batch shadow state against
        // end-of-batch pool state and report phantom violations, so the
        // kernel arm only does its bookkeeping here and the comparisons
        // run once the batch settles (`on_settle`). Every other arm reads
        // settled per-job data (records, resources, down flags) that the
        // replay order reproduces exactly, so it runs unchanged.
        if let ObsEvent::Kernel { .. } = event {
            self.ensure_init(ctx);
            if now < self.last_now {
                self.violation(now, &format!("time regressed from {}", self.last_now));
            }
            self.last_now = now;
            if self.history.len() == HISTORY {
                self.history.pop_front();
            }
            self.history.push_back((now, *event));
            self.events_seen += 1;
            self.queue_started.clear();
        } else {
            self.on_event(now, event, ctx);
        }
    }

    fn on_settle(&mut self, now: SimTime, ctx: &ObsCtx<'_>) {
        self.ensure_init(ctx);
        self.check_touched(now, ctx);
        let interval = DEEP_SWEEP_EVERY.max(ctx.jobs.len() as u64 + self.machine_total);
        if self.events_seen - self.last_sweep >= interval {
            self.deep_sweep(now, ctx);
            self.last_sweep = self.events_seen;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------

enum Sink {
    Memory(String),
    File(std::io::BufWriter<std::fs::File>),
    /// Buffered stdout, for `--trace-out -` pipeline use.
    Stdout(std::io::BufWriter<std::io::Stdout>),
}

/// Streams every lifecycle event as one JSON object per line (JSONL).
///
/// The JSON is hand-written with a fixed field order per event kind (the
/// workspace carries no serde, the same offline constraint as
/// `perf_baseline`), so two same-seed runs produce byte-identical logs —
/// the property the golden-trace conformance suite pins. Structural
/// markers ([`ObsEvent::Kernel`], [`ObsEvent::BatchStart`]) are not
/// recorded.
pub struct TraceRecorder {
    sink: Sink,
    counts: BTreeMap<&'static str, u64>,
    events: u64,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("events", &self.events)
            .field("counts", &self.counts)
            .finish()
    }
}

impl TraceRecorder {
    /// Records into an in-memory buffer (read back with
    /// [`TraceRecorder::lines`]).
    pub fn in_memory() -> Self {
        TraceRecorder {
            sink: Sink::Memory(String::new()),
            counts: BTreeMap::new(),
            events: 0,
        }
    }

    /// Streams to a file through a buffered writer.
    pub fn to_file(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(TraceRecorder {
            sink: Sink::File(std::io::BufWriter::new(file)),
            counts: BTreeMap::new(),
            events: 0,
        })
    }

    /// Streams to stdout (the `--trace-out -` pipeline sink).
    pub fn to_stdout() -> Self {
        TraceRecorder {
            sink: Sink::Stdout(std::io::BufWriter::new(std::io::stdout())),
            counts: BTreeMap::new(),
            events: 0,
        }
    }

    /// The recorded JSONL document (empty for file- and stdout-backed
    /// recorders).
    pub fn lines(&self) -> &str {
        match &self.sink {
            Sink::Memory(buf) => buf,
            Sink::File(_) | Sink::Stdout(_) => "",
        }
    }

    /// Recorded events per kind label.
    pub fn kind_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Total recorded events.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn write_line(&mut self, line: &str) {
        match &mut self.sink {
            Sink::Memory(buf) => {
                buf.push_str(line);
                buf.push('\n');
            }
            Sink::File(w) => {
                writeln!(w, "{line}").expect("trace write failed");
            }
            Sink::Stdout(w) => {
                writeln!(w, "{line}").expect("trace write failed");
            }
        }
    }

    fn render(now: SimTime, event: &ObsEvent) -> Option<String> {
        let t = now.as_minutes();
        let ev = event.label();
        let mut s = String::with_capacity(96);
        match *event {
            // Markers and decision audits are structural: audits carry the
            // provenance layer's causes and would perturb the pinned golden
            // JSONL fixtures, so they stay out of the event log (span
            // recorders consume them instead).
            ObsEvent::Kernel { .. }
            | ObsEvent::BatchStart { .. }
            | ObsEvent::PolicyAudit { .. }
            | ObsEvent::EvacAudit { .. }
            | ObsEvent::FaultAudit { .. } => return None,
            ObsEvent::Submit { job } | ObsEvent::Unrunnable { job } => {
                let _ = write!(s, r#"{{"t":{t},"ev":"{ev}","job":{}}}"#, job.as_u64());
            }
            ObsEvent::PoolChosen { job, pool }
            | ObsEvent::Enqueue { job, pool }
            | ObsEvent::WaitTimeout { job, pool } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","job":{},"pool":{}}}"#,
                    job.as_u64(),
                    pool.as_u16()
                );
            }
            ObsEvent::Dispatch {
                job,
                pool,
                machine,
                wall,
                from_queue,
            } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","job":{},"pool":{},"machine":{},"wall":{},"from_queue":{from_queue}}}"#,
                    job.as_u64(),
                    pool.as_u16(),
                    machine.as_u32(),
                    wall.as_minutes()
                );
            }
            ObsEvent::Suspend { job, pool, machine }
            | ObsEvent::Resume { job, pool, machine }
            | ObsEvent::Complete { job, pool, machine } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","job":{},"pool":{},"machine":{}}}"#,
                    job.as_u64(),
                    pool.as_u16(),
                    machine.as_u32()
                );
            }
            ObsEvent::Reschedule {
                job,
                kind: _,
                from_pool,
                machine,
                from_phase,
                to,
                discarded,
            } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","job":{},"from_pool":{},"machine":{},"from_phase":"{}","to":{},"discarded":{}}}"#,
                    job.as_u64(),
                    from_pool.as_u16(),
                    opt_u64(machine.map(|m| u64::from(m.as_u32()))),
                    from_phase.label(),
                    opt_u64(to.map(|p| u64::from(p.as_u16()))),
                    discarded.as_minutes()
                );
            }
            ObsEvent::DuplicateLaunched {
                original,
                clone,
                target,
            } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","original":{},"clone":{},"target":{}}}"#,
                    original.as_u64(),
                    clone.as_u64(),
                    target.as_u16()
                );
            }
            ObsEvent::ProxyFinish {
                job,
                from_phase,
                pool,
                machine,
            } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","job":{},"from_phase":"{}","pool":{},"machine":{}}}"#,
                    job.as_u64(),
                    from_phase.label(),
                    opt_u64(pool.map(|p| u64::from(p.as_u16()))),
                    opt_u64(machine.map(|m| u64::from(m.as_u32())))
                );
            }
            ObsEvent::MachineDown { pool, machine }
            | ObsEvent::MachineUp { pool, machine }
            | ObsEvent::MachineUndrained { pool, machine } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","pool":{},"machine":{}}}"#,
                    pool.as_u16(),
                    machine.as_u32()
                );
            }
            ObsEvent::MachineDraining {
                pool,
                machine,
                deadline,
            } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","pool":{},"machine":{},"deadline":{}}}"#,
                    pool.as_u16(),
                    machine.as_u32(),
                    opt_u64(deadline.map(|d| d.as_minutes()))
                );
            }
            ObsEvent::RetryScheduled {
                job,
                attempt,
                resume_at,
            } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","job":{},"attempt":{attempt},"resume_at":{}}}"#,
                    job.as_u64(),
                    resume_at.as_minutes()
                );
            }
            ObsEvent::PoolBlacklisted { pool, until } => {
                let _ = write!(
                    s,
                    r#"{{"t":{t},"ev":"{ev}","pool":{},"until":{}}}"#,
                    pool.as_u16(),
                    until.as_minutes()
                );
            }
            ObsEvent::Sample => {
                let _ = write!(s, r#"{{"t":{t},"ev":"{ev}"}}"#);
            }
        }
        Some(s)
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

impl SimObserver for TraceRecorder {
    fn on_event(&mut self, now: SimTime, event: &ObsEvent, _ctx: &ObsCtx<'_>) {
        if let Some(line) = Self::render(now, event) {
            *self.counts.entry(event.label()).or_insert(0) += 1;
            self.events += 1;
            self.write_line(&line);
        }
    }

    fn on_run_end(&mut self, _now: SimTime, _ctx: &ObsCtx<'_>) {
        match &mut self.sink {
            Sink::File(w) => w.flush().expect("trace flush failed"),
            Sink::Stdout(w) => w.flush().expect("trace flush failed"),
            Sink::Memory(_) => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// StatsProbe
// ---------------------------------------------------------------------

/// Counts events per kind and measures real (host) wall-clock time spent
/// handling each kernel event kind.
///
/// The probe is composed from two deliberately separated halves (see
/// [`netbatch_sim_engine::observe`]): deterministic sim-domain
/// [`LabelCounter`]s, which may appear in traces, debug output and golden
/// fixtures, and a wall-clock [`LabelTimer`], whose measurements are
/// nondeterministic and whose `Debug` impl redacts them — so an `Instant`
/// delta can never leak into a deterministic rendering, no matter how the
/// probe is formatted.
///
/// Timings come from deltas between consecutive kernel markers, so they
/// attribute the *whole* handler (including cascaded rescheduling) to the
/// kernel event that triggered it.
pub struct StatsProbe {
    counts: LabelCounter,
    kernel_counts: LabelCounter,
    kernel_timer: LabelTimer,
}

impl Default for StatsProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StatsProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Only the deterministic halves; the timer would redact itself
        // anyway, but keeping it out entirely keeps the rendering stable
        // across the split.
        f.debug_struct("StatsProbe")
            .field("counts", self.counts.counts())
            .field("kernel_counts", self.kernel_counts.counts())
            .finish()
    }
}

impl StatsProbe {
    /// A fresh probe.
    pub fn new() -> Self {
        StatsProbe {
            counts: LabelCounter::new(),
            kernel_counts: LabelCounter::new(),
            kernel_timer: LabelTimer::new(),
        }
    }

    /// Observed transition counts per kind (markers excluded).
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        self.counts.counts()
    }

    /// Kernel events per kind.
    pub fn kernel_counts(&self) -> &BTreeMap<&'static str, u64> {
        self.kernel_counts.counts()
    }

    /// Host wall-clock nanos per kernel event kind (nondeterministic;
    /// surfaced for reports only, never for traces or fixtures).
    pub fn kernel_nanos(&self) -> &BTreeMap<&'static str, u128> {
        self.kernel_timer.all_nanos()
    }

    /// Human-readable summary table.
    pub fn report(&self) -> String {
        let mut out = String::from("event counts:\n");
        for (kind, n) in self.counts.counts() {
            let _ = writeln!(out, "  {kind:<22} {n}");
        }
        out.push_str("handler wall time by kernel event:\n");
        for (kind, n) in self.kernel_counts.counts() {
            let nanos = self.kernel_timer.nanos(kind);
            let _ = writeln!(
                out,
                "  {kind:<22} {n:>9} events  {:>8.1} ms total  {:>7.2} µs/event",
                nanos as f64 / 1e6,
                nanos as f64 / 1e3 / (*n).max(1) as f64
            );
        }
        out
    }
}

impl SimObserver for StatsProbe {
    fn on_event(&mut self, _now: SimTime, event: &ObsEvent, _ctx: &ObsCtx<'_>) {
        if let ObsEvent::Kernel { kind } = event {
            self.kernel_counts.inc(kind);
            self.kernel_timer.start(kind);
        } else if !matches!(event, ObsEvent::BatchStart { .. }) {
            self.counts.inc(event.label());
        }
    }

    fn on_run_end(&mut self, _now: SimTime, _ctx: &ObsCtx<'_>) {
        self.kernel_timer.stop();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_per_reschedule_kind() {
        let ev = |kind| ObsEvent::Reschedule {
            job: JobId(0),
            kind,
            from_pool: PoolId(0),
            machine: None,
            from_phase: PhaseTag::Waiting,
            to: None,
            discarded: SimDuration::ZERO,
        };
        assert_eq!(
            ev(ReschedKind::RestartFromWait).label(),
            "restart_from_wait"
        );
        assert_eq!(ev(ReschedKind::Migrate).label(), "migrate");
        assert_ne!(
            ev(ReschedKind::RestartFromSuspend).label(),
            ev(ReschedKind::FailureEvict).label()
        );
    }

    #[test]
    fn trace_lines_are_valid_shape() {
        let line = TraceRecorder::render(
            SimTime::from_minutes(7),
            &ObsEvent::Dispatch {
                job: JobId(3),
                pool: PoolId(1),
                machine: MachineId(0),
                wall: SimDuration::from_minutes(50),
                from_queue: true,
            },
        )
        .unwrap();
        assert_eq!(
            line,
            r#"{"t":7,"ev":"dispatch","job":3,"pool":1,"machine":0,"wall":50,"from_queue":true}"#
        );
        // Markers are never rendered.
        assert!(
            TraceRecorder::render(SimTime::ZERO, &ObsEvent::Kernel { kind: "submit" }).is_none()
        );
        // Option fields render as JSON null.
        let resched = TraceRecorder::render(
            SimTime::ZERO,
            &ObsEvent::Reschedule {
                job: JobId(1),
                kind: ReschedKind::FailureEvict,
                from_pool: PoolId(2),
                machine: Some(MachineId(4)),
                from_phase: PhaseTag::Running,
                to: None,
                discarded: SimDuration::from_minutes(12),
            },
        )
        .unwrap();
        assert!(resched.contains(r#""to":null"#));
        assert!(resched.contains(r#""ev":"failure_evict""#));
    }

    #[test]
    fn stats_probe_report_lists_kinds() {
        let mut probe = StatsProbe::new();
        let ctx = ObsCtx {
            pools: &[],
            jobs: &[],
            shadows: &Default::default(),
        };
        probe.on_event(SimTime::ZERO, &ObsEvent::Kernel { kind: "submit" }, &ctx);
        probe.on_event(SimTime::ZERO, &ObsEvent::Submit { job: JobId(0) }, &ctx);
        probe.on_run_end(SimTime::ZERO, &ctx);
        assert_eq!(probe.counts()["submit"], 1);
        assert_eq!(probe.kernel_counts()["submit"], 1);
        assert!(probe.report().contains("submit"));
    }
}
