//! # netbatch-core
//!
//! The paper's contribution, as a library: dynamic rescheduling strategies
//! for a NetBatch-like distributed computing platform, the initial
//! (virtual-pool-manager) schedulers they compose with, the trace-driven
//! simulator they are evaluated on (our open equivalent of Intel's ASCA),
//! and the experiment runner computing the paper's metrics.
//!
//! Reproduces *"On the Feasibility of Dynamic Rescheduling on the Intel
//! Distributed Computing Platform"* (Zhang et al., Middleware 2010).
//!
//! ## Quick start
//!
//! ```
//! use netbatch_core::experiment::Experiment;
//! use netbatch_core::policy::{InitialKind, StrategyKind};
//! use netbatch_core::simulator::SimConfig;
//! use netbatch_workload::scenarios::ScenarioParams;
//!
//! // A 1%-scale version of the paper's normal-load week.
//! let params = ScenarioParams::normal_week(0.01);
//! let experiment = Experiment::new(
//!     params.build_site(),
//!     params.generate_trace(),
//!     SimConfig::new(InitialKind::RoundRobin, StrategyKind::ResSusUtil),
//! );
//! let result = experiment.run();
//! assert_eq!(result.counters.completed, result.total_jobs);
//! println!("suspend rate {:.2}%", result.suspend_rate * 100.0);
//! ```

#![warn(missing_docs)]

pub mod experiment;
pub mod faults;
pub mod observer;
pub mod policy;
pub mod provenance;
mod sharded;
pub mod simulator;
mod streaming;
pub mod telemetry;

pub use experiment::{render_results_table, Experiment, ExperimentResult, PAPER_TABLE_HEADER};
pub use faults::{FaultModel, FaultPlan, MachineOutage, ResiliencePolicy};
pub use observer::{
    AuditTrigger, AuditVerdict, InvariantChecker, ObsCtx, ObsEvent, PhaseTag, ReschedKind,
    SimObserver, StatsProbe, TraceRecorder,
};
pub use policy::{InitialKind, ReschedPolicy, StrategyKind};
pub use provenance::{Cause, KernelProfile, SpanRecorder};
pub use simulator::{Backend, RunCounters, SimConfig, SimOutput, Simulator};

/// Returns and resets the process-wide aggregate time worker threads of
/// the sharded backend spent executing batches, in nanoseconds. A
/// benchmarking aid for measuring the serial/parallel work split (see
/// the `perf_sharded` harness); meaningful only when sharded runs are
/// not concurrent.
#[doc(hidden)]
pub fn take_sharded_worker_busy_nanos() -> u64 {
    sharded::take_worker_busy_nanos()
}
pub use telemetry::{Registry, Telemetry, TelemetrySummary};
