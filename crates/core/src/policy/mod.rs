//! Scheduling policy layer: initial schedulers (virtual-pool-manager
//! dispatch order) and dynamic rescheduling strategies.

pub mod initial;
pub mod resched;

pub use initial::{InitialKind, InitialScheduler, RoundRobin, UtilizationBased};
pub use resched::{
    Decision, DupSus, MigrateSus, NoRes, PoolSelector, ResSus, ResSusWait, ResSusWaitSmart,
    ReschedPolicy, SmartWeights, StrategyKind, PAPER_WAIT_THRESHOLD,
};
