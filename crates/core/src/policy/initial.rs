//! Initial schedulers: how the virtual pool manager picks the pool a newly
//! submitted job is sent to (§3.2.1 of the paper).
//!
//! The scheduler produces a *preference order* over the job's candidate
//! pools; the VPM tries them in order and the job lands in the first pool
//! with any eligible machine (pools with none bounce it back).

use netbatch_cluster::ids::PoolId;
use netbatch_cluster::job::JobSpec;
use netbatch_cluster::snapshot::ClusterSnapshot;

/// A virtual-pool-manager scheduling discipline.
pub trait InitialScheduler: std::fmt::Debug + Send {
    /// Human-readable name (appears in reports).
    fn name(&self) -> &'static str;

    /// Orders the candidate pools for one job into `out` (cleared first),
    /// most preferred first.
    ///
    /// `candidates` is the job's affinity-filtered pool set; `view` is the
    /// current cluster snapshot. Writing into a caller-owned buffer keeps
    /// the per-job dispatch path allocation-free — the simulator hands in
    /// the same scratch `Vec` for every routing decision.
    fn order_into(
        &mut self,
        job: &JobSpec,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        out: &mut Vec<PoolId>,
    );

    /// Allocating convenience wrapper over
    /// [`InitialScheduler::order_into`].
    fn order(
        &mut self,
        job: &JobSpec,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
    ) -> Vec<PoolId> {
        let mut out = Vec::with_capacity(candidates.len());
        self.order_into(job, candidates, view, &mut out);
        out
    }

    /// Switches the scheduler into health-aware mode: pool ordering
    /// weights candidates by pool health (effective capacity). Default:
    /// no-op — round-robin is a pure cursor and stays health-blind (its
    /// shard classification depends on consulting no pool state).
    fn set_health_aware(&mut self, _aware: bool) {}

    /// Downcast hook for the sharded backend: round-robin is the one
    /// scheduler whose choice can be computed without the cluster view
    /// (it is a pure cursor rotation), which is what lets submissions be
    /// classified to a shard before any pool state is consulted.
    #[doc(hidden)]
    fn as_round_robin_mut(&mut self) -> Option<&mut RoundRobin> {
        None
    }
}

/// NetBatch's default: distribute jobs across candidate pools in sequential
/// order, advancing one position per job.
///
/// "The virtual pool managers also need not maintain any statistics of
/// their physical pools" — the whole state is one cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at the first pool.
    pub fn new() -> Self {
        RoundRobin::default()
    }

    /// The rotation start [`RoundRobin::order_into`] would use for a
    /// candidate list of `len` pools — without committing the cursor.
    pub(crate) fn peek_start(&self, len: usize) -> usize {
        self.cursor % len
    }

    /// Commits one rotation step, exactly as a successful `order_into`
    /// call would. The sharded backend pairs this with
    /// [`RoundRobin::peek_start`]: peek to classify the submission, then
    /// advance only once the dispatch is known to proceed.
    pub(crate) fn advance(&mut self) {
        self.cursor = self.cursor.wrapping_add(1);
    }
}

impl InitialScheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn order_into(
        &mut self,
        _job: &JobSpec,
        candidates: &[PoolId],
        _view: &ClusterSnapshot,
        out: &mut Vec<PoolId>,
    ) {
        out.clear();
        if candidates.is_empty() {
            return;
        }
        let start = self.cursor % candidates.len();
        self.cursor = self.cursor.wrapping_add(1);
        out.extend_from_slice(&candidates[start..]);
        out.extend_from_slice(&candidates[..start]);
    }

    fn as_round_robin_mut(&mut self) -> Option<&mut RoundRobin> {
        Some(self)
    }
}

/// The §3.2.2 alternative: send each job to the candidate pool with the
/// lowest current utilization (ties to the lowest pool id), then the rest
/// in increasing-utilization order.
///
/// The paper notes this "requires the virtual pool manager to know the
/// current situation in every physical pool at any time, which can be
/// impractical" — the information-staleness ablation quantifies that cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UtilizationBased {
    health_aware: bool,
}

impl UtilizationBased {
    /// Creates a utilization-based scheduler.
    pub fn new() -> Self {
        UtilizationBased::default()
    }
}

impl InitialScheduler for UtilizationBased {
    fn name(&self) -> &'static str {
        "utilization-based"
    }

    fn order_into(
        &mut self,
        _job: &JobSpec,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        out: &mut Vec<PoolId>,
    ) {
        out.clear();
        out.extend_from_slice(candidates);
        let aware = self.health_aware;
        let util = |id: &PoolId| {
            view.pools.get(id.as_usize()).map_or(0.0, |p| {
                if aware {
                    p.effective_utilization()
                } else {
                    p.utilization()
                }
            })
        };
        out.sort_by(|a, b| {
            util(a)
                .partial_cmp(&util(b))
                .expect("utilization is never NaN")
                .then(a.cmp(b))
        });
    }

    fn set_health_aware(&mut self, aware: bool) {
        self.health_aware = aware;
    }
}

/// Which initial scheduler to instantiate — the serializable experiment
/// configuration handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialKind {
    /// NetBatch's default round-robin.
    #[default]
    RoundRobin,
    /// Lowest-utilization-first.
    UtilizationBased,
}

impl InitialKind {
    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn InitialScheduler> {
        match self {
            InitialKind::RoundRobin => Box::new(RoundRobin::new()),
            InitialKind::UtilizationBased => Box::new(UtilizationBased::new()),
        }
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            InitialKind::RoundRobin => "round-robin",
            InitialKind::UtilizationBased => "utilization-based",
        }
    }
}

impl std::fmt::Display for InitialKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbatch_cluster::snapshot::PoolSnapshot;
    use netbatch_sim_engine::time::{SimDuration, SimTime};

    fn job() -> JobSpec {
        JobSpec::new(1.into(), SimTime::ZERO, SimDuration::from_minutes(10))
    }

    fn view(utils: &[(u32, u32)]) -> ClusterSnapshot {
        ClusterSnapshot {
            pools: utils
                .iter()
                .enumerate()
                .map(|(i, &(total, busy))| PoolSnapshot {
                    id: PoolId(i as u16),
                    total_cores: total,
                    nominal_cores: total,
                    busy_cores: busy,
                    waiting: 0,
                    suspended: 0,
                    running: 0,
                    machines: 0,
                    down_machines: 0,
                    draining_machines: 0,
                    effective_cores_milli: u64::from(total) * 1000,
                    lowest_running_priority: None,
                })
                .collect(),
        }
    }

    fn pools(n: u16) -> Vec<PoolId> {
        (0..n).map(PoolId).collect()
    }

    #[test]
    fn round_robin_rotates_across_jobs() {
        let mut rr = RoundRobin::new();
        let v = view(&[(1, 0); 3]);
        let c = pools(3);
        assert_eq!(rr.order(&job(), &c, &v)[0], PoolId(0));
        assert_eq!(rr.order(&job(), &c, &v)[0], PoolId(1));
        assert_eq!(rr.order(&job(), &c, &v)[0], PoolId(2));
        assert_eq!(rr.order(&job(), &c, &v)[0], PoolId(0));
    }

    #[test]
    fn round_robin_order_is_a_rotation() {
        let mut rr = RoundRobin::new();
        let v = view(&[(1, 0); 4]);
        rr.order(&job(), &pools(4), &v);
        let second = rr.order(&job(), &pools(4), &v);
        assert_eq!(second, vec![PoolId(1), PoolId(2), PoolId(3), PoolId(0)]);
    }

    #[test]
    fn round_robin_handles_empty_candidates() {
        let mut rr = RoundRobin::new();
        assert!(rr.order(&job(), &[], &view(&[])).is_empty());
    }

    #[test]
    fn utilization_based_prefers_least_loaded() {
        let mut ub = UtilizationBased::new();
        let v = view(&[(10, 9), (10, 1), (10, 5)]);
        let order = ub.order(&job(), &pools(3), &v);
        assert_eq!(order, vec![PoolId(1), PoolId(2), PoolId(0)]);
    }

    #[test]
    fn utilization_based_ties_break_by_id() {
        let mut ub = UtilizationBased::new();
        let v = view(&[(10, 5), (10, 5), (10, 5)]);
        let order = ub.order(&job(), &pools(3), &v);
        assert_eq!(order, pools(3));
    }

    #[test]
    fn utilization_based_respects_candidate_filter() {
        let mut ub = UtilizationBased::new();
        let v = view(&[(10, 0), (10, 9), (10, 5)]);
        let order = ub.order(&job(), &[PoolId(1), PoolId(2)], &v);
        assert_eq!(order, vec![PoolId(2), PoolId(1)]);
    }

    #[test]
    fn kind_builds_matching_scheduler() {
        assert_eq!(InitialKind::RoundRobin.build().name(), "round-robin");
        assert_eq!(
            InitialKind::UtilizationBased.build().name(),
            "utilization-based"
        );
        assert_eq!(InitialKind::RoundRobin.to_string(), "round-robin");
    }
}
