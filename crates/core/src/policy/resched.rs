//! Dynamic rescheduling strategies — the paper's §3 contribution.
//!
//! A [`ReschedPolicy`] is consulted at two hook points:
//!
//! * **on suspension** — a running job was just preempted. The policy may
//!   restart it (from scratch) in an alternate pool, or leave it suspended
//!   in place to resume later (`NoRes`'s only behaviour).
//! * **on wait timeout** — a job has sat in a pool's wait queue past the
//!   policy's threshold. The policy may pull it out and resubmit it to an
//!   alternate pool; the timer then re-arms, giving the job "multiple
//!   second chances" (§3.3).
//!
//! The five paper strategies (`NoRes`, `ResSusUtil`, `ResSusRand`,
//! `ResSusWaitUtil`, `ResSusWaitRand`) plus the queue-length extension are
//! all compositions of two choices: *which jobs* to reschedule (suspended
//! only, or suspended + waiting) and *how to pick the alternate pool*
//! (lowest utilization, uniformly random, shortest queue).

use netbatch_cluster::ids::PoolId;
use netbatch_cluster::job::JobSpec;
use netbatch_cluster::snapshot::ClusterSnapshot;
use netbatch_sim_engine::rng::DetRng;
use netbatch_sim_engine::time::SimDuration;

/// How an alternate pool is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolSelector {
    /// The candidate pool with the lowest current utilization. If no
    /// candidate is *strictly* less utilized than the current pool, the job
    /// stays — "ensuring that rescheduling will not negatively impact
    /// system performance" (§3.2.1, high-load discussion).
    LowestUtilization,
    /// A uniformly random candidate other than the current pool.
    Random,
    /// The candidate pool with the shortest wait queue (extension policy:
    /// the signal the paper's ResSusRand analysis suggests matters most).
    ShortestQueue,
}

impl PoolSelector {
    /// Picks the alternate pool, or `None` to keep the job where it is.
    pub fn select(
        self,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        rng: &mut DetRng,
    ) -> Option<PoolId> {
        self.select_aware(current, candidates, view, rng, false)
    }

    /// [`PoolSelector::select`] with an optional health-aware mode: when
    /// `health_aware` is set, candidates are weighted by pool health —
    /// utilization comparisons use the health-weighted *effective*
    /// capacity (a half-drained pool ranks as loaded even while its
    /// residents finish) and the random selector draws candidates in
    /// proportion to their health instead of uniformly.
    pub fn select_aware(
        self,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        rng: &mut DetRng,
        health_aware: bool,
    ) -> Option<PoolId> {
        match self {
            PoolSelector::LowestUtilization => {
                let (target, cur_util, tgt_util) = if health_aware {
                    let target = view.least_effectively_utilized(candidates)?;
                    (
                        target,
                        view.pools.get(current.as_usize())?.effective_utilization(),
                        view.pools.get(target.as_usize())?.effective_utilization(),
                    )
                } else {
                    let target = view.least_utilized(candidates)?;
                    (
                        target,
                        view.pools.get(current.as_usize())?.utilization(),
                        view.pools.get(target.as_usize())?.utilization(),
                    )
                };
                if target == current {
                    return None;
                }
                (tgt_util < cur_util).then_some(target)
            }
            PoolSelector::Random if health_aware => {
                // Health-weighted draw: each non-current candidate gets a
                // per-mille weight from its pool health (floored at 1 so a
                // fully drained pool stays selectable rather than turning
                // the draw into a division by zero).
                let weight = |p: PoolId| {
                    view.pools
                        .get(p.as_usize())
                        .map_or(1u64, |s| ((s.health() * 1000.0) as u64).max(1))
                };
                let others = candidates.iter().copied().filter(|&p| p != current);
                let total: u64 = others.clone().map(weight).sum();
                if total == 0 {
                    return None;
                }
                let mut draw = rng.next_below(total);
                others.clone().find(|&p| {
                    let w = weight(p);
                    if draw < w {
                        true
                    } else {
                        draw -= w;
                        false
                    }
                })
            }
            PoolSelector::Random => {
                // Count-then-index instead of collecting the non-current
                // candidates into a per-pick Vec: this was the ResSusRand
                // hot-path outlier in BENCH_dispatch.json (one allocation
                // per random pick). One `next_below(n)` draw over the same
                // n as before, so the RNG stream and the chosen pool are
                // byte-identical to the collecting implementation.
                let n = candidates.iter().filter(|&&p| p != current).count();
                if n == 0 {
                    None
                } else {
                    let k = rng.next_below(n as u64) as usize;
                    candidates.iter().copied().filter(|&p| p != current).nth(k)
                }
            }
            PoolSelector::ShortestQueue => {
                let target = view.shortest_queue(candidates)?;
                if target == current {
                    return None;
                }
                let cur_q = view.pools.get(current.as_usize())?.waiting;
                let tgt = view.pools.get(target.as_usize())?;
                let headroom = if health_aware {
                    tgt.effective_utilization() < 1.0
                } else {
                    tgt.utilization() < 1.0
                };
                (tgt.waiting < cur_q || headroom).then_some(target)
            }
        }
    }
}

/// The ranking inputs a policy saw for `pool` at decision time, as
/// recorded in [`PolicyAudit`](crate::observer::ObsEvent::PolicyAudit):
/// utilization in thousandths and wait-queue length. `health_aware` picks
/// the same utilization flavour the selectors compare (effective capacity
/// vs raw); an infinite effective utilization (busy cores on a fully
/// drained pool) saturates to `u32::MAX`.
pub fn audit_inputs(view: &ClusterSnapshot, pool: PoolId, health_aware: bool) -> (u32, u32) {
    let Some(snap) = view.pools.get(pool.as_usize()) else {
        return (0, 0);
    };
    let util = if health_aware {
        snap.effective_utilization()
    } else {
        snap.utilization()
    };
    let milli = if util.is_finite() {
        (util * 1000.0).round().min(u32::MAX as f64) as u32
    } else {
        u32::MAX
    };
    (milli, snap.waiting.min(u32::MAX as usize) as u32)
}

/// What to do with a freshly suspended job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Leave it suspended in place to resume later (`NoRes` behaviour).
    Stay,
    /// Abandon its progress and restart it from scratch at the pool —
    /// the paper's rescheduling strategies.
    Restart(PoolId),
    /// Move it to the pool *keeping its progress*, paying a migration
    /// delay and a virtualization slowdown (the Condor/VMware alternative
    /// §2.3 discusses; extension).
    Migrate(PoolId),
    /// Leave it suspended AND launch a duplicate at the pool; first copy
    /// to finish wins (the paper's §5 future-work "job duplication";
    /// extension).
    Duplicate(PoolId),
}

/// A dynamic rescheduling strategy.
pub trait ReschedPolicy: std::fmt::Debug + Send {
    /// Name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Called right after `job` is suspended in `current`.
    fn on_suspended(
        &mut self,
        job: &JobSpec,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        rng: &mut DetRng,
    ) -> Decision;

    /// The waiting-time threshold after which queued jobs are considered
    /// for rescheduling; `None` disables wait rescheduling entirely.
    fn wait_threshold(&self) -> Option<SimDuration> {
        None
    }

    /// Called when `job` has waited in `current`'s queue past the
    /// threshold. Returning `Some(pool)` dequeues and resubmits it there.
    fn on_waiting(
        &mut self,
        _job: &JobSpec,
        _current: PoolId,
        _candidates: &[PoolId],
        _view: &ClusterSnapshot,
        _rng: &mut DetRng,
    ) -> Option<PoolId> {
        None
    }

    /// Switches the policy into health-aware mode: alternate-pool
    /// selection weights candidates by pool health (effective capacity)
    /// instead of raw utilization. Default: no-op — `NoRes` never picks
    /// targets, and policies that ignore health simply stay health-blind.
    fn set_health_aware(&mut self, _aware: bool) {}

    /// Whether this policy is the `NoRes` baseline: every suspension
    /// decision is `Stay`, no RNG is drawn, and the cluster view is never
    /// consulted. The sharded backend uses this to prove pool-local
    /// events have no cross-pool effects; any policy that cannot make
    /// that promise must leave the default `false`.
    #[doc(hidden)]
    fn is_no_res(&self) -> bool {
        false
    }
}

/// The baseline: never reschedule; suspended jobs wait in place to resume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoRes;

impl ReschedPolicy for NoRes {
    fn name(&self) -> &'static str {
        "NoRes"
    }

    fn on_suspended(
        &mut self,
        _job: &JobSpec,
        _current: PoolId,
        _candidates: &[PoolId],
        _view: &ClusterSnapshot,
        _rng: &mut DetRng,
    ) -> Decision {
        Decision::Stay
    }

    fn is_no_res(&self) -> bool {
        true
    }
}

/// Reschedules suspended jobs using a pool selector (§3.2:
/// `ResSusUtil` / `ResSusRand`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResSus {
    selector: PoolSelector,
    health_aware: bool,
}

impl ResSus {
    /// `ResSusUtil`: restart suspended jobs at the least-utilized pool.
    pub fn util() -> Self {
        ResSus {
            selector: PoolSelector::LowestUtilization,
            health_aware: false,
        }
    }

    /// `ResSusRand`: restart suspended jobs at a random alternate pool.
    pub fn random() -> Self {
        ResSus {
            selector: PoolSelector::Random,
            health_aware: false,
        }
    }

    /// Extension: restart suspended jobs at the shortest-queue pool.
    pub fn queue() -> Self {
        ResSus {
            selector: PoolSelector::ShortestQueue,
            health_aware: false,
        }
    }
}

impl ReschedPolicy for ResSus {
    fn name(&self) -> &'static str {
        match self.selector {
            PoolSelector::LowestUtilization => "ResSusUtil",
            PoolSelector::Random => "ResSusRand",
            PoolSelector::ShortestQueue => "ResSusQueue",
        }
    }

    fn on_suspended(
        &mut self,
        _job: &JobSpec,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        rng: &mut DetRng,
    ) -> Decision {
        match self
            .selector
            .select_aware(current, candidates, view, rng, self.health_aware)
        {
            Some(pool) => Decision::Restart(pool),
            None => Decision::Stay,
        }
    }

    fn set_health_aware(&mut self, aware: bool) {
        self.health_aware = aware;
    }
}

/// Reschedules both suspended jobs and jobs stuck in wait queues past a
/// threshold (§3.3: `ResSusWaitUtil` / `ResSusWaitRand`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResSusWait {
    selector: PoolSelector,
    threshold: SimDuration,
    health_aware: bool,
}

/// The paper's wait threshold: 30 minutes, "about twice the expected
/// average waiting time in the original system".
pub const PAPER_WAIT_THRESHOLD: SimDuration = SimDuration::from_minutes(30);

impl ResSusWait {
    /// `ResSusWaitUtil` with the paper's 30-minute threshold.
    pub fn util() -> Self {
        ResSusWait {
            selector: PoolSelector::LowestUtilization,
            threshold: PAPER_WAIT_THRESHOLD,
            health_aware: false,
        }
    }

    /// `ResSusWaitRand` with the paper's 30-minute threshold.
    pub fn random() -> Self {
        ResSusWait {
            selector: PoolSelector::Random,
            threshold: PAPER_WAIT_THRESHOLD,
            health_aware: false,
        }
    }

    /// Overrides the waiting threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_threshold(mut self, threshold: SimDuration) -> Self {
        assert!(!threshold.is_zero(), "wait threshold must be positive");
        self.threshold = threshold;
        self
    }
}

impl ReschedPolicy for ResSusWait {
    fn name(&self) -> &'static str {
        match self.selector {
            PoolSelector::LowestUtilization => "ResSusWaitUtil",
            PoolSelector::Random => "ResSusWaitRand",
            PoolSelector::ShortestQueue => "ResSusWaitQueue",
        }
    }

    fn on_suspended(
        &mut self,
        _job: &JobSpec,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        rng: &mut DetRng,
    ) -> Decision {
        match self
            .selector
            .select_aware(current, candidates, view, rng, self.health_aware)
        {
            Some(pool) => Decision::Restart(pool),
            None => Decision::Stay,
        }
    }

    fn wait_threshold(&self) -> Option<SimDuration> {
        Some(self.threshold)
    }

    fn on_waiting(
        &mut self,
        _job: &JobSpec,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        rng: &mut DetRng,
    ) -> Option<PoolId> {
        self.selector
            .select_aware(current, candidates, view, rng, self.health_aware)
    }

    fn set_health_aware(&mut self, aware: bool) {
        self.health_aware = aware;
    }
}

/// Migration-based rescheduling (extension): move suspended jobs to the
/// least-utilized pool *keeping their progress*, at the cost of a transfer
/// delay and a virtualization slowdown. This is the checkpoint/VM
/// alternative the paper's §2.3 weighs against restarting ("running chip
/// simulation workloads on virtualized hosts often lead to performance
/// overhead between 10% to 20%").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateSus {
    selector: PoolSelector,
    health_aware: bool,
}

impl MigrateSus {
    /// Migrate suspended jobs to the least-utilized pool.
    pub fn util() -> Self {
        MigrateSus {
            selector: PoolSelector::LowestUtilization,
            health_aware: false,
        }
    }
}

impl ReschedPolicy for MigrateSus {
    fn name(&self) -> &'static str {
        "MigrateSusUtil"
    }

    fn on_suspended(
        &mut self,
        _job: &JobSpec,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        rng: &mut DetRng,
    ) -> Decision {
        match self
            .selector
            .select_aware(current, candidates, view, rng, self.health_aware)
        {
            Some(pool) => Decision::Migrate(pool),
            None => Decision::Stay,
        }
    }

    fn set_health_aware(&mut self, aware: bool) {
        self.health_aware = aware;
    }
}

/// Duplication-based rescheduling (extension; the paper's §5 future work
/// on "job duplication techniques" and the redundant-execution related
/// work): leave the suspended job in place *and* launch a clone at the
/// least-utilized pool; the first copy to finish wins and the other is
/// cancelled. Never loses progress, but burns redundant capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DupSus {
    selector: PoolSelector,
    health_aware: bool,
}

impl DupSus {
    /// Duplicate suspended jobs into the least-utilized pool.
    pub fn util() -> Self {
        DupSus {
            selector: PoolSelector::LowestUtilization,
            health_aware: false,
        }
    }
}

impl ReschedPolicy for DupSus {
    fn name(&self) -> &'static str {
        "DupSusUtil"
    }

    fn on_suspended(
        &mut self,
        _job: &JobSpec,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        rng: &mut DetRng,
    ) -> Decision {
        match self
            .selector
            .select_aware(current, candidates, view, rng, self.health_aware)
        {
            Some(pool) => Decision::Duplicate(pool),
            None => Decision::Stay,
        }
    }

    fn set_health_aware(&mut self, aware: bool) {
        self.health_aware = aware;
    }
}

/// Multi-metric pool scoring (extension; the paper's §5 future work:
/// "the use of multiple metrics (e.g., utilization, queue lengths,
/// prediction of job completion times within a pool) in combination for
/// making rescheduling decisions").
///
/// Each candidate pool gets a score (lower is better):
///
/// ```text
/// score = w_util  × utilization
///       + w_queue × (waiting jobs / total cores)
///       + w_wait  × (waiting jobs / free cores)   // crude wait predictor
/// ```
///
/// The third term approximates the expected queueing delay: how many
/// waiting jobs compete for each currently free core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartWeights {
    /// Weight of current utilization.
    pub w_util: f64,
    /// Weight of queue length (normalized by pool size).
    pub w_queue: f64,
    /// Weight of the expected-wait predictor.
    pub w_wait: f64,
}

impl Default for SmartWeights {
    fn default() -> Self {
        SmartWeights {
            w_util: 1.0,
            w_queue: 2.0,
            w_wait: 1.0,
        }
    }
}

impl SmartWeights {
    /// Scores one pool; lower is better.
    pub fn score(&self, pool: &netbatch_cluster::snapshot::PoolSnapshot) -> f64 {
        let total = f64::from(pool.total_cores.max(1));
        let free = f64::from((pool.total_cores - pool.busy_cores).max(1));
        self.w_util * pool.utilization()
            + self.w_queue * (pool.waiting as f64 / total)
            + self.w_wait * (pool.waiting as f64 / free)
    }

    /// Health-aware variant of [`SmartWeights::score`]: the same three
    /// terms over the health-weighted *effective* capacity, so a draining
    /// or flaky pool scores as loaded. The utilization term is capped to
    /// keep zero-weight products finite (`0 × ∞` is NaN).
    pub fn score_aware(
        &self,
        pool: &netbatch_cluster::snapshot::PoolSnapshot,
        health_aware: bool,
    ) -> f64 {
        if !health_aware {
            return self.score(pool);
        }
        let eff = pool.effective_cores_milli as f64 / 1000.0;
        let total = eff.max(1.0);
        let free = (eff - f64::from(pool.busy_cores)).max(1.0);
        self.w_util * pool.effective_utilization().min(1e6)
            + self.w_queue * (pool.waiting as f64 / total)
            + self.w_wait * (pool.waiting as f64 / free)
    }

    /// The best-scoring candidate, or `None` if the current pool already
    /// scores no worse than every alternative.
    pub fn select(
        &self,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
    ) -> Option<PoolId> {
        self.select_aware(current, candidates, view, false)
    }

    /// [`SmartWeights::select`] scoring with [`SmartWeights::score_aware`].
    pub fn select_aware(
        &self,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        health_aware: bool,
    ) -> Option<PoolId> {
        let best = candidates
            .iter()
            .filter_map(|id| view.pools.get(id.as_usize()))
            .min_by(|a, b| {
                self.score_aware(a, health_aware)
                    .partial_cmp(&self.score_aware(b, health_aware))
                    .expect("scores are finite")
                    .then(a.id.cmp(&b.id))
            })?;
        if best.id == current {
            return None;
        }
        let cur = view.pools.get(current.as_usize())?;
        (self.score_aware(best, health_aware) < self.score_aware(cur, health_aware))
            .then_some(best.id)
    }
}

/// Smart (multi-metric) rescheduling of suspended and waiting jobs —
/// the future-work composite policy, comparable against
/// `ResSusWaitUtil`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResSusWaitSmart {
    weights: SmartWeights,
    threshold: SimDuration,
    health_aware: bool,
}

impl ResSusWaitSmart {
    /// Default weights, paper threshold (30 minutes).
    pub fn new() -> Self {
        ResSusWaitSmart {
            weights: SmartWeights::default(),
            threshold: PAPER_WAIT_THRESHOLD,
            health_aware: false,
        }
    }

    /// Overrides the scoring weights.
    pub fn with_weights(mut self, weights: SmartWeights) -> Self {
        self.weights = weights;
        self
    }
}

impl Default for ResSusWaitSmart {
    fn default() -> Self {
        ResSusWaitSmart::new()
    }
}

impl ReschedPolicy for ResSusWaitSmart {
    fn name(&self) -> &'static str {
        "ResSusWaitSmart"
    }

    fn on_suspended(
        &mut self,
        _job: &JobSpec,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        _rng: &mut DetRng,
    ) -> Decision {
        match self
            .weights
            .select_aware(current, candidates, view, self.health_aware)
        {
            Some(pool) => Decision::Restart(pool),
            None => Decision::Stay,
        }
    }

    fn wait_threshold(&self) -> Option<SimDuration> {
        Some(self.threshold)
    }

    fn on_waiting(
        &mut self,
        _job: &JobSpec,
        current: PoolId,
        candidates: &[PoolId],
        view: &ClusterSnapshot,
        _rng: &mut DetRng,
    ) -> Option<PoolId> {
        self.weights
            .select_aware(current, candidates, view, self.health_aware)
    }

    fn set_health_aware(&mut self, aware: bool) {
        self.health_aware = aware;
    }
}

/// Which rescheduling strategy to instantiate — the serializable experiment
/// configuration handle covering the paper's five strategies plus
/// extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// Baseline: no rescheduling.
    #[default]
    NoRes,
    /// Restart suspended jobs at the least-utilized pool.
    ResSusUtil,
    /// Restart suspended jobs at a random pool.
    ResSusRand,
    /// Also reschedule waiting jobs (lowest utilization).
    ResSusWaitUtil,
    /// Also reschedule waiting jobs (random pool).
    ResSusWaitRand,
    /// Extension: restart suspended jobs at the shortest-queue pool.
    ResSusQueue,
    /// Extension: *migrate* suspended jobs (progress kept, overhead paid).
    MigrateSusUtil,
    /// Extension: *duplicate* suspended jobs (first finisher wins).
    DupSusUtil,
    /// Extension: multi-metric (utilization + queue + predicted wait)
    /// rescheduling of suspended and waiting jobs.
    ResSusWaitSmart,
}

impl StrategyKind {
    /// All strategies evaluated in the paper, in table order.
    pub const PAPER_SUSPEND_ONLY: [StrategyKind; 3] = [
        StrategyKind::NoRes,
        StrategyKind::ResSusUtil,
        StrategyKind::ResSusRand,
    ];

    /// The §3.3 combined strategies, in table order.
    pub const PAPER_WITH_WAIT: [StrategyKind; 3] = [
        StrategyKind::NoRes,
        StrategyKind::ResSusWaitUtil,
        StrategyKind::ResSusWaitRand,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn ReschedPolicy> {
        match self {
            StrategyKind::NoRes => Box::new(NoRes),
            StrategyKind::ResSusUtil => Box::new(ResSus::util()),
            StrategyKind::ResSusRand => Box::new(ResSus::random()),
            StrategyKind::ResSusWaitUtil => Box::new(ResSusWait::util()),
            StrategyKind::ResSusWaitRand => Box::new(ResSusWait::random()),
            StrategyKind::ResSusQueue => Box::new(ResSus::queue()),
            StrategyKind::MigrateSusUtil => Box::new(MigrateSus::util()),
            StrategyKind::DupSusUtil => Box::new(DupSus::util()),
            StrategyKind::ResSusWaitSmart => Box::new(ResSusWaitSmart::new()),
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::NoRes => "NoRes",
            StrategyKind::ResSusUtil => "ResSusUtil",
            StrategyKind::ResSusRand => "ResSusRand",
            StrategyKind::ResSusWaitUtil => "ResSusWaitUtil",
            StrategyKind::ResSusWaitRand => "ResSusWaitRand",
            StrategyKind::ResSusQueue => "ResSusQueue",
            StrategyKind::MigrateSusUtil => "MigrateSusUtil",
            StrategyKind::DupSusUtil => "DupSusUtil",
            StrategyKind::ResSusWaitSmart => "ResSusWaitSmart",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbatch_cluster::snapshot::PoolSnapshot;
    use netbatch_sim_engine::time::SimTime;

    fn job() -> JobSpec {
        JobSpec::new(1.into(), SimTime::ZERO, SimDuration::from_minutes(10))
    }

    fn view(stats: &[(u32, u32, usize)]) -> ClusterSnapshot {
        ClusterSnapshot {
            pools: stats
                .iter()
                .enumerate()
                .map(|(i, &(total, busy, waiting))| PoolSnapshot {
                    id: PoolId(i as u16),
                    total_cores: total,
                    nominal_cores: total,
                    busy_cores: busy,
                    waiting,
                    suspended: 0,
                    running: 0,
                    machines: 0,
                    down_machines: 0,
                    draining_machines: 0,
                    effective_cores_milli: u64::from(total) * 1000,
                    lowest_running_priority: None,
                })
                .collect(),
        }
    }

    fn pools(n: u16) -> Vec<PoolId> {
        (0..n).map(PoolId).collect()
    }

    #[test]
    fn nores_never_moves() {
        let mut p = NoRes;
        let v = view(&[(10, 10, 0), (10, 0, 0)]);
        let mut rng = DetRng::from_seed_u64(0);
        assert_eq!(
            p.on_suspended(&job(), PoolId(0), &pools(2), &v, &mut rng),
            Decision::Stay
        );
        assert_eq!(p.wait_threshold(), None);
        assert_eq!(p.name(), "NoRes");
    }

    #[test]
    fn res_sus_util_moves_to_least_utilized() {
        let mut p = ResSus::util();
        let v = view(&[(10, 9, 0), (10, 2, 0), (10, 5, 0)]);
        let mut rng = DetRng::from_seed_u64(0);
        assert_eq!(
            p.on_suspended(&job(), PoolId(0), &pools(3), &v, &mut rng),
            Decision::Restart(PoolId(1))
        );
    }

    #[test]
    fn res_sus_util_stays_when_current_is_least_utilized() {
        // "If all alternate pools are even more utilized than the current
        // pool, ResSusUtil will simply retain the suspended job."
        let mut p = ResSus::util();
        let v = view(&[(10, 2, 0), (10, 5, 0), (10, 9, 0)]);
        let mut rng = DetRng::from_seed_u64(0);
        assert_eq!(
            p.on_suspended(&job(), PoolId(0), &pools(3), &v, &mut rng),
            Decision::Stay
        );
        // Ties also stay (no strict improvement).
        let v = view(&[(10, 5, 0), (10, 5, 0)]);
        assert_eq!(
            p.on_suspended(&job(), PoolId(0), &pools(2), &v, &mut rng),
            Decision::Stay
        );
    }

    #[test]
    fn res_sus_rand_picks_among_other_candidates() {
        let mut p = ResSus::random();
        let v = view(&[(10, 0, 0); 4]);
        let mut rng = DetRng::from_seed_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let Decision::Restart(t) = p.on_suspended(&job(), PoolId(2), &pools(4), &v, &mut rng)
            else {
                panic!("alternates exist")
            };
            assert_ne!(t, PoolId(2), "random never picks the current pool");
            seen.insert(t);
        }
        assert_eq!(seen.len(), 3, "all alternates eventually chosen");
    }

    #[test]
    fn res_sus_rand_stays_with_single_candidate() {
        let mut p = ResSus::random();
        let v = view(&[(10, 0, 0)]);
        let mut rng = DetRng::from_seed_u64(1);
        assert_eq!(
            p.on_suspended(&job(), PoolId(0), &[PoolId(0)], &v, &mut rng),
            Decision::Stay
        );
    }

    #[test]
    fn wait_variants_expose_threshold_and_wait_hook() {
        let mut p = ResSusWait::util();
        assert_eq!(p.wait_threshold(), Some(SimDuration::from_minutes(30)));
        let v = view(&[(10, 9, 5), (10, 1, 0)]);
        let mut rng = DetRng::from_seed_u64(2);
        assert_eq!(
            p.on_waiting(&job(), PoolId(0), &pools(2), &v, &mut rng),
            Some(PoolId(1))
        );
        let custom = ResSusWait::random().with_threshold(SimDuration::from_minutes(5));
        assert_eq!(custom.wait_threshold(), Some(SimDuration::from_minutes(5)));
    }

    #[test]
    fn shortest_queue_extension_prefers_short_queues() {
        let mut p = ResSus::queue();
        let v = view(&[(10, 5, 9), (10, 9, 1), (10, 9, 4)]);
        let mut rng = DetRng::from_seed_u64(3);
        assert_eq!(
            p.on_suspended(&job(), PoolId(0), &pools(3), &v, &mut rng),
            Decision::Restart(PoolId(1))
        );
        assert_eq!(p.name(), "ResSusQueue");
    }

    #[test]
    fn strategy_kind_builds_all_variants() {
        for kind in [
            StrategyKind::NoRes,
            StrategyKind::ResSusUtil,
            StrategyKind::ResSusRand,
            StrategyKind::ResSusWaitUtil,
            StrategyKind::ResSusWaitRand,
            StrategyKind::ResSusQueue,
            StrategyKind::MigrateSusUtil,
            StrategyKind::DupSusUtil,
            StrategyKind::ResSusWaitSmart,
        ] {
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(StrategyKind::PAPER_SUSPEND_ONLY.len(), 3);
        assert_eq!(StrategyKind::PAPER_WITH_WAIT.len(), 3);
    }

    #[test]
    fn migrate_and_dup_policies_issue_their_decisions() {
        let v = view(&[(10, 9, 0), (10, 1, 0)]);
        let mut rng = DetRng::from_seed_u64(4);
        let mut m = MigrateSus::util();
        assert_eq!(
            m.on_suspended(&job(), PoolId(0), &pools(2), &v, &mut rng),
            Decision::Migrate(PoolId(1))
        );
        let mut d = DupSus::util();
        assert_eq!(
            d.on_suspended(&job(), PoolId(0), &pools(2), &v, &mut rng),
            Decision::Duplicate(PoolId(1))
        );
        // Both stay when no better pool exists.
        let flat = view(&[(10, 1, 0), (10, 9, 0)]);
        assert_eq!(
            m.on_suspended(&job(), PoolId(0), &pools(2), &flat, &mut rng),
            Decision::Stay
        );
        assert_eq!(
            d.on_suspended(&job(), PoolId(0), &pools(2), &flat, &mut rng),
            Decision::Stay
        );
    }

    #[test]
    fn smart_selector_penalizes_queues_and_load() {
        let w = SmartWeights::default();
        // Pool 1: empty. Pool 0: busy. Pool 2: idle cores but a deep queue.
        let v = view(&[(10, 9, 0), (10, 1, 0), (10, 1, 20)]);
        assert_eq!(w.select(PoolId(0), &pools(3), &v), Some(PoolId(1)));
        // From the empty pool, nothing is better: stay.
        assert_eq!(w.select(PoolId(1), &pools(3), &v), None);
        // The deep-queued pool scores worse than the busy one.
        let p0 = &v.pools[0];
        let p2 = &v.pools[2];
        assert!(w.score(p2) > w.score(p0));
    }

    #[test]
    fn smart_policy_restarts_and_reschedules_waiting() {
        let mut p = ResSusWaitSmart::new();
        let v = view(&[(10, 9, 4), (10, 1, 0)]);
        let mut rng = DetRng::from_seed_u64(0);
        assert_eq!(
            p.on_suspended(&job(), PoolId(0), &pools(2), &v, &mut rng),
            Decision::Restart(PoolId(1))
        );
        assert_eq!(
            p.on_waiting(&job(), PoolId(0), &pools(2), &v, &mut rng),
            Some(PoolId(1))
        );
        assert_eq!(p.wait_threshold(), Some(PAPER_WAIT_THRESHOLD));
    }

    #[test]
    fn default_strategies_match_nores_baseline() {
        assert_eq!(StrategyKind::default(), StrategyKind::NoRes);
        assert_eq!(StrategyKind::NoRes.to_string(), "NoRes");
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        ResSusWait::util().with_threshold(SimDuration::ZERO);
    }
}
