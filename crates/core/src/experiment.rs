//! Experiment runner and the paper's evaluation metrics (§3.1).
//!
//! An [`Experiment`] bundles a site, a trace and a simulator configuration;
//! running it produces an [`ExperimentResult`] carrying exactly the columns
//! of the paper's Tables 1–5 (Suspend rate, AvgCT over suspended/all jobs,
//! AvgST, AvgWCT) plus the series behind Figures 2–4.

use netbatch_metrics::cdf::Cdf;
use netbatch_metrics::summary::OnlineStats;
use netbatch_metrics::table::{fmt_minutes, fmt_percent, Table};
use netbatch_metrics::timeseries::TimeSeries;
use netbatch_metrics::waste::WasteBreakdown;
use netbatch_sim_engine::time::SimTime;
use netbatch_workload::scenarios::SiteSpec;
use netbatch_workload::trace::Trace;

use crate::policy::initial::InitialKind;
use crate::policy::resched::StrategyKind;
use crate::simulator::{RunCounters, SimConfig, SimOutput, Simulator};

/// A complete experiment description.
#[derive(Debug)]
pub struct Experiment {
    /// The site topology.
    pub site: SiteSpec,
    /// The submitted jobs.
    pub trace: Trace,
    /// Simulator/policy configuration.
    pub config: SimConfig,
}

impl Experiment {
    /// Creates an experiment.
    pub fn new(site: SiteSpec, trace: Trace, config: SimConfig) -> Self {
        Experiment {
            site,
            trace,
            config,
        }
    }

    /// Runs the trace to completion and computes the paper's metrics.
    pub fn run(&self) -> ExperimentResult {
        let sim = Simulator::new(&self.site, self.trace.to_specs(), self.config.clone());
        let output = sim.run_to_completion();
        ExperimentResult::from_output(self.config.initial, self.config.strategy, output)
    }
}

/// The paper's metrics for one (initial scheduler, strategy) cell.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Initial scheduler used.
    pub initial: InitialKind,
    /// Rescheduling strategy used.
    pub strategy: StrategyKind,
    /// Total jobs in the trace.
    pub total_jobs: u64,
    /// The Suspend Rate: fraction of all jobs suspended at least once.
    pub suspend_rate: f64,
    /// AvgCT over jobs that were suspended at least once (minutes).
    pub avg_ct_suspended: f64,
    /// AvgCT over all jobs (minutes).
    pub avg_ct_all: f64,
    /// AvgST: average total suspend time over suspended jobs (minutes).
    pub avg_st: f64,
    /// The AvgWCT decomposition over all jobs.
    pub waste: WasteBreakdown,
    /// Average wait time over all jobs (minutes) — the paper's observation
    /// input for the 30-minute threshold.
    pub avg_wait_all: f64,
    /// Suspension-time samples of suspended jobs (Figure 2's population).
    pub suspension_times: Vec<f64>,
    /// Aggregate counters from the run.
    pub counters: RunCounters,
    /// When the last job completed.
    pub end_time: SimTime,
    /// Suspended-job count samples (enabled runs only).
    pub suspended_series: TimeSeries,
    /// Utilization percentage samples.
    pub utilization_series: TimeSeries,
    /// Waiting-job count samples.
    pub waiting_series: TimeSeries,
    /// Cumulative per-pool statistics.
    pub pool_stats: Vec<(
        netbatch_cluster::ids::PoolId,
        netbatch_cluster::pool::PoolStats,
    )>,
}

impl ExperimentResult {
    /// Computes the metrics from a finished run.
    pub fn from_output(initial: InitialKind, strategy: StrategyKind, output: SimOutput) -> Self {
        let mut ct_suspended = OnlineStats::new();
        let mut ct_all = OnlineStats::new();
        let mut st = OnlineStats::new();
        let mut wait_all = OnlineStats::new();
        let mut waste = WasteBreakdown::new();
        let mut suspension_times = Vec::new();
        let mut suspended_jobs = 0u64;
        for job in &output.jobs {
            let Some(ct) = job.completion_time() else {
                continue; // unrunnable jobs are excluded from averages
            };
            ct_all.push(ct.as_minutes_f64());
            wait_all.push(job.wait_time().as_minutes_f64());
            waste.add_job(job.wait_time(), job.suspend_time(), job.resched_waste());
            if job.was_suspended() {
                suspended_jobs += 1;
                ct_suspended.push(ct.as_minutes_f64());
                st.push(job.suspend_time().as_minutes_f64());
                suspension_times.push(job.suspend_time().as_minutes_f64());
            }
        }
        let total_jobs = output.jobs.len() as u64;
        ExperimentResult {
            initial,
            strategy,
            total_jobs,
            suspend_rate: if total_jobs == 0 {
                0.0
            } else {
                suspended_jobs as f64 / total_jobs as f64
            },
            avg_ct_suspended: ct_suspended.mean(),
            avg_ct_all: ct_all.mean(),
            avg_st: st.mean(),
            waste,
            avg_wait_all: wait_all.mean(),
            suspension_times,
            counters: output.counters,
            end_time: output.end_time,
            suspended_series: output.suspended_series,
            utilization_series: output.utilization_series,
            waiting_series: output.waiting_series,
            pool_stats: output.pool_stats,
        }
    }

    /// The pools with the most preemption activity, descending.
    pub fn hottest_pools(
        &self,
        n: usize,
    ) -> Vec<(
        netbatch_cluster::ids::PoolId,
        netbatch_cluster::pool::PoolStats,
    )> {
        let mut pools = self.pool_stats.clone();
        pools.sort_by(|a, b| b.1.suspensions.cmp(&a.1.suspensions).then(a.0.cmp(&b.0)));
        pools.truncate(n);
        pools
    }

    /// AvgWCT: average wasted completion time over all jobs (minutes).
    pub fn avg_wct(&self) -> f64 {
        self.waste.avg_total()
    }

    /// Number of jobs suspended at least once.
    pub fn suspended_jobs(&self) -> u64 {
        self.suspension_times.len() as u64
    }

    /// Jobs proactively evacuated off draining machines during the run.
    pub fn evacuations(&self) -> u64 {
        self.counters.evacuations
    }

    /// The suspension-time CDF (Figure 2).
    pub fn suspension_cdf(&self) -> Cdf {
        self.suspension_times.iter().copied().collect()
    }

    /// This result as one row of the paper's table layout:
    /// `[strategy, suspend rate, AvgCT suspend, AvgCT all, AvgST, AvgWCT]`.
    pub fn paper_row(&self) -> [String; 6] {
        [
            self.strategy.name().to_string(),
            fmt_percent(self.suspend_rate),
            fmt_minutes(self.avg_ct_suspended),
            fmt_minutes(self.avg_ct_all),
            fmt_minutes(self.avg_st),
            fmt_minutes(self.avg_wct()),
        ]
    }
}

/// The header matching [`ExperimentResult::paper_row`].
pub const PAPER_TABLE_HEADER: [&str; 6] = [
    "strategy",
    "Suspend rate",
    "AvgCT (susp)",
    "AvgCT (all)",
    "AvgST",
    "AvgWCT",
];

/// Renders a set of results as the paper's table layout.
pub fn render_results_table(results: &[ExperimentResult]) -> Table {
    let mut table = Table::new(PAPER_TABLE_HEADER);
    for r in results {
        table.row(r.paper_row());
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbatch_cluster::ids::PoolId;
    use netbatch_cluster::pool::PoolConfig;
    use netbatch_workload::trace::TraceRecord;

    fn tiny_site() -> SiteSpec {
        SiteSpec {
            pools: (0..2)
                .map(|p| PoolConfig::uniform(PoolId(p), 1, 1, 16_384))
                .collect(),
        }
    }

    fn rec(submit: u64, runtime: u64, priority: u8, affinity: Vec<u16>) -> TraceRecord {
        TraceRecord {
            submit_minute: submit,
            runtime_minutes: runtime,
            cores: 1,
            memory_mb: 1024,
            priority,
            affinity,
            task: None,
        }
    }

    #[test]
    fn experiment_computes_paper_metrics() {
        // Pool 0: long low job; high job preempts it at t=40 for 20 min.
        let trace = Trace::from_records(vec![rec(0, 100, 0, vec![0]), rec(40, 20, 10, vec![0])]);
        let exp = Experiment::new(tiny_site(), trace, SimConfig::default());
        let r = exp.run();
        assert_eq!(r.total_jobs, 2);
        assert!((r.suspend_rate - 0.5).abs() < 1e-12);
        assert_eq!(r.suspended_jobs(), 1);
        // Low job: CT = 120 (runs 0..40, susp 40..60, runs 60..120).
        assert!((r.avg_ct_suspended - 120.0).abs() < 1e-9);
        assert!((r.avg_st - 20.0).abs() < 1e-9);
        // All jobs: (120 + 20) / 2.
        assert!((r.avg_ct_all - 70.0).abs() < 1e-9);
        // Waste: low contributes 20 suspend minutes; high none.
        assert!((r.avg_wct() - 10.0).abs() < 1e-9);
        assert!((r.waste.avg_suspend() - 10.0).abs() < 1e-9);
        assert_eq!(r.waste.avg_resched(), 0.0);
    }

    #[test]
    fn paper_row_formats_numbers() {
        let trace = Trace::from_records(vec![rec(0, 10, 0, vec![])]);
        let r = Experiment::new(tiny_site(), trace, SimConfig::default()).run();
        let row = r.paper_row();
        assert_eq!(row[0], "NoRes");
        assert_eq!(row[1], "0.00%");
        assert_eq!(row[3], "10.0");
    }

    #[test]
    fn results_table_renders_all_rows() {
        let trace = Trace::from_records(vec![rec(0, 10, 0, vec![])]);
        let r = Experiment::new(tiny_site(), trace, SimConfig::default()).run();
        let table = render_results_table(&[r.clone(), r]);
        let text = table.render();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("Suspend rate"));
    }

    #[test]
    fn suspension_cdf_matches_samples() {
        let trace = Trace::from_records(vec![rec(0, 100, 0, vec![0]), rec(40, 20, 10, vec![0])]);
        let r = Experiment::new(tiny_site(), trace, SimConfig::default()).run();
        let cdf = r.suspension_cdf();
        assert_eq!(cdf.len(), 1);
        assert_eq!(cdf.median(), Some(20.0));
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let r = Experiment::new(tiny_site(), Trace::new(), SimConfig::default()).run();
        assert_eq!(r.total_jobs, 0);
        assert_eq!(r.suspend_rate, 0.0);
        assert_eq!(r.avg_ct_all, 0.0);
        assert_eq!(r.avg_wct(), 0.0);
    }
}
