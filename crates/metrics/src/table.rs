//! Plain-text table rendering for the benchmark harness.
//!
//! Every experiment binary prints its results in the paper's table layout,
//! side by side with the paper's published numbers; this module does the
//! column alignment.

use std::fmt;

/// Horizontal alignment of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table with a header row.
///
/// # Examples
///
/// ```
/// use netbatch_metrics::table::Table;
///
/// let mut t = Table::new(["strategy", "AvgCT"]);
/// t.row(["NoRes", "2498.7"]);
/// t.row(["ResSusUtil", "1265.4"]);
/// let text = t.render();
/// assert!(text.contains("ResSusUtil"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (label + numbers convention).
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        let aligns = std::iter::once(Align::Left)
            .chain(std::iter::repeat(Align::Right))
            .take(headers.len())
            .collect();
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the alignment count differs from the column count.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(
            aligns.len(),
            self.headers.len(),
            "alignment count must match column count"
        );
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders the table as aligned plain text with a separator under the
    /// header.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        self.render_line(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 3 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            self.render_line(&mut out, row, &widths);
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.aligns
                .iter()
                .map(|a| match a {
                    Align::Left => "---",
                    Align::Right => "---:",
                })
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    fn render_line(&self, out: &mut String, cells: &[String], widths: &[usize]) {
        let line: Vec<String> = cells
            .iter()
            .zip(widths)
            .zip(&self.aligns)
            .map(|((c, &w), a)| match a {
                Align::Left => format!("{c:<w$}"),
                Align::Right => format!("{c:>w$}"),
            })
            .collect();
        out.push_str(line.join("   ").trim_end());
        out.push('\n');
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats minutes with one decimal, the paper's number style.
pub fn fmt_minutes(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a fraction as a percentage with two decimals (e.g. `1.14%`).
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Right-aligned number column.
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn markdown_output() {
        let mut t = Table::new(["s", "x"]);
        t.row(["NoRes", "1.0"]);
        let md = t.render_markdown();
        assert!(md.starts_with("| s | x |"));
        assert!(md.contains("|---|---:|"));
        assert!(md.contains("| NoRes | 1.0 |"));
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(["a"]);
        t.row(["b"]);
        assert_eq!(t.to_string(), t.render());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_minutes(2498.66), "2498.7");
        assert_eq!(fmt_percent(0.0114), "1.14%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["h1", "h2"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
