//! Empirical cumulative distribution functions.
//!
//! Figure 2 of the paper plots the CDF of job suspension time on a
//! log-scaled x axis; [`Cdf`] produces exactly that kind of series, plus the
//! summary points the paper quotes (median 437 min, mean 905 min, 20% above
//! 1100 min).

use std::fmt;

/// An empirical CDF over `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from observations.
    ///
    /// # Panics
    ///
    /// Panics if any observation is NaN.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "NaN observation in CDF input"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of observations ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF by nearest rank; `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0, 1]");
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        // The small epsilon compensates for f64 roundoff so that
        // quantile(k/n) lands exactly on the k-th order statistic.
        let rank = ((p * n as f64 - 1e-9).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Evaluates the CDF at logarithmically spaced x positions between the
    /// smallest positive observation and the maximum — the series behind a
    /// log-x CDF plot like Figure 2. Returns `(x, percent ≤ x)` pairs.
    pub fn log_series(&self, points_per_decade: usize) -> Vec<(f64, f64)> {
        assert!(points_per_decade > 0, "need at least one point per decade");
        let Some(&max) = self.sorted.last() else {
            return Vec::new();
        };
        let min_pos = self
            .sorted
            .iter()
            .copied()
            .find(|&v| v > 0.0)
            .unwrap_or(1.0);
        if max <= min_pos {
            return vec![(max, 100.0)];
        }
        let lo = min_pos.log10().floor();
        let hi = max.log10().ceil();
        let steps = ((hi - lo) * points_per_decade as f64).ceil() as usize;
        (0..=steps)
            .map(|i| {
                let x = 10f64.powf(lo + i as f64 / points_per_decade as f64);
                (x, self.at(x) * 100.0)
            })
            .collect()
    }

    /// The observations in ascending order.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cdf(n={}, median={:.1}, mean={:.1})",
            self.len(),
            self.median().unwrap_or(0.0),
            self.mean()
        )
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Cdf::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_evaluation() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(1.0), 0.25);
        assert_eq!(cdf.at(2.5), 0.5);
        assert_eq!(cdf.at(100.0), 1.0);
    }

    #[test]
    fn quantiles_and_median() {
        let cdf: Cdf = (1..=100).map(f64::from).collect();
        assert_eq!(cdf.median(), Some(50.0));
        assert_eq!(cdf.quantile(0.8), Some(80.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert!((cdf.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_samples(std::iter::empty());
        assert!(cdf.is_empty());
        assert_eq!(cdf.at(1.0), 0.0);
        assert_eq!(cdf.median(), None);
        assert!(cdf.log_series(10).is_empty());
    }

    #[test]
    fn empty_cdf_quantiles_at_extremes() {
        let cdf = Cdf::from_samples(std::iter::empty());
        // Every probability, including the boundary ranks, is None — not
        // a panic and not a sentinel value.
        for p in [0.0, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(cdf.quantile(p), None);
        }
        assert_eq!(cdf.mean(), 0.0);
        assert_eq!(cdf.sorted_values(), &[] as &[f64]);
    }

    #[test]
    fn single_sample_quantiles_all_collapse() {
        let cdf = Cdf::from_samples([437.0]);
        // Nearest-rank on n=1: every p maps to the only observation.
        for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(cdf.quantile(p), Some(437.0));
        }
        assert_eq!(cdf.median(), Some(437.0));
        assert_eq!(cdf.mean(), 437.0);
        assert_eq!(cdf.at(436.9), 0.0);
        assert_eq!(cdf.at(437.0), 1.0);
        let series = cdf.log_series(4);
        assert!((series.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn single_zero_sample_has_no_positive_support() {
        // All mass at zero: log_series has no positive observation to
        // anchor its decade range, so it degenerates to one point.
        let cdf = Cdf::from_samples([0.0]);
        assert_eq!(cdf.quantile(0.5), Some(0.0));
        assert_eq!(cdf.log_series(10), vec![(0.0, 100.0)]);
    }

    #[test]
    #[should_panic(expected = "quantile p must be in [0, 1]")]
    fn out_of_range_probability_rejected() {
        Cdf::from_samples([1.0]).quantile(1.5);
    }

    #[test]
    fn log_series_monotone_and_spans_range() {
        let cdf: Cdf = (1..=1000).map(f64::from).collect();
        let series = cdf.log_series(10);
        assert!(series.len() >= 30);
        assert!(series.first().unwrap().0 <= 1.0);
        assert!(series.last().unwrap().0 >= 1000.0);
        let mut last = -1.0;
        for &(_, p) in &series {
            assert!(p >= last);
            last = p;
        }
        assert!((series.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn log_series_single_value() {
        let cdf = Cdf::from_samples([5.0]);
        let series = cdf.log_series(4);
        assert!((series.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_rejected() {
        Cdf::from_samples([f64::NAN]);
    }

    proptest! {
        /// at() is monotone non-decreasing.
        #[test]
        fn prop_cdf_monotone(data in proptest::collection::vec(0f64..1e6, 1..100),
                             probes in proptest::collection::vec(0f64..1e6, 2..20)) {
            let cdf = Cdf::from_samples(data);
            let mut probes = probes;
            probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = -1.0;
            for p in probes {
                let v = cdf.at(p);
                prop_assert!(v >= last);
                prop_assert!((0.0..=1.0).contains(&v));
                last = v;
            }
        }

        /// quantile(at(x)) ≤ x for x at observations.
        #[test]
        fn prop_quantile_inverse(data in proptest::collection::vec(0f64..1e6, 1..100)) {
            let cdf = Cdf::from_samples(data.clone());
            for &x in &data {
                let q = cdf.quantile(cdf.at(x)).unwrap();
                prop_assert!(q <= x + 1e-9);
            }
        }
    }
}
