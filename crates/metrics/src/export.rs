//! Prometheus-style text exposition.
//!
//! The workspace carries no metrics or HTTP dependency, so the exposition
//! format is hand-written: [`PromWriter`] renders metric families as
//! `# HELP` / `# TYPE` headers followed by sample lines, exactly the
//! text format a Prometheus scrape endpoint would serve. Output is
//! deterministic — callers feed families and samples in a stable
//! (BTreeMap) order and get byte-stable text, so `--metrics-out` files
//! can be golden-asserted and diffed across runs.
//!
//! [`LogHistogram`]s render as classic cumulative-bucket histograms:
//! one `_bucket{le="..."}` line per populated log-bin upper bound, then
//! `le="+Inf"`, `_sum` and `_count`.

use std::fmt::Write as _;

use crate::histogram::LogHistogram;

/// The exposition type of a metric family (the `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// The keyword used on the `# TYPE` line.
    pub fn keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Escapes a label value for the exposition format (backslash, double
/// quote and newline must be backslash-escaped inside the quotes).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a label set as `{k="v",...}`; empty input renders as `""`.
pub fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Formats a sample value: integers render without a fractional part,
/// everything else with `f64`'s shortest round-trip representation
/// (deterministic across platforms).
pub fn format_value(v: f64) -> String {
    format!("{v}")
}

/// An incremental writer for the Prometheus text format.
#[derive(Debug, Clone, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        PromWriter::default()
    }

    /// Opens a metric family: writes the `# HELP` and `# TYPE` lines.
    /// Call once per family, before its samples.
    pub fn family(&mut self, name: &str, help: &str, kind: MetricKind) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.keyword());
    }

    /// Writes one sample line with the given label set.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let rendered = render_labels(labels);
        self.sample_pre(name, &rendered, value);
    }

    /// Writes one sample line with a pre-rendered label block (as
    /// produced by [`render_labels`]); lets registries that key on
    /// rendered label strings avoid re-parsing them.
    pub fn sample_pre(&mut self, name: &str, rendered_labels: &str, value: f64) {
        let _ = writeln!(self.out, "{name}{rendered_labels} {}", format_value(value));
    }

    /// Writes a [`LogHistogram`] as a cumulative-bucket histogram family
    /// member: `_bucket{le="1"}` for the underflow bin, one bucket per
    /// populated log bin's upper bound, `le="+Inf"` (which absorbs the
    /// overflow bin), then `_sum` and `_count`. `labels` are prepended to
    /// the `le` label on every bucket line.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: &LogHistogram) {
        let prefix = {
            let rendered = render_labels(labels);
            // Splice `le` into the existing label block (or open a new one).
            match rendered.strip_suffix('}') {
                Some(open) => format!("{open},"),
                None => String::from("{"),
            }
        };
        let mut cumulative = hist.underflow();
        let _ = writeln!(self.out, "{name}_bucket{prefix}le=\"1\"}} {cumulative}");
        for (_, hi, c) in hist.iter_bins() {
            cumulative += c;
            let _ = writeln!(
                self.out,
                "{name}_bucket{prefix}le=\"{}\"}} {cumulative}",
                format_value(hi)
            );
        }
        let _ = writeln!(
            self.out,
            "{name}_bucket{prefix}le=\"+Inf\"}} {}",
            hist.count()
        );
        let rendered = render_labels(labels);
        let _ = writeln!(
            self.out,
            "{name}_sum{rendered} {}",
            format_value(hist.sum())
        );
        let _ = writeln!(self.out, "{name}_count{rendered} {}", hist.count());
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// A light sanity parser for exposition text: checks every non-comment,
/// non-blank line is `name[{labels}] value` with a finite value, and that
/// every sample's family was declared by a preceding `# TYPE` line.
/// Returns the number of sample lines, or the first offending line.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some(name) = rest.split_whitespace().next() {
                declared.push(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("malformed sample line: {line}"))?;
        let name = &line[..name_end];
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| declared.iter().any(|d| d == base))
            .unwrap_or(name);
        if !declared.iter().any(|d| d == base) {
            return Err(format!("sample for undeclared family: {line}"));
        }
        let value = line
            .rsplit(' ')
            .next()
            .ok_or_else(|| format!("malformed sample line: {line}"))?;
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("unparseable value `{value}` in: {line}"))?;
        if parsed.is_nan() {
            return Err(format!("NaN value in: {line}"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_samples() {
        let mut w = PromWriter::new();
        w.family("jobs_total", "Jobs seen.", MetricKind::Counter);
        w.sample("jobs_total", &[("pool", "3")], 42.0);
        w.sample("jobs_total", &[], 7.5);
        let text = w.finish();
        assert_eq!(
            text,
            "# HELP jobs_total Jobs seen.\n\
             # TYPE jobs_total counter\n\
             jobs_total{pool=\"3\"} 42\n\
             jobs_total 7.5\n"
        );
        assert_eq!(validate_exposition(&text), Ok(2));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(render_labels(&[]), "");
        assert_eq!(
            render_labels(&[("a", "1"), ("b", "x y")]),
            "{a=\"1\",b=\"x y\"}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = LogHistogram::decades();
        h.extend([0.5, 2.0, 3.0, 20.0, 5000.0]);
        let mut w = PromWriter::new();
        w.family("lat", "Latency.", MetricKind::Histogram);
        w.histogram("lat", &[("phase", "wait")], &h);
        let text = w.finish();
        assert!(text.contains("lat_bucket{phase=\"wait\",le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{phase=\"wait\",le=\"10\"} 3"));
        assert!(text.contains("lat_bucket{phase=\"wait\",le=\"100\"} 4"));
        assert!(text.contains("lat_bucket{phase=\"wait\",le=\"+Inf\"} 5"));
        assert!(text.contains("lat_count{phase=\"wait\"} 5"));
        assert!(text.contains("lat_sum{phase=\"wait\"} 5025.5"));
        assert!(text.contains("lat_bucket{phase=\"wait\",le=\"10000\"} 5"));
        // 4 populated buckets + +Inf + sum + count.
        assert_eq!(validate_exposition(&text), Ok(7));
    }

    #[test]
    fn histogram_without_labels_opens_a_block_for_le() {
        let mut h = LogHistogram::decades();
        h.record(5.0);
        let mut w = PromWriter::new();
        w.histogram("lat", &[], &h);
        let text = w.finish();
        assert!(text.contains("lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_sum 5\n"));
    }

    #[test]
    fn validator_flags_undeclared_and_garbage() {
        assert!(validate_exposition("x_total 1").is_err());
        assert!(validate_exposition("# TYPE x_total counter\nx_total notanumber").is_err());
        assert_eq!(validate_exposition("# TYPE x counter\nx{a=\"b\"} 3"), Ok(1));
        assert_eq!(validate_exposition(""), Ok(0));
    }
}
