//! The paper's wasted-completion-time decomposition.
//!
//! AvgWCT (§3.1) is the mean, over all jobs, of the time a job "exists in
//! NetBatch but does not make progress towards job completion", split into
//! three components: (c1) wait time, (c2) suspend time, (c3) time wasted by
//! rescheduling restarts. Figure 3 plots these as a stacked bar per
//! strategy.

use std::fmt;
use std::ops::Add;

use netbatch_sim_engine::time::SimDuration;

/// Totals (not averages) of the three waste components over a job
/// population, plus the population size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WasteBreakdown {
    /// Σ wait time — component (c1).
    pub wait: SimDuration,
    /// Σ suspend time — component (c2).
    pub suspend: SimDuration,
    /// Σ time wasted by rescheduling — component (c3).
    pub resched: SimDuration,
    /// Number of jobs aggregated.
    pub jobs: u64,
}

impl WasteBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        WasteBreakdown::default()
    }

    /// Accumulates one job's components.
    pub fn add_job(&mut self, wait: SimDuration, suspend: SimDuration, resched: SimDuration) {
        self.wait += wait;
        self.suspend += suspend;
        self.resched += resched;
        self.jobs += 1;
    }

    /// Total wasted time across the population.
    pub fn total(&self) -> SimDuration {
        self.wait + self.suspend + self.resched
    }

    /// Mean wait time per job (c1 component of AvgWCT).
    pub fn avg_wait(&self) -> f64 {
        self.per_job(self.wait)
    }

    /// Mean suspend time per job (c2).
    pub fn avg_suspend(&self) -> f64 {
        self.per_job(self.suspend)
    }

    /// Mean rescheduling waste per job (c3).
    pub fn avg_resched(&self) -> f64 {
        self.per_job(self.resched)
    }

    /// AvgWCT: mean total wasted completion time per job.
    pub fn avg_total(&self) -> f64 {
        self.per_job(self.total())
    }

    fn per_job(&self, d: SimDuration) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            d.as_minutes_f64() / self.jobs as f64
        }
    }
}

impl Add for WasteBreakdown {
    type Output = WasteBreakdown;

    fn add(self, rhs: WasteBreakdown) -> WasteBreakdown {
        WasteBreakdown {
            wait: self.wait + rhs.wait,
            suspend: self.suspend + rhs.suspend,
            resched: self.resched + rhs.resched,
            jobs: self.jobs + rhs.jobs,
        }
    }
}

impl fmt::Display for WasteBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AvgWCT {:.1} = wait {:.1} + suspend {:.1} + resched {:.1} (n={})",
            self.avg_total(),
            self.avg_wait(),
            self.avg_suspend(),
            self.avg_resched(),
            self.jobs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(m: u64) -> SimDuration {
        SimDuration::from_minutes(m)
    }

    #[test]
    fn averages_divide_by_population() {
        let mut w = WasteBreakdown::new();
        w.add_job(d(10), d(20), d(0));
        w.add_job(d(30), d(0), d(4));
        assert_eq!(w.jobs, 2);
        assert!((w.avg_wait() - 20.0).abs() < 1e-12);
        assert!((w.avg_suspend() - 10.0).abs() < 1e-12);
        assert!((w.avg_resched() - 2.0).abs() < 1e-12);
        assert!((w.avg_total() - 32.0).abs() < 1e-12);
        assert_eq!(w.total(), d(64));
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let w = WasteBreakdown::new();
        assert_eq!(w.avg_total(), 0.0);
        assert_eq!(w.total(), SimDuration::ZERO);
        assert!(!w.to_string().is_empty());
    }

    #[test]
    fn add_merges_populations() {
        let mut a = WasteBreakdown::new();
        a.add_job(d(10), d(0), d(0));
        let mut b = WasteBreakdown::new();
        b.add_job(d(0), d(30), d(6));
        let c = a + b;
        assert_eq!(c.jobs, 2);
        assert_eq!(c.total(), d(46));
        assert!((c.avg_total() - 23.0).abs() < 1e-12);
    }

    #[test]
    fn components_sum_to_total_average() {
        let mut w = WasteBreakdown::new();
        w.add_job(d(7), d(11), d(13));
        w.add_job(d(1), d(2), d(3));
        let parts = w.avg_wait() + w.avg_suspend() + w.avg_resched();
        assert!((parts - w.avg_total()).abs() < 1e-12);
    }
}
