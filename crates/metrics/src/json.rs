//! A small hand-written JSON parser (recursive descent) for the trace
//! tooling: the workspace is fully offline (no serde), and every artifact
//! the simulator writes is hand-rendered JSON — this module closes the
//! loop so consumers (`netbatch trace`, the Perfetto exporter, CI smoke
//! checks) can read those artifacts back without new dependencies.
//!
//! Scope: strict RFC 8259 subset — objects, arrays, strings with the
//! standard escapes (including `\uXXXX` for the BMP), `f64` numbers,
//! booleans, null. Object key order is preserved (decoded documents
//! re-render deterministically). No streaming; inputs are whole documents.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order preserved from the document.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Re-renders the value as compact JSON (key order preserved; numbers
    /// render as integers when integral, which round-trips everything the
    /// simulator writes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Errors carry a byte offset and a short
/// description; trailing non-whitespace is rejected.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e\nf"}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("c").unwrap().get("d").unwrap().as_str(),
            Some("e\nf")
        );
        assert!(doc.get("a").unwrap().as_arr().unwrap()[2]
            .get("b")
            .unwrap()
            .is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err(), "trailing data");
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        assert!(parse(r#""\ud800""#).is_err(), "lone surrogate");
    }

    #[test]
    fn render_round_trips() {
        let src =
            r#"{"kind":"span","job":3,"end":null,"cause":{"type":"fault","outage":0},"ok":true}"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.render(), src);
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn preserves_key_order() {
        let doc = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(doc.render(), r#"{"z":1,"a":2}"#);
    }
}
