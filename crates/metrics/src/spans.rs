//! Causal spans in simulation time.
//!
//! A *span* is an interval in an entity's lifecycle — a job sitting in a
//! wait queue, a job held suspended — opened by one observed transition
//! and closed by a later one. [`SpanCollector`] matches the open/close
//! pairs per `(entity, phase)` and aggregates closed span lengths into
//! per-phase [`LogHistogram`]s, which is exactly the per-phase latency
//! signal (time-in-queue, time-suspended, restart-wasted-work) the
//! paper's tables summarize.
//!
//! Everything is keyed through `BTreeMap`s, so iteration order — and any
//! rendering built on it — is deterministic.

use std::collections::BTreeMap;

use netbatch_sim_engine::time::{SimDuration, SimTime};

use crate::histogram::LogHistogram;

/// Matches begin/end lifecycle transitions into spans and aggregates
/// span lengths (in minutes) into one decade [`LogHistogram`] per phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanCollector {
    open: BTreeMap<(u64, &'static str), SimTime>,
    hists: BTreeMap<&'static str, LogHistogram>,
    unmatched_ends: u64,
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> Self {
        SpanCollector::default()
    }

    /// Opens a span for `(entity, phase)` at `at`. Returns `false` (and
    /// restarts the span) if one was already open — a sign the caller's
    /// event stream skipped a close transition.
    pub fn begin(&mut self, entity: u64, phase: &'static str, at: SimTime) -> bool {
        self.open.insert((entity, phase), at).is_none()
    }

    /// Closes the open span for `(entity, phase)`, recording its length
    /// into the phase histogram and returning it. Returns `None` — and
    /// counts an unmatched end — when no span was open.
    pub fn end(&mut self, entity: u64, phase: &'static str, at: SimTime) -> Option<SimDuration> {
        match self.open.remove(&(entity, phase)) {
            Some(opened) => {
                let len = at.since(opened);
                self.observe(phase, len);
                Some(len)
            }
            None => {
                self.unmatched_ends += 1;
                None
            }
        }
    }

    /// Drops an open span without recording it (e.g. an entity that left
    /// the system through a path whose duration is not a latency).
    /// Returns whether a span was open.
    pub fn abandon(&mut self, entity: u64, phase: &'static str) -> bool {
        self.open.remove(&(entity, phase)).is_some()
    }

    /// Records a duration directly into a phase histogram — for spans
    /// both of whose ends arrive in a single event (e.g. the discarded
    /// progress carried by a reschedule transition).
    pub fn observe(&mut self, phase: &'static str, len: SimDuration) {
        self.hists
            .entry(phase)
            .or_insert_with(LogHistogram::decades)
            .record(len.as_minutes() as f64);
    }

    /// Spans currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Ends that arrived with no matching open span.
    pub fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }

    /// Per-phase histograms of closed span lengths, in phase-name order.
    pub fn phases(&self) -> &BTreeMap<&'static str, LogHistogram> {
        &self.hists
    }

    /// The histogram for one phase, if any span of it closed.
    pub fn phase(&self, phase: &'static str) -> Option<&LogHistogram> {
        self.hists.get(phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    #[test]
    fn matched_spans_feed_phase_histograms() {
        let mut c = SpanCollector::new();
        assert!(c.begin(1, "queue_wait", t(0)));
        assert!(c.begin(2, "queue_wait", t(5)));
        assert_eq!(c.open_count(), 2);
        assert_eq!(
            c.end(1, "queue_wait", t(30)),
            Some(SimDuration::from_minutes(30))
        );
        assert_eq!(
            c.end(2, "queue_wait", t(10)),
            Some(SimDuration::from_minutes(5))
        );
        let h = c.phase("queue_wait").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 17.5).abs() < 1e-12);
        assert_eq!(c.open_count(), 0);
        assert_eq!(c.unmatched_ends(), 0);
    }

    #[test]
    fn same_entity_different_phases_do_not_collide() {
        let mut c = SpanCollector::new();
        c.begin(7, "queue_wait", t(0));
        c.begin(7, "suspended", t(2));
        assert_eq!(
            c.end(7, "suspended", t(4)),
            Some(SimDuration::from_minutes(2))
        );
        assert_eq!(
            c.end(7, "queue_wait", t(9)),
            Some(SimDuration::from_minutes(9))
        );
    }

    #[test]
    fn reopening_restarts_and_reports() {
        let mut c = SpanCollector::new();
        assert!(c.begin(1, "suspended", t(0)));
        assert!(!c.begin(1, "suspended", t(10)));
        // The restart wins: the span measures from the second begin.
        assert_eq!(
            c.end(1, "suspended", t(12)),
            Some(SimDuration::from_minutes(2))
        );
    }

    #[test]
    fn unmatched_end_and_abandon() {
        let mut c = SpanCollector::new();
        assert_eq!(c.end(3, "queue_wait", t(1)), None);
        assert_eq!(c.unmatched_ends(), 1);
        c.begin(4, "queue_wait", t(0));
        assert!(c.abandon(4, "queue_wait"));
        assert!(!c.abandon(4, "queue_wait"));
        // Abandoned spans record nothing.
        assert!(c.phase("queue_wait").is_none());
    }

    #[test]
    fn direct_observations_share_the_phase_histogram() {
        let mut c = SpanCollector::new();
        c.observe("restart_waste", SimDuration::from_minutes(40));
        c.begin(1, "restart_waste", t(0));
        c.end(1, "restart_waste", t(60));
        let h = c.phase("restart_waste").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 50.0).abs() < 1e-12);
    }
}
