//! Logarithmic histograms for heavy-tailed durations.
//!
//! NetBatch suspension and completion times span five orders of magnitude
//! (minutes to >100k minutes, Figure 2), so fixed-width bins are useless.
//! [`LogHistogram`] bins by powers of a configurable base.

use std::fmt;

/// A histogram with logarithmically sized bins.
///
/// Bin `i` covers `[base^i, base^(i+1))`; values below 1 land in a dedicated
/// underflow bin.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    base: f64,
    underflow: u64,
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl LogHistogram {
    /// Creates a histogram with the given base (> 1).
    ///
    /// # Panics
    ///
    /// Panics if `base ≤ 1`.
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "histogram base must exceed 1");
        LogHistogram {
            base,
            underflow: 0,
            bins: Vec::new(),
            count: 0,
            sum: 0.0,
        }
    }

    /// Decade bins (base 10) — matches Figure 2's axis.
    pub fn decades() -> Self {
        LogHistogram::new(10.0)
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative values (durations are non-negative).
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan() && x >= 0.0, "invalid histogram observation {x}");
        self.count += 1;
        self.sum += x;
        if x < 1.0 {
            self.underflow += 1;
            return;
        }
        let bin = x.log(self.base).floor() as usize;
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations below 1.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Iterates `(bin_low, bin_high, count)` for non-empty log bins.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.base.powi(i as i32), self.base.powi(i as i32 + 1), c))
    }

    /// Renders a compact ASCII bar chart, for harness output.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("{:>12} | {}\n", "<1", self.underflow));
        }
        for (lo, hi, c) in self.iter_bins() {
            let bar_len = ((c as f64 / max as f64) * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>5}-{:<6} | {:<width$} {}\n",
                lo as u64,
                hi as u64,
                "#".repeat(bar_len),
                c,
                width = width
            ));
        }
        out
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::decades()
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log-histogram(base={}, n={}, mean={:.1})",
            self.base,
            self.count,
            self.mean()
        )
    }
}

impl Extend<f64> for LogHistogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_decade() {
        let mut h = LogHistogram::decades();
        h.extend([0.5, 1.0, 5.0, 10.0, 99.0, 100.0, 5000.0]);
        assert_eq!(h.underflow(), 1);
        let bins: Vec<(f64, f64, u64)> = h.iter_bins().collect();
        assert_eq!(bins[0], (1.0, 10.0, 2));
        assert_eq!(bins[1], (10.0, 100.0, 2));
        assert_eq!(bins[2], (100.0, 1000.0, 1));
        assert_eq!(bins[3], (1000.0, 10000.0, 1));
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn mean_tracks_all_samples() {
        let mut h = LogHistogram::decades();
        h.extend([1.0, 3.0]);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_rendering_is_nonempty() {
        let mut h = LogHistogram::decades();
        h.extend([0.1, 2.0, 20.0, 20.0]);
        let s = h.render_ascii(20);
        assert!(s.contains("<1"));
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.iter_bins().count(), 0);
        assert!(!h.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "base must exceed 1")]
    fn bad_base_rejected() {
        LogHistogram::new(1.0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram observation")]
    fn negative_rejected() {
        LogHistogram::decades().record(-1.0);
    }
}
