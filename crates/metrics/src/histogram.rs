//! Logarithmic histograms for heavy-tailed durations.
//!
//! NetBatch suspension and completion times span five orders of magnitude
//! (minutes to >100k minutes, Figure 2), so fixed-width bins are useless.
//! [`LogHistogram`] bins by powers of a configurable base.

use std::fmt;

/// A histogram with logarithmically sized bins.
///
/// Bin `i` covers `[base^i, base^(i+1))`; values below 1 land in a dedicated
/// underflow bin, and values at or above `base^MAX_BINS` in a dedicated
/// overflow bin (so a pathological observation can never force an
/// unbounded bin allocation).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    base: f64,
    underflow: u64,
    overflow: u64,
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl LogHistogram {
    /// Largest addressable log bin; observations beyond `base^MAX_BINS`
    /// land in the overflow bin. 256 decades covers every finite `f64`
    /// duration that could plausibly be a number of minutes.
    pub const MAX_BINS: usize = 256;

    /// Creates a histogram with the given base (> 1).
    ///
    /// # Panics
    ///
    /// Panics if `base ≤ 1`.
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "histogram base must exceed 1");
        LogHistogram {
            base,
            underflow: 0,
            overflow: 0,
            bins: Vec::new(),
            count: 0,
            sum: 0.0,
        }
    }

    /// Decade bins (base 10) — matches Figure 2's axis.
    pub fn decades() -> Self {
        LogHistogram::new(10.0)
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN, infinite or negative values (durations are finite
    /// and non-negative).
    pub fn record(&mut self, x: f64) {
        assert!(
            x.is_finite() && x >= 0.0,
            "invalid histogram observation {x}"
        );
        self.count += 1;
        self.sum += x;
        if x < 1.0 {
            self.underflow += 1;
            return;
        }
        let bin = x.log(self.base).floor() as usize;
        if bin >= Self::MAX_BINS {
            self.overflow += 1;
            return;
        }
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Observations below 1.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `base^MAX_BINS`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterates `(bin_low, bin_high, count)` for non-empty log bins.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (self.base.powi(i as i32), self.base.powi(i as i32 + 1), c))
    }

    /// Renders a compact ASCII bar chart, for harness output.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("{:>12} | {}\n", "<1", self.underflow));
        }
        for (lo, hi, c) in self.iter_bins() {
            let bar_len = ((c as f64 / max as f64) * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>5}-{:<6} | {:<width$} {}\n",
                lo as u64,
                hi as u64,
                "#".repeat(bar_len),
                c,
                width = width
            ));
        }
        out
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::decades()
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log-histogram(base={}, n={}, mean={:.1})",
            self.base,
            self.count,
            self.mean()
        )
    }
}

impl Extend<f64> for LogHistogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_decade() {
        let mut h = LogHistogram::decades();
        h.extend([0.5, 1.0, 5.0, 10.0, 99.0, 100.0, 5000.0]);
        assert_eq!(h.underflow(), 1);
        let bins: Vec<(f64, f64, u64)> = h.iter_bins().collect();
        assert_eq!(bins[0], (1.0, 10.0, 2));
        assert_eq!(bins[1], (10.0, 100.0, 2));
        assert_eq!(bins[2], (100.0, 1000.0, 1));
        assert_eq!(bins[3], (1000.0, 10000.0, 1));
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn mean_tracks_all_samples() {
        let mut h = LogHistogram::decades();
        h.extend([1.0, 3.0]);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_rendering_is_nonempty() {
        let mut h = LogHistogram::decades();
        h.extend([0.1, 2.0, 20.0, 20.0]);
        let s = h.render_ascii(20);
        assert!(s.contains("<1"));
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.iter_bins().count(), 0);
        assert!(!h.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "base must exceed 1")]
    fn bad_base_rejected() {
        LogHistogram::new(1.0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram observation")]
    fn negative_rejected() {
        LogHistogram::decades().record(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram observation")]
    fn infinite_rejected() {
        LogHistogram::decades().record(f64::INFINITY);
    }

    #[test]
    fn overflow_bin_catches_huge_finite_values() {
        let mut h = LogHistogram::decades();
        // f64::MAX is ~1.8e308, far past base^MAX_BINS = 1e256: it must
        // land in the overflow bin rather than forcing a 308-entry bin
        // allocation (or, with a small base, an unbounded one).
        h.record(f64::MAX);
        h.record(2.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        // The overflow observation is excluded from the log bins but still
        // part of count/sum.
        assert_eq!(h.iter_bins().map(|(_, _, c)| c).sum::<u64>(), 1);
        assert_eq!(h.sum(), f64::MAX + 2.0);
        // A base barely above 1 maps modest values to astronomical bin
        // indexes; the cap keeps memory bounded.
        let mut tight = LogHistogram::new(1.0 + 1e-9);
        tight.record(1e6);
        assert_eq!(tight.overflow(), 1);
    }

    #[test]
    fn underflow_boundary_is_exclusive_at_one() {
        let mut h = LogHistogram::decades();
        h.extend([0.0, 0.999, 1.0]);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.iter_bins().next(), Some((1.0, 10.0, 1)));
    }
}
