//! # netbatch-metrics
//!
//! The measurement substrate for the NetBatch dynamic-rescheduling
//! reproduction: everything needed to compute and present the paper's
//! metrics.
//!
//! * [`summary`] — streaming (Welford) and retained sample statistics;
//! * [`cdf`] — empirical CDFs with log-x series (Figure 2);
//! * [`histogram`] — logarithmic histograms for heavy-tailed durations;
//! * [`timeseries`] — per-minute sampling with 100-minute aggregation
//!   (Figure 4);
//! * [`spans`] — begin/end lifecycle span matching feeding per-phase
//!   latency histograms (the telemetry layer's span engine);
//! * [`export`] — Prometheus-style text exposition rendering and a
//!   sanity parser for it;
//! * [`json`] — a small hand-written JSON parser for reading the
//!   simulator's hand-rendered artifacts back (trace tooling, CI checks);
//! * [`waste`] — the AvgWCT decomposition into wait / suspend / rescheduling
//!   waste (Figure 3, Tables 1–5);
//! * [`table`] — plain-text and markdown table rendering for the harness.
//!
//! ## Example
//!
//! ```
//! use netbatch_metrics::cdf::Cdf;
//!
//! // Suspension times in minutes.
//! let cdf: Cdf = [30.0, 437.0, 905.0, 1500.0, 120.0].into_iter().collect();
//! assert_eq!(cdf.median(), Some(437.0));
//! assert!(cdf.at(1100.0) > 0.5);
//! ```

#![warn(missing_docs)]

pub mod cdf;
pub mod export;
pub mod histogram;
pub mod json;
pub mod spans;
pub mod summary;
pub mod table;
pub mod timeseries;
pub mod waste;

pub use cdf::Cdf;
pub use export::{MetricKind, PromWriter};
pub use histogram::LogHistogram;
pub use spans::SpanCollector;
pub use summary::{OnlineStats, SampleSet};
pub use table::{Align, Table};
pub use timeseries::TimeSeries;
pub use waste::WasteBreakdown;
