//! Sampled time series with interval aggregation.
//!
//! The paper's Figure 4 samples suspension count and utilization every
//! minute, then aggregates to 100-minute averages. [`TimeSeries`] stores the
//! per-minute samples; [`TimeSeries::aggregate`] produces the 100-minute
//! series.

use netbatch_sim_engine::time::{SimDuration, SimTime};

/// A time-ordered sequence of `(instant, value)` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the previous sample (series must be
    /// recorded in time order) or `value` is NaN.
    pub fn push(&mut self, at: SimTime, value: f64) {
        assert!(!value.is_nan(), "NaN sample rejected");
        if let Some(&(last, _)) = self.samples.last() {
            assert!(at >= last, "samples must be time-ordered: {at} < {last}");
        }
        self.samples.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Mean of all sample values; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum sample value, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| a.partial_cmp(b).expect("no NaNs"))
    }

    /// Averages samples into fixed-width buckets: returns one
    /// `(bucket_start, mean)` pair per non-empty bucket, in time order.
    /// With `bucket = 100` minutes this reproduces Figure 4's aggregation.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn aggregate(&self, bucket: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        let width = bucket.as_minutes();
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut cur_bucket: Option<(u64, f64, u64)> = None; // (index, sum, n)
        for &(t, v) in &self.samples {
            let idx = t.as_minutes() / width;
            match cur_bucket {
                Some((b, sum, n)) if b == idx => cur_bucket = Some((b, sum + v, n + 1)),
                Some((b, sum, n)) => {
                    out.push((SimTime::from_minutes(b * width), sum / n as f64));
                    cur_bucket = Some((idx, v, 1));
                    debug_assert!(idx > b);
                }
                None => cur_bucket = Some((idx, v, 1)),
            }
        }
        if let Some((b, sum, n)) = cur_bucket {
            out.push((SimTime::from_minutes(b * width), sum / n as f64));
        }
        out
    }

    /// Time-weighted mean between consecutive samples over the sampled span
    /// (each value holds until the next sample). Falls back to the plain
    /// mean when fewer than two samples exist.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.samples.len() < 2 {
            return self.mean();
        }
        let mut weighted = 0.0;
        let mut span = 0u64;
        for pair in self.samples.windows(2) {
            let dt = pair[1].0.since(pair[0].0).as_minutes();
            weighted += pair[0].1 * dt as f64;
            span += dt;
        }
        if span == 0 {
            self.mean()
        } else {
            weighted / span as f64
        }
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<T: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: T) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(m: u64) -> SimTime {
        SimTime::from_minutes(m)
    }

    #[test]
    fn aggregation_averages_buckets() {
        let mut s = TimeSeries::new();
        for m in 0..200 {
            s.push(t(m), if m < 100 { 10.0 } else { 30.0 });
        }
        let agg = s.aggregate(SimDuration::from_minutes(100));
        assert_eq!(agg, vec![(t(0), 10.0), (t(100), 30.0)]);
    }

    #[test]
    fn aggregation_skips_empty_buckets() {
        let mut s = TimeSeries::new();
        s.push(t(0), 1.0);
        s.push(t(950), 5.0);
        let agg = s.aggregate(SimDuration::from_minutes(100));
        assert_eq!(agg, vec![(t(0), 1.0), (t(900), 5.0)]);
    }

    #[test]
    fn mean_and_max() {
        let mut s = TimeSeries::new();
        s.extend([(t(0), 1.0), (t(1), 2.0), (t(2), 6.0)]);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn time_weighted_mean_accounts_for_gaps() {
        let mut s = TimeSeries::new();
        // value 0 for 90 minutes, then 10 for 10 minutes.
        s.push(t(0), 0.0);
        s.push(t(90), 10.0);
        s.push(t(100), 10.0);
        assert!((s.time_weighted_mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_defaults() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), None);
        assert!(s.aggregate(SimDuration::HOUR).is_empty());
    }

    #[test]
    fn zero_duration_run_sampling() {
        // A run that starts and drains in the same minute: every sample
        // lands at the same instant. Equal timestamps are in order (the
        // simulator can emit several transitions at one tick), and all
        // derived views stay well-defined.
        let mut s = TimeSeries::new();
        s.push(t(0), 3.0);
        s.push(t(0), 5.0);
        assert_eq!(s.len(), 2);
        let agg = s.aggregate(SimDuration::from_minutes(100));
        assert_eq!(agg, vec![(t(0), 4.0)]);
        // Zero elapsed span: time weighting degenerates to the plain mean
        // rather than dividing by zero.
        assert!((s.time_weighted_mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_series() {
        let mut s = TimeSeries::new();
        s.push(t(7), 2.5);
        assert_eq!(s.aggregate(SimDuration::MINUTE), vec![(t(7), 2.5)]);
        assert_eq!(s.time_weighted_mean(), 2.5);
        assert_eq!(s.max(), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_rejected() {
        let mut s = TimeSeries::new();
        s.push(t(5), 1.0);
        s.push(t(4), 1.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_rejected() {
        TimeSeries::new().aggregate(SimDuration::ZERO);
    }
}
