//! Streaming and stored summary statistics.

use std::fmt;

/// Numerically stable streaming statistics (Welford's algorithm) for when
/// samples need not be retained.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2}",
            self.count,
            self.mean(),
            self.stddev()
        )
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// A retained sample set supporting percentiles and medians (needed for the
/// paper's suspension-time distribution analysis).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleSet {
    values: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN — NaNs would poison ordering.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample rejected");
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; 0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaNs by construction"));
            self.sorted = true;
        }
    }

    /// The `p`-quantile (0 ≤ p ≤ 1) by nearest-rank; `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0, 1]");
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        // The small epsilon compensates for f64 roundoff so that
        // quantile(k/n) lands exactly on the k-th order statistic.
        let rank = ((p * n as f64 - 1e-9).ceil() as usize).clamp(1, n);
        Some(self.values[rank - 1])
    }

    /// The median; `None` if empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples strictly greater than `x`.
    pub fn fraction_above(&mut self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.values.partition_point(|&v| v <= x);
        (self.values.len() - idx) as f64 / self.values.len() as f64
    }

    /// Read-only access to the (possibly unsorted) samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Extend<f64> for SampleSet {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = SampleSet::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn online_mean_and_variance() {
        let mut s = OnlineStats::new();
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn online_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut all = OnlineStats::new();
        all.extend(data.iter().copied());
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a.extend(data[..30].iter().copied());
        b.extend(data[30..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s: SampleSet = (1..=10).map(f64::from).collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.median(), Some(5.0));
        assert_eq!(s.quantile(0.9), Some(9.0));
        assert_eq!(s.quantile(1.0), Some(10.0));
    }

    #[test]
    fn fraction_above_counts_strictly_greater() {
        let mut s: SampleSet = [1.0, 2.0, 2.0, 3.0].into_iter().collect();
        assert!((s.fraction_above(2.0) - 0.25).abs() < 1e-12);
        assert_eq!(s.fraction_above(0.0), 1.0);
        assert_eq!(s.fraction_above(5.0), 0.0);
    }

    #[test]
    fn empty_sample_set() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), None);
        assert_eq!(s.fraction_above(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN sample rejected")]
    fn nan_rejected() {
        SampleSet::new().push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn quantile_out_of_range() {
        let mut s: SampleSet = [1.0].into_iter().collect();
        s.quantile(1.5);
    }

    proptest! {
        /// Online mean equals naive mean.
        #[test]
        fn prop_online_mean(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = OnlineStats::new();
            s.extend(data.iter().copied());
            let naive = data.iter().sum::<f64>() / data.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        }

        /// Quantile is monotone in p.
        #[test]
        fn prop_quantile_monotone(data in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut s: SampleSet = data.into_iter().collect();
            let mut last = f64::NEG_INFINITY;
            for i in 0..=10 {
                let q = s.quantile(i as f64 / 10.0).unwrap();
                prop_assert!(q >= last);
                last = q;
            }
        }
    }
}
