//! Deterministic, splittable random-number generation.
//!
//! Reproducibility is a requirement of the benchmark harness: every table in
//! the paper must regenerate identically from a seed. [`DetRng`] is a
//! self-contained xoshiro256++ implementation with no external dependencies,
//! so results cannot drift with third-party RNG internals across versions
//! (and the workspace builds in fully offline environments).
//!
//! Independent simulation components get *streams* derived from a root seed
//! ([`DetRng::stream`]), so adding a random draw to one component never
//! perturbs another — the standard trick for variance-controlled simulation
//! experiments.

/// SplitMix64 step, used to expand seeds and derive stream keys.
///
/// This is the seed-expansion function recommended by the xoshiro authors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ PRNG with named substreams.
///
/// # Examples
///
/// ```
/// use netbatch_sim_engine::rng::DetRng;
///
/// let root = DetRng::from_seed_u64(42);
/// let mut arrivals = root.stream("arrivals");
/// let x = arrivals.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent substream keyed by `label`.
    ///
    /// Streams with different labels (or derived from different parents) are
    /// statistically independent; deriving the same label twice from the
    /// same parent state yields identical streams. This method does **not**
    /// advance `self`.
    pub fn stream(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ self.s[0] ^ self.s[2].rotate_left(32);
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent substream keyed by an integer index, e.g. one
    /// stream per pool or per job class.
    pub fn stream_indexed(&self, label: &str, index: u64) -> DetRng {
        let mut derived = self.stream(label);
        let mut sm = derived.next_u64_inner() ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        derived.s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        derived
    }

    /// Advances the generator and returns the next 64 random bits
    /// (xoshiro256++ core step).
    pub fn next_u64_inner(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64_inner() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Widening-multiply rejection sampling (unbiased).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64_inner();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fills `dest` with random bytes, little-endian per 64-bit draw.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_inner().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_inner().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::from_seed_u64(7);
        let mut b = DetRng::from_seed_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_inner(), b.next_u64_inner());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::from_seed_u64(1);
        let mut b = DetRng::from_seed_u64(2);
        let same = (0..100)
            .filter(|_| a.next_u64_inner() == b.next_u64_inner())
            .count();
        assert!(same < 5, "seeds 1 and 2 should produce distinct streams");
    }

    #[test]
    fn streams_are_stable_and_independent() {
        let root = DetRng::from_seed_u64(99);
        let mut s1 = root.stream("arrivals");
        let mut s1_again = root.stream("arrivals");
        let mut s2 = root.stream("durations");
        assert_eq!(s1.next_u64_inner(), s1_again.next_u64_inner());
        let mut collisions = 0;
        for _ in 0..100 {
            if s1.next_u64_inner() == s2.next_u64_inner() {
                collisions += 1;
            }
        }
        assert!(collisions < 5);
    }

    #[test]
    fn indexed_streams_differ_per_index() {
        let root = DetRng::from_seed_u64(5);
        let mut a = root.stream_indexed("pool", 0);
        let mut b = root.stream_indexed("pool", 1);
        assert_ne!(a.next_u64_inner(), b.next_u64_inner());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::from_seed_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::from_seed_u64(11);
        for bound in [1u64, 2, 3, 7, 20, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = DetRng::from_seed_u64(13);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.next_below(5) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} skewed");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        DetRng::from_seed_u64(0).next_below(0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::from_seed_u64(21);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bounded_draws_compose_with_streams() {
        let mut rng = DetRng::from_seed_u64(17).stream("combinators");
        let v = rng.next_below(10);
        assert!(v < 10);
    }

    proptest! {
        #[test]
        fn prop_next_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut rng = DetRng::from_seed_u64(seed);
            for _ in 0..50 {
                prop_assert!(rng.next_below(bound) < bound);
            }
        }

        #[test]
        fn prop_f64_in_unit(seed in any::<u64>()) {
            let mut rng = DetRng::from_seed_u64(seed);
            for _ in 0..50 {
                let x = rng.next_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }
}
